"""E7 — §3.7 always-on tracing overhead.

Paper: "the overall tracing overhead is <100µs per request. This causes a
relative overhead of <15% when using the in-memory database VoltDB and
negligible overhead when using the on-disk database Postgres."

We run identical checkout-workflow request streams with and without TROD
attached, on the in-memory ("voltdb") and on-disk ("postgres") simulated
backend profiles, and report:

* interposition self-time per request (the <100µs figure),
* end-to-end per-request latency traced vs untraced,
* relative overhead per backend (the <15% / negligible figure).
"""

import time

from repro.workload.generators import CheckoutWorkload
from repro.workload.harness import render_table

from conftest import fresh_ecommerce

N_CHECKOUTS = 120


def run_stream(backend_name: str, attach_trod: bool) -> dict:
    """Per-request latencies, summarized by the median.

    This machine class shows multi-millisecond OS-scheduler stalls;
    totals (or means) over a 240-request stream would let one stall
    swamp a ~70µs effect, while the median is stall-immune.
    """
    db, runtime, trod = fresh_ecommerce(backend_name, attach_trod=attach_trod)
    workload = CheckoutWorkload(n_users=20, n_skus=10, seed=7)
    workload.seed_database(runtime)
    requests = list(workload.requests(N_CHECKOUTS))
    samples_us = []
    for request in requests:
        start = time.perf_counter_ns()
        result = runtime.execute_request(request)
        samples_us.append((time.perf_counter_ns() - start) / 1000.0)
        assert result.ok, result.error
    samples_us.sort()
    median_us = samples_us[len(samples_us) // 2]
    tracer_us = (
        trod.overhead_stats()["tracing_overhead_us_per_request"]
        if trod is not None
        else 0.0
    )
    return {"per_request_us": median_us, "tracer_us": tracer_us}


def test_tracing_overhead_voltdb_vs_postgres(benchmark, emit):
    results = {}
    for backend in ("voltdb", "postgres"):
        untraced = run_stream(backend, attach_trod=False)
        traced = run_stream(backend, attach_trod=True)
        overhead_us = traced["per_request_us"] - untraced["per_request_us"]
        relative = overhead_us / untraced["per_request_us"]
        results[backend] = {
            "untraced_us": untraced["per_request_us"],
            "traced_us": traced["per_request_us"],
            "overhead_us": overhead_us,
            "relative_pct": 100.0 * relative,
            "interposition_us": traced["tracer_us"],
        }

    # The benchmarked operation: one traced request on the fast backend.
    db, runtime, trod = fresh_ecommerce("voltdb", attach_trod=True)
    workload = CheckoutWorkload(n_users=20, n_skus=10, seed=7)
    workload.seed_database(runtime)
    requests = iter(workload.requests(100_000))
    benchmark(lambda: runtime.execute_request(next(requests)))

    emit(
        "",
        "=== E7: §3.7 always-on tracing overhead "
        f"({N_CHECKOUTS} checkout workflows, 2 requests each) ===",
        render_table(
            [
                "backend", "untraced us/req (median)", "traced us/req (median)",
                "overhead us/req", "relative %", "interposition us/req",
            ],
            [
                [
                    name,
                    row["untraced_us"],
                    row["traced_us"],
                    row["overhead_us"],
                    row["relative_pct"],
                    row["interposition_us"],
                ]
                for name, row in results.items()
            ],
        ),
        "paper: <100us interposition/request; <15% on VoltDB-class,"
        " negligible on Postgres-class backends",
        "",
    )

    voltdb = results["voltdb"]
    postgres = results["postgres"]
    # Shape assertions (generous bounds for noisy CI machines):
    # interposition cost is tens of microseconds per request;
    assert voltdb["interposition_us"] < 500
    # relative overhead on the fast backend is bounded (paper: <15%);
    assert voltdb["relative_pct"] < 50
    # and the slow (durable-commit) backend makes it far smaller.
    assert postgres["relative_pct"] < voltdb["relative_pct"]
    assert postgres["relative_pct"] < 12
