"""E1/E2/E3 — regenerate the paper's Table 1, Table 2, and the §3.3 query.

The benchmarked operation is the declarative debugging query itself (the
paper's interactive-debugging workflow); the tables are printed in the
paper's layout for visual comparison.
"""

from repro.core import report

from conftest import fresh_moodle, racy_scenario

PAPER_QUERY = (
    "SELECT Timestamp, ReqId, HandlerName\n"
    "FROM Executions as E, ForumEvents as F\n"
    "ON E.TxnId = F.TxnId\n"
    "WHERE F.UserId = 'U1' AND F.Forum = 'F2'\n"
    "AND F.Type = 'Insert'\n"
    "ORDER BY Timestamp ASC;"
)


def test_table1_table2_and_paper_query(benchmark, emit):
    db, runtime, trod = racy_scenario(fresh_moodle())
    trod.flush()

    result = benchmark(lambda: trod.query(PAPER_QUERY))

    emit(
        "",
        "=== E1: Table 1 — transaction execution log (paper Table 1) ===",
        report.render_table1(trod),
        "",
        "=== E2: Table 2 — data operations log (paper Table 2) ===",
        report.render_table2(trod, "forum_sub"),
        "",
        "=== E3: §3.3 declarative debugging query (verbatim) ===",
        PAPER_QUERY,
        "",
        result.pretty(),
        "",
    )

    # Paper shape: two inserts by two different requests, same handler,
    # adjacent timestamps.
    rows = result.as_dicts()
    assert len(rows) == 2
    assert {r["ReqId"] for r in rows} == {"R1", "R2"}
    assert all(r["HandlerName"] == "subscribeUser" for r in rows)
    assert rows[0]["Timestamp"] < rows[1]["Timestamp"]

    # Table 2 shape: 2 null-check reads, 2 duplicate inserts, 2 fetch reads.
    kinds = trod.query(
        "SELECT Type FROM ForumEvents WHERE Type != 'Snapshot' ORDER BY Seq"
    ).column("Type")
    assert kinds == ["Read", "Read", "Insert", "Insert", "Read", "Read"]
