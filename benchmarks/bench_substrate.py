"""S0 — substrate characterization (context for every other benchmark).

Not a paper experiment: this measures the raw throughput of the database
engine this reproduction is built on (inserts, point queries with and
without an index, scans, hash joins, commits), so readers can interpret
the absolute numbers in E7/E8 relative to the substrate's speed.

The read-path cases are differential: latest-state scans are measured
against an inline replica of the seed's sort-and-walk scan, repeated
queries with the plan cache on and off, and provenance restores with and
without a checkpoint. Results land in ``BENCH_substrate.json`` at the
repo root (op -> ops/sec) so the perf trajectory is tracked across PRs.
"""

import json
import time
from pathlib import Path

from repro.core.events import DataEvent
from repro.core.provenance import ProvenanceStore
from repro.db import Database
from repro.db.schema import Column, TableSchema
from repro.db.storage import TableStore
from repro.db.types import ColumnType
from repro.workload.harness import render_table

N_ROWS = 5_000
N_EVENTS = 2_000

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"


def build_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE items (id INTEGER, grp TEXT, val FLOAT)")
    txn = db.begin()
    for i in range(N_ROWS):
        db.execute(
            "INSERT INTO items VALUES (?, ?, ?)",
            (i, f"g{i % 50}", float(i % 97)),
            txn=txn,
        )
    txn.commit()
    db.execute("CREATE TABLE grps (grp TEXT, label TEXT)")
    txn = db.begin()
    for g in range(50):
        db.execute(
            "INSERT INTO grps VALUES (?, ?)", (f"g{g}", f"label-{g}"), txn=txn
        )
    txn.commit()
    # Version churn so chain walks do real work, as in any live system.
    txn = db.begin()
    db.execute("UPDATE items SET val = val + 1 WHERE id < 1000", txn=txn)
    txn.commit()
    return db


def _rate(fn, iterations: int) -> float:
    start = time.perf_counter_ns()
    for _ in range(iterations):
        fn()
    elapsed_s = (time.perf_counter_ns() - start) / 1e9
    return iterations / elapsed_s


def _seed_scan(store: TableStore):
    """The seed's latest-state scan: re-sort ids, walk each chain tail."""
    for row_id in sorted(store._versions):
        chain = store._versions.get(row_id)
        last = chain[-1]
        if last.end is None:
            yield row_id, last.values


def build_provenance() -> ProvenanceStore:
    prov = ProvenanceStore(checkpoint_interval=None)
    schema = TableSchema(
        "kv", [Column("k", ColumnType.INTEGER), Column("v", ColumnType.INTEGER)]
    )
    prov.register_app_table(schema)
    events = [
        DataEvent(
            txn_num=i,
            txn_name=f"TXN{i}",
            table="kv",
            kind="Update" if i % 3 == 0 and i > N_EVENTS // 2 else "Insert",
            query="bench",
            row_id=(i % (N_EVENTS // 2)) + 1
            if i % 3 == 0 and i > N_EVENTS // 2
            else i + 1,
            values={"k": i, "v": i},
            csn=i + 1,
        )
        for i in range(N_EVENTS)
    ]
    prov.ingest(events)
    return prov


def test_substrate_throughput(benchmark, emit):
    db = build_db()
    db_indexed = build_db()
    db_indexed.execute("CREATE INDEX ix_id ON items (id)")
    store = db.store("items")
    latest_csn = db.last_csn

    counter = iter(range(10**9))
    rows = [
        [
            "autocommit insert (1 row)",
            _rate(
                lambda: db.execute(
                    "INSERT INTO items VALUES (?, 'gx', 0.0)",
                    (N_ROWS + next(counter),),
                ),
                300,
            ),
        ],
        [
            "point query (full scan)",
            _rate(lambda: db.execute("SELECT * FROM items WHERE id = 2500"), 30),
        ],
        [
            "point query (index probe)",
            _rate(
                lambda: db_indexed.execute("SELECT * FROM items WHERE id = 2500"),
                300,
            ),
        ],
        [
            "full scan latest (live cache)",
            _rate(lambda: sum(1 for _ in store.scan(None)), 300),
        ],
        [
            "full scan latest (seed replica)",
            _rate(lambda: sum(1 for _ in _seed_scan(store)), 100),
        ],
        [
            "full scan as-of latest csn",
            _rate(lambda: sum(1 for _ in store.scan(latest_csn)), 100),
        ],
        [
            "aggregate scan (5k rows)",
            _rate(
                lambda: db.execute("SELECT grp, AVG(val) FROM items GROUP BY grp"),
                10,
            ),
        ],
        [
            "hash join (5k x 50)",
            _rate(
                lambda: db.execute(
                    "SELECT COUNT(*) FROM items i JOIN grps g ON i.grp = g.grp"
                ),
                10,
            ),
        ],
        [
            "read-only txn commit",
            _rate(lambda: db.begin().commit(), 2000),
        ],
    ]

    # Repeated statement shape: plan cache on vs off.
    probe_sql = "SELECT * FROM items WHERE id = ?"
    rows.append(
        [
            "repeat query (plan cache)",
            _rate(lambda: db_indexed.execute(probe_sql, (2500,)), 1000),
        ]
    )
    db_indexed.plan_cache_enabled = False
    rows.append(
        [
            "repeat query (replanned)",
            _rate(lambda: db_indexed.execute(probe_sql, (2500,)), 1000),
        ]
    )
    db_indexed.plan_cache_enabled = True

    # Provenance restore: nearest-checkpoint delta vs full history replay.
    prov = build_provenance()
    prov.create_checkpoint()
    rows.append(
        [
            "restore 2k events (checkpointed)",
            _rate(lambda: prov.reconstruct_rows("kv", N_EVENTS), 20),
        ]
    )
    prov.invalidate_checkpoints()
    rows.append(
        [
            "restore 2k events (full history)",
            _rate(lambda: prov.reconstruct_rows("kv", N_EVENTS), 20),
        ]
    )

    benchmark(
        lambda: db_indexed.execute("SELECT * FROM items WHERE id = 2500")
    )

    emit(
        "",
        f"=== S0: substrate characterization ({N_ROWS}-row table) ===",
        render_table(["operation", "ops/sec"], rows),
        "",
    )

    rates = {name: rate for name, rate in rows}
    _JSON_PATH.write_text(
        json.dumps(
            {
                "n_rows": N_ROWS,
                "n_events": N_EVENTS,
                "ops_per_sec": {name: round(rate, 1) for name, rate in rows},
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    emit(f"wrote {_JSON_PATH}")

    # The index probe must beat the full scan by a wide margin.
    assert (
        rates["point query (index probe)"] > rates["point query (full scan)"] * 5
    )
    # Read-path overhaul floors: live-cache scans >= 3x the seed's scan,
    # cached plans >= 1.5x replanning, checkpointed restore beats full.
    assert (
        rates["full scan latest (live cache)"]
        > rates["full scan latest (seed replica)"] * 3
    )
    assert (
        rates["repeat query (plan cache)"]
        > rates["repeat query (replanned)"] * 1.5
    )
    assert (
        rates["restore 2k events (checkpointed)"]
        > rates["restore 2k events (full history)"]
    )
    # Sanity floors (very conservative; flags pathological regressions).
    assert rates["autocommit insert (1 row)"] > 500
    assert rates["read-only txn commit"] > 5_000
