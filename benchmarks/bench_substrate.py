"""S0 — substrate characterization (context for every other benchmark).

Not a paper experiment: this measures the raw throughput of the database
engine this reproduction is built on (inserts, point queries with and
without an index, scans, hash joins, commits), so readers can interpret
the absolute numbers in E7/E8 relative to the substrate's speed.

The read-path cases are differential: latest-state scans are measured
against an inline replica of the seed's sort-and-walk scan, repeated
queries with the plan cache on and off, and provenance restores with and
without a checkpoint. Sharded cases run the same table hash-partitioned
over 4 stores: routed point lookups, scatter-gather scans, pushed-down
aggregates, and write-heavy multi-shard 2PC commits. Replication cases
measure cluster read capacity at 3 replicas vs the single primary,
async catch-up apply rate, failover (promote) latency, and the WAL
group-commit win (one real fsync per 64-commit batch vs one per
commit). Results land in
``BENCH_substrate.json`` at the repo root (op -> ops/sec) so the perf
trajectory is tracked across PRs; CI runs the reduced-iteration smoke
mode (``REPRO_BENCH_SMOKE=1``) and gates on
``benchmarks/compare_baseline.py``.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from repro.cluster import reshard as cluster_reshard
from repro.cluster.detector import HeartbeatDetector
from repro.core.events import DataEvent
from repro.core.provenance import ProvenanceStore
from repro.db import ConnectionPool, Database, IsolationLevel, ShardedDatabase, connect
from repro.db.multistore import MultiStoreCoordinator
from repro.db.replication import ReplicaSet
from repro.db.schema import Column, TableSchema
from repro.db.storage import TableStore
from repro.db.txn.wal import WalChange, WalCommit, WriteAheadLog
from repro.db.types import ColumnType
from repro.errors import CrashPoint
from repro.faults import FaultInjector
from repro.runtime.scheduler import CooperativeScheduler
from repro.workload.generators import ConnectionWorkload
from repro.workload.harness import render_table

N_ROWS = 5_000
N_EVENTS = 2_000

#: CI smoke mode: ~10x fewer iterations per case, and the qualitative
#: shape assertions are skipped (timings on shared runners are too noisy
#: for ratio asserts; the compare_baseline.py gate does the judging).
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

_JSON_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_JSON",
        Path(__file__).resolve().parent.parent / "BENCH_substrate.json",
    )
)


def _iters(n: int) -> int:
    # Floor of 10 keeps warmup/timing overhead from dominating the
    # smallest cases in smoke mode (they feed the CI regression gate).
    return max(10, n // 10) if SMOKE else n


def build_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE items (id INTEGER, grp TEXT, val FLOAT)")
    txn = db.begin()
    for i in range(N_ROWS):
        db.execute(
            "INSERT INTO items VALUES (?, ?, ?)",
            (i, f"g{i % 50}", float(i % 97)),
            txn=txn,
        )
    txn.commit()
    db.execute("CREATE TABLE grps (grp TEXT, label TEXT)")
    txn = db.begin()
    for g in range(50):
        db.execute(
            "INSERT INTO grps VALUES (?, ?)", (f"g{g}", f"label-{g}"), txn=txn
        )
    txn.commit()
    # Version churn so chain walks do real work, as in any live system.
    txn = db.begin()
    db.execute("UPDATE items SET val = val + 1 WHERE id < 1000", txn=txn)
    txn.commit()
    return db


def _rate(fn, iterations: int) -> float:
    # One untimed warmup call: first executions pay parse + plan
    # compilation, which dominates the short smoke-mode timing regions
    # and would make smoke rates incomparable to the full baseline.
    fn()
    start = time.perf_counter_ns()
    for _ in range(iterations):
        fn()
    elapsed_s = (time.perf_counter_ns() - start) / 1e9
    return iterations / elapsed_s


def _seed_scan(store: TableStore):
    """The seed's latest-state scan: re-sort ids, walk each chain tail."""
    for row_id in sorted(store._versions):
        chain = store._versions.get(row_id)
        last = chain[-1]
        if last.end is None:
            yield row_id, last.values


def build_sharded_db() -> ShardedDatabase:
    """The items table hash-partitioned by id over 4 shards, indexed."""
    sharded = ShardedDatabase(4, shard_keys={"items": "id"})
    sharded.execute("CREATE TABLE items (id INTEGER, grp TEXT, val FLOAT)")
    sharded.execute("CREATE INDEX ix_id ON items (id)")
    gtxn = sharded.begin()
    for i in range(N_ROWS):
        sharded.execute(
            "INSERT INTO items VALUES (?, ?, ?)",
            (i, f"g{i % 50}", float(i % 97)),
            txn=gtxn,
        )
    gtxn.commit()
    return sharded


def build_provenance() -> ProvenanceStore:
    prov = ProvenanceStore(checkpoint_interval=None)
    schema = TableSchema(
        "kv", [Column("k", ColumnType.INTEGER), Column("v", ColumnType.INTEGER)]
    )
    prov.register_app_table(schema)
    events = [
        DataEvent(
            txn_num=i,
            txn_name=f"TXN{i}",
            table="kv",
            kind="Update" if i % 3 == 0 and i > N_EVENTS // 2 else "Insert",
            query="bench",
            row_id=(i % (N_EVENTS // 2)) + 1
            if i % 3 == 0 and i > N_EVENTS // 2
            else i + 1,
            values={"k": i, "v": i},
            csn=i + 1,
        )
        for i in range(N_EVENTS)
    ]
    prov.ingest(events)
    return prov


def test_substrate_throughput(benchmark, emit):
    db = build_db()
    db_indexed = build_db()
    db_indexed.execute("CREATE INDEX ix_id ON items (id)")
    store = db.store("items")
    latest_csn = db.last_csn

    counter = iter(range(10**9))
    rows = [
        [
            "autocommit insert (1 row)",
            _rate(
                lambda: db.execute(
                    "INSERT INTO items VALUES (?, 'gx', 0.0)",
                    (N_ROWS + next(counter),),
                ),
                _iters(300),
            ),
        ],
        [
            "point query (full scan)",
            _rate(
                lambda: db.execute("SELECT * FROM items WHERE id = 2500"),
                _iters(30),
            ),
        ],
        [
            "point query (index probe)",
            _rate(
                lambda: db_indexed.execute("SELECT * FROM items WHERE id = 2500"),
                _iters(300),
            ),
        ],
        [
            "full scan latest (live cache)",
            _rate(lambda: sum(1 for _ in store.scan(None)), _iters(300)),
        ],
        [
            "full scan latest (seed replica)",
            _rate(lambda: sum(1 for _ in _seed_scan(store)), _iters(100)),
        ],
        [
            "full scan as-of latest csn",
            _rate(lambda: sum(1 for _ in store.scan(latest_csn)), _iters(100)),
        ],
        [
            "aggregate scan (5k rows)",
            _rate(
                lambda: db.execute("SELECT grp, AVG(val) FROM items GROUP BY grp"),
                _iters(200),
            ),
        ],
        [
            "hash join (5k x 50)",
            _rate(
                lambda: db.execute(
                    "SELECT COUNT(*) FROM items i JOIN grps g ON i.grp = g.grp"
                ),
                _iters(200),
            ),
        ],
        [
            "read-only txn commit",
            _rate(lambda: db.begin().commit(), _iters(2000)),
        ],
    ]

    # Compute-bound tail: compiled batch execution across the filter
    # selectivity range (the 1% case is bounded by predicate evaluation
    # over all 5k rows, the 99% case by output materialization), the
    # same GROUP BY aggregate forced down the tree-walking row path, and
    # the filter-position rewrite (pushing a WHERE conjunct beneath the
    # join into the owning scan vs filtering the joined rows).
    rows.extend(
        [
            [
                "filtered scan 1% selectivity",
                _rate(
                    lambda: db.execute(
                        "SELECT id, val FROM items WHERE val < 1.0"
                    ),
                    _iters(200),
                ),
            ],
            [
                "filtered scan 50% selectivity",
                _rate(
                    lambda: db.execute(
                        "SELECT id, val FROM items WHERE val < 48.5"
                    ),
                    _iters(100),
                ),
            ],
            [
                "filtered scan 99% selectivity",
                _rate(
                    lambda: db.execute(
                        "SELECT id, val FROM items WHERE val < 96.5"
                    ),
                    _iters(50),
                ),
            ],
        ]
    )
    agg_sql = "SELECT grp, AVG(val) FROM items GROUP BY grp"
    db.compiled_execution = False
    rows.append(
        ["aggregate scan (tree-walk)", _rate(lambda: db.execute(agg_sql), _iters(20))]
    )
    db.compiled_execution = True
    fj_sql = (
        "SELECT COUNT(*) FROM items i JOIN grps g "
        "ON i.grp = g.grp WHERE i.val > 90.0"
    )
    rows.append(
        ["filter below join (pushdown)", _rate(lambda: db.execute(fj_sql), _iters(200))]
    )
    db.predicate_pushdown_enabled = False
    rows.append(
        [
            "filter above join (no pushdown)",
            _rate(lambda: db.execute(fj_sql), _iters(20)),
        ]
    )
    db.predicate_pushdown_enabled = True

    # Repeated statement shape: plan cache on vs off.
    probe_sql = "SELECT * FROM items WHERE id = ?"
    rows.append(
        [
            "repeat query (plan cache)",
            _rate(lambda: db_indexed.execute(probe_sql, (2500,)), _iters(1000)),
        ]
    )
    db_indexed.plan_cache_enabled = False
    rows.append(
        [
            "repeat query (replanned)",
            _rate(lambda: db_indexed.execute(probe_sql, (2500,)), _iters(1000)),
        ]
    )
    db_indexed.plan_cache_enabled = True

    # The repro.connect() facade over the same database and statement:
    # the unified API must stay within 10% of direct Database.execute.
    facade = connect(db_indexed)
    rows.append(
        [
            "repeat query (connection facade)",
            _rate(lambda: facade.execute(probe_sql, (2500,)), _iters(1000)),
        ]
    )

    # Sharded execution: the same table hash-partitioned over 4 stores.
    sharded = build_sharded_db()
    id_gen = iter(range(N_ROWS, 10**9))
    id_pools: dict[str, list[int]] = {name: [] for name in sharded.store_names}

    def next_id_on(store: str) -> int:
        """Fresh ids bucketed by hash owner, so each commit really spans
        one row per shard (consecutive ids don't)."""
        while not id_pools[store]:
            i = next(id_gen)
            id_pools[sharded.router.shard_for_value(i)].append(i)
        return id_pools[store].pop()

    def sharded_2pc_write() -> None:
        gtxn = sharded.begin()
        for store in sharded.store_names:
            sharded.execute(
                "INSERT INTO items VALUES (?, 'gx', 0.0)",
                (next_id_on(store),),
                txn=gtxn,
            )
        gtxn.commit()

    rows.extend(
        [
            [
                "sharded point lookup (routed)",
                _rate(
                    lambda: sharded.execute(
                        "SELECT * FROM items WHERE id = ?", (2500,)
                    ),
                    _iters(300),
                ),
            ],
            [
                "sharded scan (4-shard fan-out)",
                _rate(
                    lambda: sharded.execute("SELECT * FROM items WHERE val > 90"),
                    _iters(30),
                ),
            ],
            [
                "sharded aggregate (partial/final)",
                _rate(
                    lambda: sharded.execute(
                        "SELECT grp, AVG(val) FROM items GROUP BY grp"
                    ),
                    _iters(100),
                ),
            ],
            [
                "sharded 2PC write (4 rows x 4 shards)",
                _rate(sharded_2pc_write, _iters(200)),
            ],
        ]
    )

    # Streaming execution: LIMIT pushdown on the sharded gather (the
    # coordinator caps each shard at limit+offset rows and stops visiting
    # shards once satisfied) vs the seed's gather-everything-then-limit.
    limit_sql = "SELECT * FROM items LIMIT 10"
    rows.append(
        [
            "sharded LIMIT 10 (pushdown)",
            _rate(lambda: sharded.execute(limit_sql), _iters(300)),
        ]
    )
    sharded.limit_pushdown_enabled = False
    rows.append(
        [
            "sharded LIMIT 10 (gather-all seed path)",
            _rate(lambda: sharded.execute(limit_sql), _iters(30)),
        ]
    )
    sharded.limit_pushdown_enabled = True

    # Cursor streaming: first 10 rows of a full-table SELECT through the
    # DB-API cursor. The streamed cursor pulls 10 rows off the pinned
    # pipeline; the seed cursor materialized every row at execute time
    # (emulated by draining the stream, which costs the same scan + Row
    # wrapping the seed's _load paid).
    stream_sql = "SELECT id, grp, val FROM items"

    def stream_first_10() -> None:
        cur = facade.cursor().execute(stream_sql)
        for _ in range(10):
            cur.fetchone()
        cur.close()

    def drain_all_first_10() -> None:
        cur = facade.cursor().execute(stream_sql)
        cur.fetchall()
        cur.close()

    rows.append(
        ["cursor first-10 of 5k (streamed)", _rate(stream_first_10, _iters(300))]
    )
    rows.append(
        [
            "cursor first-10 of 5k (drain-all seed path)",
            _rate(drain_all_first_10, _iters(30)),
        ]
    )

    # Concurrent scans under the cooperative scheduler: 4 full-table
    # scans serialized (txn granularity: each runs head-of-line) vs
    # interleaved at 256-row batch boundaries. The interleaved rate shows
    # the baton-passing overhead is modest; the win is latency — short
    # queries no longer wait behind long scans (asserted in tier-1).
    def scheduled_scans(granularity: str) -> float:
        def scan() -> int:
            txn = db.begin(IsolationLevel.SNAPSHOT)
            try:
                return len(db.execute("SELECT * FROM items", txn=txn).rows)
            finally:
                txn.abort()

        runs = _iters(10)
        start = time.perf_counter_ns()
        for _ in range(runs):
            scheduler = CooperativeScheduler(seed=1, granularity=granularity)
            outcomes = scheduler.run([scan] * 4)
            assert all(o.ok for o in outcomes)
        elapsed_s = (time.perf_counter_ns() - start) / 1e9
        return runs * 4 / elapsed_s

    rows.append(["concurrent scans x4 (serialized)", scheduled_scans("txn")])
    rows.append(
        ["concurrent scans x4 (batch-interleaved)", scheduled_scans("batch")]
    )

    # Connection pooling: checkout/checkin of a pooled connection vs
    # constructing a fresh one per statement, plus the pooled workload's
    # end-to-end statement rate.
    pool = ConnectionPool(db_indexed, size=4)

    def checkout_checkin() -> None:
        conn = pool.checkout()
        pool.checkin(conn)

    rows.append(
        ["connection checkout (pooled)", _rate(checkout_checkin, _iters(2000))]
    )
    rows.append(
        [
            "connection construct (fresh)",
            _rate(lambda: connect(db_indexed), _iters(2000)),
        ]
    )

    workload_db = Database()
    workload = ConnectionWorkload(n_keys=32, seed=2)
    workload_pool = ConnectionPool(workload_db, size=4)
    workload.seed(workload_pool)
    n_statements = _iters(400)
    start = time.perf_counter_ns()
    workload.run(workload_pool, n_statements)
    elapsed_s = (time.perf_counter_ns() - start) / 1e9
    rows.append(["pooled workload statements", n_statements / elapsed_s])

    # Replication: cluster read capacity, catch-up, and failover. The
    # capacity comparison is per-store serving rate: N replicas are N
    # independent stores, so cluster capacity is the sum of what each
    # sustains (they would serve in parallel in a real deployment; this
    # single-threaded simulation measures each store's rate honestly and
    # reports the aggregate).
    primary = build_db()
    primary.execute("CREATE INDEX ix_id ON items (id)")
    read_sql = "SELECT * FROM items WHERE id = ?"
    # Baseline BEFORE attaching replicas: with a sync set attached, every
    # autocommitted primary read would ship its empty commit to all
    # replicas inside the timed region and deflate the baseline.
    single_primary_rate = _rate(
        lambda: primary.execute(read_sql, (2500,)), _iters(300)
    )
    replica_set = ReplicaSet(primary, n_replicas=3, mode="sync")
    replica_rates = [
        _rate(lambda r=r: r.database.execute(read_sql, (2500,)), _iters(300))
        for r in replica_set.replicas
    ]
    cluster_rate = sum(replica_rates)
    rows.append(["replicated read (single primary)", single_primary_rate])
    rows.append(["replicated read (3-replica cluster)", cluster_rate])

    # Catch-up: how fast an async replica applies a shipped backlog.
    catchup_reps = 2 if SMOKE else 5
    backlog = 100 if SMOKE else 500
    applied = 0
    elapsed = 0.0
    for _ in range(catchup_reps):
        cu_primary = build_db()
        cu_set = ReplicaSet(cu_primary, n_replicas=1, mode="async")
        for i in range(backlog):
            cu_primary.execute(
                "INSERT INTO items VALUES (?, 'cx', 1.0)", (N_ROWS + i,)
            )
        start = time.perf_counter_ns()
        applied += cu_set.catch_up()
        elapsed += (time.perf_counter_ns() - start) / 1e9
    rows.append(["replication catch-up (records applied)", applied / elapsed])

    # Failover: fence, drain a lagged backlog, promote, re-point.
    # Not reduced in smoke: 2 reps gave a ~7ms timed region whose rate
    # swung 10x run-to-run; 5 reps is still cheap and feeds the gate.
    failover_reps = 5
    elapsed = 0.0
    for _ in range(failover_reps):
        fo_primary = build_db()
        fo_set = ReplicaSet(fo_primary, n_replicas=2, mode="async")
        for i in range(50):
            fo_primary.execute(
                "INSERT INTO items VALUES (?, 'fx', 1.0)", (N_ROWS + i,)
            )
        start = time.perf_counter_ns()
        fo_set.promote()
        elapsed += (time.perf_counter_ns() - start) / 1e9
    rows.append(["replication failover (promote)", failover_reps / elapsed])

    # Quorum-acknowledged commits: each autocommit insert applies
    # synchronously on the first 2 of 3 healthy replicas before the
    # primary's execute returns — the durability guarantee priced
    # against the plain async shipping measured by catch-up above.
    q_primary = build_db()
    ReplicaSet(q_primary, n_replicas=3, ack_quorum=2)
    q_counter = iter(range(10**9))
    rows.append(
        [
            "quorum commit (ack 2 of 3)",
            _rate(
                lambda: q_primary.execute(
                    "INSERT INTO items VALUES (?, 'qx', 0.0)",
                    (N_ROWS + next(q_counter),),
                ),
                _iters(200),
            ),
        ]
    )

    # Online resharding: rows/sec through the whole tap -> snapshot
    # copy -> delta drain -> fence/swap pipeline on an idle cluster
    # (the protocol's own cost; the chaos tests price the contended
    # path). Fixed table size in smoke too — the rate scales with row
    # count, so a smaller smoke table would be incomparable.
    reshard_reps = 2 if SMOKE else 4
    reshard_rows = 1_000
    moved = 0
    elapsed = 0.0
    for _ in range(reshard_reps):
        rs_db = ShardedDatabase(2, shard_keys={"items": "id"})
        rs_db.execute("CREATE TABLE items (id INTEGER, grp TEXT, val FLOAT)")
        rs_gtxn = rs_db.begin()
        for i in range(reshard_rows):
            rs_db.execute(
                "INSERT INTO items VALUES (?, ?, ?)",
                (i, f"g{i % 50}", float(i % 97)),
                txn=rs_gtxn,
            )
        rs_gtxn.commit()
        start = time.perf_counter_ns()
        moved += cluster_reshard(rs_db, 4, chunk_size=256)["rows_copied"]
        elapsed += (time.perf_counter_ns() - start) / 1e9
    rows.append(["online reshard 2->4 (rows moved)", moved / elapsed])

    # Coordinator crash recovery: the full in-doubt resolution cycle.
    # A cross-store 2PC commit over two paged stores is killed between
    # the two phase-2 branch commits (decision logged, one branch left
    # in doubt), the stores are hard-killed, and the timed region is
    # restart-from-disk + recover_in_doubt — the time a cluster spends
    # unavailable after a coordinator crash. Rate is in-doubt branches
    # resolved per second.
    recovery_reps = 2 if SMOKE else 5
    recovery_elapsed = 0.0
    recovery_resolved = 0
    for _ in range(recovery_reps):
        with tempfile.TemporaryDirectory() as crash_dir:
            crash_dirs = {n: str(Path(crash_dir) / n) for n in ("a", "b")}
            crash_log = str(Path(crash_dir) / "decisions.jsonl")
            crash_stores = {
                n: Database(name=n, storage="paged", data_dir=d)
                for n, d in crash_dirs.items()
            }
            crash_coord = MultiStoreCoordinator(
                crash_stores, decision_log=crash_log
            )
            for store in crash_stores.values():
                store.execute("CREATE TABLE t (k INTEGER, v TEXT)")
            crash_injector = FaultInjector()
            crash_injector.fail("2pc.branch_commit", at=2)
            crash_gtxn = crash_coord.begin()
            crash_gtxn.execute("a", "INSERT INTO t VALUES (1, 'a')")
            crash_gtxn.execute("b", "INSERT INTO t VALUES (1, 'b')")
            with crash_injector.installed():
                try:
                    crash_gtxn.commit()
                except CrashPoint:
                    pass
            for store in crash_stores.values():
                store.wal._pending.clear()
                store.wal._file.close()
                store._page_manager.close_all()
            crash_coord.decision_log.close()
            start = time.perf_counter_ns()
            reopened = {
                n: Database(name=n, storage="paged", data_dir=d)
                for n, d in crash_dirs.items()
            }
            recovered = MultiStoreCoordinator(reopened, decision_log=crash_log)
            outcome = recovered.recover_in_doubt()
            recovery_elapsed += (time.perf_counter_ns() - start) / 1e9
            assert outcome["committed"] == 1
            recovery_resolved += outcome["committed"] + outcome["aborted"]
            for database in reopened.values():
                database.close()
            recovered.decision_log.close()
    rows.append(
        [
            "coordinator crash recovery (in-doubt txns resolved)",
            recovery_resolved / recovery_elapsed,
        ]
    )

    # Probe timeout detection: how fast the detector convicts a node
    # that answers, but too slowly to trust. Each cycle is a fresh
    # detector paying suspicion_threshold slow probes (0.5ms each)
    # plus the timeout bookkeeping, so the rate is dominated by the
    # probe budget itself — the floor only flags pathological
    # detector-side overhead.
    def detect_slow_node() -> None:
        detector = HeartbeatDetector(
            suspicion_threshold=2, probe_timeout=0.0002
        )
        detector.watch("slow", lambda: time.sleep(0.0005))
        detector.poll()
        detector.poll()
        assert detector.confirmed() == ["slow"]

    rows.append(
        [
            "probe timeout detection latency",
            _rate(detect_slow_node, _iters(50)),
        ]
    )

    # Group commit: one real fsync per commit vs one per 64-commit batch.
    def wal_append_rate(group_size: int, n_commits: int) -> float:
        with tempfile.TemporaryDirectory() as scratch:
            wal = WriteAheadLog(
                str(Path(scratch) / "wal.jsonl"),
                group_size=group_size,
                fsync=True,
            )
            start = time.perf_counter_ns()
            for csn in range(1, n_commits + 1):
                wal.append(
                    WalCommit(
                        csn=csn,
                        txn_id=csn,
                        changes=(
                            WalChange("insert", "items", csn, (csn, "w", 0.0), None),
                        ),
                    )
                )
            wal.flush()
            elapsed_s = (time.perf_counter_ns() - start) / 1e9
            wal.close()
            return n_commits / elapsed_s

    wal_commits = _iters(2000)
    rows.append(
        ["wal commit (fsync each)", wal_append_rate(1, wal_commits)]
    )
    rows.append(
        ["wal group commit (64/batch)", wal_append_rate(64, wal_commits)]
    )

    # Paged storage tier: steady-state writes through the buffer pool
    # (pool far smaller than the table, so inserts pay real eviction
    # write-backs), and the cold-start path — reopen the page files
    # from a clean shutdown and serve the first point query with no
    # WAL tail replay. Cold start is dominated by catalog + header
    # reads and index rebuild, not data-file size.
    with tempfile.TemporaryDirectory() as paged_dir:
        paged = Database(
            storage="paged",
            data_dir=paged_dir,
            buffer_pool_pages=32,
            wal_group_size=64,
        )
        paged.execute("CREATE TABLE items (id INTEGER, grp TEXT, val FLOAT)")
        paged.execute("CREATE INDEX ix_id ON items (id)")
        # Full N_ROWS even in smoke: cold start scales with table size,
        # and a 10x-smaller smoke table would make the CI candidate
        # incomparable to the committed baseline for this case.
        ptxn = paged.begin()
        for i in range(N_ROWS):
            paged.execute(
                "INSERT INTO items VALUES (?, ?, ?)",
                (i, f"g{i % 50}", float(i % 97)),
                txn=ptxn,
            )
        ptxn.commit()
        paged_counter = iter(range(10**9))
        rows.append(
            [
                "paged autocommit insert (1 row)",
                _rate(
                    lambda: paged.execute(
                        "INSERT INTO items VALUES (?, 'px', 0.0)",
                        (N_ROWS + next(paged_counter),),
                    ),
                    _iters(300),
                ),
            ]
        )
        paged.close()

        def cold_start() -> None:
            db_cold = Database(storage="paged", data_dir=paged_dir)
            assert db_cold.recovery_stats["changes_reconciled"] == 0
            db_cold.execute("SELECT * FROM items WHERE id = 500")
            db_cold.close()

        rows.append(
            [
                "paged cold start (reopen + first query)",
                _rate(cold_start, _iters(20)),
            ]
        )

    # Provenance restore: nearest-checkpoint delta vs full history replay.
    prov = build_provenance()
    prov.create_checkpoint()
    rows.append(
        [
            "restore 2k events (checkpointed)",
            _rate(lambda: prov.reconstruct_rows("kv", N_EVENTS), _iters(20)),
        ]
    )
    prov.invalidate_checkpoints()
    rows.append(
        [
            "restore 2k events (full history)",
            _rate(lambda: prov.reconstruct_rows("kv", N_EVENTS), _iters(20)),
        ]
    )

    benchmark(
        lambda: db_indexed.execute("SELECT * FROM items WHERE id = 2500")
    )

    emit(
        "",
        f"=== S0: substrate characterization ({N_ROWS}-row table) ===",
        render_table(["operation", "ops/sec"], rows),
        "",
    )

    rates = {name: rate for name, rate in rows}
    _JSON_PATH.write_text(
        json.dumps(
            {
                "n_rows": N_ROWS,
                "n_events": N_EVENTS,
                "ops_per_sec": {name: round(rate, 1) for name, rate in rows},
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    emit(f"wrote {_JSON_PATH}")

    if SMOKE:
        # Shared CI runners are too noisy for ratio assertions; the
        # compare_baseline.py gate judges regressions instead. Keep only
        # liveness checks.
        assert all(rate > 0 for rate in rates.values())
        return

    # The index probe must beat the full scan by a wide margin.
    assert (
        rates["point query (index probe)"] > rates["point query (full scan)"] * 5
    )
    # Read-path overhaul floors: live-cache scans >= 3x the seed's scan,
    # cached plans >= 1.5x replanning, checkpointed restore beats full.
    assert (
        rates["full scan latest (live cache)"]
        > rates["full scan latest (seed replica)"] * 3
    )
    assert (
        rates["repeat query (plan cache)"]
        > rates["repeat query (replanned)"] * 1.5
    )
    # The unified Connection facade adds <10% overhead over direct
    # Database.execute for the same cached point query.
    assert (
        rates["repeat query (connection facade)"]
        > rates["repeat query (plan cache)"] * 0.9
    )
    assert (
        rates["restore 2k events (checkpointed)"]
        > rates["restore 2k events (full history)"]
    )
    # Routing: a key-pinned lookup touches 1 shard and must beat the
    # 4-shard fan-out scan decisively.
    assert (
        rates["sharded point lookup (routed)"]
        > rates["sharded scan (4-shard fan-out)"] * 3
    )
    # Streaming floors: LIMIT-k over a large table must beat the seed's
    # materializing paths, on the sharded gather and through the
    # streamed cursor alike; batch-interleaved concurrent scans must not
    # cost more than ~2x the serialized baton protocol; and a pooled
    # checkout must beat constructing a connection from scratch. The
    # sharded margin used to be 5x, but compiled batch execution sped
    # up the gather-everything side ~3x (the full drains are now
    # vectorized), and moving plan compilation out of the timed region
    # (the _rate warmup call) lifted it again — the pushdown's
    # steady-state edge is the skipped shards and per-statement
    # overhead, measured at ~2x. Assert 1.5x and let the
    # compare_baseline gate track the absolute rates.
    assert (
        rates["sharded LIMIT 10 (pushdown)"]
        > rates["sharded LIMIT 10 (gather-all seed path)"] * 1.5
    )
    assert (
        rates["cursor first-10 of 5k (streamed)"]
        > rates["cursor first-10 of 5k (drain-all seed path)"] * 5
    )
    # Interleaving at 256-row batch boundaries adds ~84 extra baton
    # handoffs per 4-scan run that the serialized protocol never pays,
    # so parity is structurally unattainable; with the lock-based baton
    # the measured cost settles around 20-30%, and worse than 40% means
    # the handoff primitive regressed.
    assert (
        rates["concurrent scans x4 (batch-interleaved)"]
        > rates["concurrent scans x4 (serialized)"] * 0.6
    )
    # Compiled vectorized execution floors: the compute-bound tail must
    # hold its step change — >= 10x the committed pre-compilation
    # baselines for the single-node aggregate (90.3) and hash join
    # (120.0), >= 5x for the sharded partial/final aggregate (76.3).
    # Absolute rates, deliberately: these queries are pure CPU on a
    # cached plan, the one regime where ops/s transfers across machines
    # well enough for an order-of-magnitude floor.
    assert rates["aggregate scan (5k rows)"] >= 903
    assert rates["hash join (5k x 50)"] >= 1200
    assert rates["sharded aggregate (partial/final)"] >= 381.5
    # The same aggregate through the compiled batch pipeline vs the
    # tree-walking row path, same database and plan shape.
    assert (
        rates["aggregate scan (5k rows)"]
        > rates["aggregate scan (tree-walk)"] * 5
    )
    # Pushing the WHERE conjunct beneath the join (into the owning
    # scan) must beat filtering the materialized join output.
    assert (
        rates["filter below join (pushdown)"]
        > rates["filter above join (no pushdown)"]
    )
    assert (
        rates["connection checkout (pooled)"]
        > rates["connection construct (fresh)"]
    )
    assert rates["pooled workload statements"] > 500
    # Replication floors: 3 replicas must deliver >= 2x the single
    # primary's read capacity, and batching 64 commits per fsync must
    # clearly beat an fsync per commit.
    assert (
        rates["replicated read (3-replica cluster)"]
        > rates["replicated read (single primary)"] * 2
    )
    assert (
        rates["wal group commit (64/batch)"]
        > rates["wal commit (fsync each)"] * 1.5
    )
    assert rates["replication catch-up (records applied)"] > 100
    # Cluster floors (ungated in CI — rep counts are tiny, so the rates
    # are noisy; these conservative bounds flag only pathological
    # regressions). Quorum commits pay two synchronous applies per
    # insert; a reshard of 1k rows must clearly beat row-at-a-time
    # re-insertion through the SQL front door.
    assert rates["quorum commit (ack 2 of 3)"] > 50
    assert rates["online reshard 2->4 (rows moved)"] > 500
    # Robustness floors (ungated in CI for the same noise reason): a
    # coordinator crash recovery cycle reopens two paged stores and
    # resolves the in-doubt branch well under a second, and convicting
    # a slow node costs two ~0.5ms probes plus bookkeeping.
    assert rates["coordinator crash recovery (in-doubt txns resolved)"] > 1
    assert rates["probe timeout detection latency"] > 5
    # Paged tier floors: cold start is catalog + header reads and an
    # index rebuild over the table — it must finish fast enough that
    # reopening is cheap relative to a full WAL replay (the "restore
    # 2k events (full history)" rate above is the right mental
    # comparison), and paged autocommit inserts pay the pager but must
    # stay within an order of magnitude of memory-backed inserts.
    assert rates["paged cold start (reopen + first query)"] > 2
    assert (
        rates["paged autocommit insert (1 row)"]
        > rates["autocommit insert (1 row)"] / 10
    )
    # Sanity floors (very conservative; flags pathological regressions).
    assert rates["autocommit insert (1 row)"] > 500
    assert rates["read-only txn commit"] > 5_000
    assert rates["sharded 2PC write (4 rows x 4 shards)"] > 50
