"""S0 — substrate characterization (context for every other benchmark).

Not a paper experiment: this measures the raw throughput of the database
engine this reproduction is built on (inserts, point queries with and
without an index, scans, hash joins, commits), so readers can interpret
the absolute numbers in E7/E8 relative to the substrate's speed.
"""

import time

from repro.db import Database
from repro.workload.harness import render_table

N_ROWS = 5_000


def build_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE items (id INTEGER, grp TEXT, val FLOAT)")
    txn = db.begin()
    for i in range(N_ROWS):
        db.execute(
            "INSERT INTO items VALUES (?, ?, ?)",
            (i, f"g{i % 50}", float(i % 97)),
            txn=txn,
        )
    txn.commit()
    db.execute("CREATE TABLE grps (grp TEXT, label TEXT)")
    txn = db.begin()
    for g in range(50):
        db.execute(
            "INSERT INTO grps VALUES (?, ?)", (f"g{g}", f"label-{g}"), txn=txn
        )
    txn.commit()
    return db


def _rate(fn, iterations: int) -> float:
    start = time.perf_counter_ns()
    for _ in range(iterations):
        fn()
    elapsed_s = (time.perf_counter_ns() - start) / 1e9
    return iterations / elapsed_s


def test_substrate_throughput(benchmark, emit):
    db = build_db()
    db_indexed = build_db()
    db_indexed.execute("CREATE INDEX ix_id ON items (id)")

    counter = iter(range(10**9))
    rows = [
        [
            "autocommit insert (1 row)",
            _rate(
                lambda: db.execute(
                    "INSERT INTO items VALUES (?, 'gx', 0.0)",
                    (N_ROWS + next(counter),),
                ),
                300,
            ),
        ],
        [
            "point query (full scan)",
            _rate(lambda: db.execute("SELECT * FROM items WHERE id = 2500"), 30),
        ],
        [
            "point query (index probe)",
            _rate(
                lambda: db_indexed.execute("SELECT * FROM items WHERE id = 2500"),
                300,
            ),
        ],
        [
            "aggregate scan (5k rows)",
            _rate(
                lambda: db.execute("SELECT grp, AVG(val) FROM items GROUP BY grp"),
                10,
            ),
        ],
        [
            "hash join (5k x 50)",
            _rate(
                lambda: db.execute(
                    "SELECT COUNT(*) FROM items i JOIN grps g ON i.grp = g.grp"
                ),
                10,
            ),
        ],
        [
            "read-only txn commit",
            _rate(lambda: db.begin().commit(), 2000),
        ],
    ]

    benchmark(
        lambda: db_indexed.execute("SELECT * FROM items WHERE id = 2500")
    )

    emit(
        "",
        f"=== S0: substrate characterization ({N_ROWS}-row table) ===",
        render_table(["operation", "ops/sec"], rows),
        "",
    )

    rates = {name: rate for name, rate in rows}
    # The index probe must beat the full scan by a wide margin.
    assert (
        rates["point query (index probe)"] > rates["point query (full scan)"] * 5
    )
    # Sanity floors (very conservative; flags pathological regressions).
    assert rates["autocommit insert (1 row)"] > 500
    assert rates["read-only txn commit"] > 5_000
