"""CI gate: compare a bench_substrate run against the committed baseline.

Usage::

    python benchmarks/compare_baseline.py BASELINE.json CANDIDATE.json \
        [--tolerance 3.0]

Compares the ``ops_per_sec`` entries the two files share and exits
non-zero if any case is more than ``tolerance`` times slower than the
baseline. The tolerance is deliberately loose: the committed baseline
was measured on a developer machine and CI runners are slower and noisy,
so this catches order-of-magnitude pathologies (accidental O(n^2) paths,
dropped caches), not percent-level drift. Cases present in only one file
are reported but never fail the gate, so adding a bench case does not
require regenerating the baseline in the same commit.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_rates(path: Path) -> dict[str, float]:
    data = json.loads(path.read_text())
    rates = data.get("ops_per_sec")
    if not isinstance(rates, dict) or not rates:
        raise SystemExit(f"{path}: no ops_per_sec section")
    return {str(k): float(v) for k, v in rates.items()}


def compare(
    baseline: dict[str, float], candidate: dict[str, float], tolerance: float
) -> list[str]:
    """Regression messages for shared cases slower than baseline/tolerance."""
    regressions = []
    for name in sorted(set(baseline) & set(candidate)):
        floor = baseline[name] / tolerance
        if candidate[name] < floor:
            regressions.append(
                f"REGRESSION {name!r}: {candidate[name]:,.1f} ops/s < "
                f"{floor:,.1f} (baseline {baseline[name]:,.1f} / "
                f"tolerance {tolerance:g})"
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("candidate", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="allowed slowdown factor vs baseline (default 3.0)",
    )
    args = parser.parse_args(argv)
    if args.tolerance <= 1.0:
        parser.error("--tolerance must be > 1.0")

    baseline = load_rates(args.baseline)
    candidate = load_rates(args.candidate)

    shared = sorted(set(baseline) & set(candidate))
    width = max((len(name) for name in shared), default=4)
    print(f"{'case'.ljust(width)} | baseline ops/s | candidate ops/s | ratio")
    for name in shared:
        ratio = candidate[name] / baseline[name] if baseline[name] else float("inf")
        print(
            f"{name.ljust(width)} | {baseline[name]:>14,.1f} | "
            f"{candidate[name]:>15,.1f} | {ratio:5.2f}x"
        )
    for name in sorted(set(baseline) ^ set(candidate)):
        side = "baseline" if name in baseline else "candidate"
        print(f"(only in {side}: {name!r})")

    if not shared:
        # Zero overlap means no perf check ran at all (renamed cases, or
        # a candidate from a different bench); a vacuous pass would
        # silently disable the gate.
        print(
            "ERROR: baseline and candidate share no case names; "
            "regenerate the baseline to match the bench",
            file=sys.stderr,
        )
        return 1
    regressions = compare(baseline, candidate, args.tolerance)
    for message in regressions:
        print(message, file=sys.stderr)
    if regressions:
        return 1
    print(f"OK: {len(shared)} case(s) within {args.tolerance:g}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
