"""CI gate: compare a bench_substrate run against the committed baseline.

Usage::

    python benchmarks/compare_baseline.py BASELINE.json CANDIDATE.json \
        [--tolerance 2.0] [--noisy-tolerance 3.0]

Compares the ``ops_per_sec`` entries the two files share and exits
non-zero if any case is more than its tolerance times slower than the
baseline. The default tolerance is 2x: the committed baseline was
measured on a developer machine and CI runners are slower, but after
several PRs of trend data the stable cases (single-threaded CPU-bound
loops on cached plans) track within well under 2x, so 2x catches real
regressions while still absorbing runner variance. Cases in
``NOISY_CASES`` — scheduler interleaving, wall-clock-driven replication
steps, fsync-bound WAL appends, multi-store 2PC, pool checkout
micro-ops, and process cold starts — swing with runner load and keep
the looser 3x bound, and the few ``UNGATED_CASES`` latency probes are
reported and trend-tracked but never fail the gate at all. Cases
present in only one file are reported but
never fail the gate, so adding a bench case does not require
regenerating the baseline in the same commit.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Cases whose rates are dominated by the runner's scheduling, fsync
#: latency, or a timed region of only a few milliseconds (the >10k
#: ops/s micro-cases at smoke iteration counts) rather than sustained
#: CPU work — these get ``--noisy-tolerance`` instead of
#: ``--tolerance``. Classified empirically: each listed case showed a
#: >1.5x run-to-run swing under identical full-bench conditions, while
#: the stable remainder tracked within 0.65-1.35x smoke-vs-full.
NOISY_CASES = frozenset(
    {
        "autocommit insert (1 row)",
        "concurrent scans x4 (serialized)",
        "concurrent scans x4 (batch-interleaved)",
        "connection checkout (pooled)",
        "connection construct (fresh)",
        "cursor first-10 of 5k (streamed)",
        "paged cold start (reopen + first query)",
        "point query (index probe)",
        "pooled workload statements",
        "repeat query (connection facade)",
        "repeat query (plan cache)",
        "replicated read (3-replica cluster)",
        "replicated read (single primary)",
        "replication catch-up (records applied)",
        "replication failover (promote)",
        "sharded 2PC write (4 rows x 4 shards)",
        "sharded LIMIT 10 (pushdown)",
        "sharded point lookup (routed)",
        "wal commit (fsync each)",
        "wal group commit (64/batch)",
    }
)

#: Reported and trend-tracked but never gated: sub-100ms latency
#: measurements whose rates swing an order of magnitude with runner
#: state (observed 26-452 ops/s for promote under identical
#: conditions). No tolerance is honest for these; the trend.csv rows
#: are the regression signal.
UNGATED_CASES = frozenset(
    {
        "replication failover (promote)",
        "quorum commit (ack 2 of 3)",
        "online reshard 2->4 (rows moved)",
        "coordinator crash recovery (in-doubt txns resolved)",
        "probe timeout detection latency",
    }
)


def load_rates(path: Path) -> dict[str, float]:
    data = json.loads(path.read_text())
    rates = data.get("ops_per_sec")
    if not isinstance(rates, dict) or not rates:
        raise SystemExit(f"{path}: no ops_per_sec section")
    return {str(k): float(v) for k, v in rates.items()}


def case_tolerance(name: str, tolerance: float, noisy_tolerance: float) -> float:
    return noisy_tolerance if name in NOISY_CASES else tolerance


def compare(
    baseline: dict[str, float],
    candidate: dict[str, float],
    tolerance: float,
    noisy_tolerance: float | None = None,
) -> list[str]:
    """Regression messages for shared cases slower than their floor."""
    if noisy_tolerance is None:
        noisy_tolerance = tolerance
    regressions = []
    for name in sorted(set(baseline) & set(candidate)):
        if name in UNGATED_CASES:
            continue
        allowed = case_tolerance(name, tolerance, noisy_tolerance)
        floor = baseline[name] / allowed
        if candidate[name] < floor:
            regressions.append(
                f"REGRESSION {name!r}: {candidate[name]:,.1f} ops/s < "
                f"{floor:,.1f} (baseline {baseline[name]:,.1f} / "
                f"tolerance {allowed:g})"
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("candidate", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="allowed slowdown factor for stable cases (default 2.0)",
    )
    parser.add_argument(
        "--noisy-tolerance",
        type=float,
        default=3.0,
        help="allowed slowdown factor for NOISY_CASES (default 3.0)",
    )
    args = parser.parse_args(argv)
    if args.tolerance <= 1.0:
        parser.error("--tolerance must be > 1.0")
    if args.noisy_tolerance < args.tolerance:
        parser.error("--noisy-tolerance must be >= --tolerance")

    baseline = load_rates(args.baseline)
    candidate = load_rates(args.candidate)

    shared = sorted(set(baseline) & set(candidate))
    width = max((len(name) for name in shared), default=4)
    print(f"{'case'.ljust(width)} | baseline ops/s | candidate ops/s | ratio")
    for name in shared:
        ratio = candidate[name] / baseline[name] if baseline[name] else float("inf")
        if name in UNGATED_CASES:
            noisy = " (ungated)"
        elif name in NOISY_CASES:
            noisy = " (noisy)"
        else:
            noisy = ""
        print(
            f"{name.ljust(width)} | {baseline[name]:>14,.1f} | "
            f"{candidate[name]:>15,.1f} | {ratio:5.2f}x{noisy}"
        )
    for name in sorted(set(baseline) ^ set(candidate)):
        side = "baseline" if name in baseline else "candidate"
        print(f"(only in {side}: {name!r})")

    if not shared:
        # Zero overlap means no perf check ran at all (renamed cases, or
        # a candidate from a different bench); a vacuous pass would
        # silently disable the gate.
        print(
            "ERROR: baseline and candidate share no case names; "
            "regenerate the baseline to match the bench",
            file=sys.stderr,
        )
        return 1
    regressions = compare(
        baseline, candidate, args.tolerance, args.noisy_tolerance
    )
    for message in regressions:
        print(message, file=sys.stderr)
    if regressions:
        return 1
    print(
        f"OK: {len(shared)} case(s) within tolerance "
        f"({args.tolerance:g}x stable / {args.noisy_tolerance:g}x noisy)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
