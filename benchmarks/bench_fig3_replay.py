"""E4/E5/E6 — Figure 3: original history, faithful replay, retroactive fix.

Benchmarks the replay engine (top half) and the retroactive engine over
both orderings (bottom half), printing both histories in the paper's
lane layout, plus the checkpointed dev-database restore that makes
replay O(delta) instead of O(history).
"""

import time

from repro.apps.moodle import subscribe_user_fixed
from repro.core import report

from conftest import fresh_moodle, racy_scenario


def test_fig3_top_replay(benchmark, emit):
    db, runtime, trod = racy_scenario(fresh_moodle())

    result = benchmark.pedantic(
        lambda: trod.replayer.replay_request("R1"), rounds=5, iterations=1
    )

    emit(
        "",
        "=== E4: Figure 3 (top) — original transaction history ===",
        report.history_diagram(trod, req_ids=["R1", "R2", "R3"]),
        "",
        "=== E5: §3.5 replay of R1 (breakpoints + injected writes) ===",
    )
    for step in result.steps:
        injected = [
            f"{w.kind} {w.table}({w.values}) from {w.req_id}"
            for w in step.injected
        ]
        emit(
            f"  step {step.index}: before {step.original_txn} "
            f"[{step.label}] injected={injected or 'nothing'}"
        )
    emit(
        f"  replay output: {result.output!r} "
        f"(original {result.original_output})",
        f"  fidelity: {result.fidelity}",
        f"  dev forum_sub rows: {result.dev_db.table_rows('forum_sub')}",
        "",
    )

    assert result.fidelity, result.divergences
    assert len(result.dev_db.table_rows("forum_sub")) == 2  # bug reproduced
    # The injected write between R1's transactions came from R2.
    assert [w.req_id for w in result.steps[1].injected] == ["R2"]


def test_fig3_bottom_retroactive(benchmark, emit):
    db, runtime, trod = racy_scenario(fresh_moodle())
    trod.flush()

    result = benchmark.pedantic(
        lambda: trod.retroactive.run(
            ["R1", "R2"],
            patches={"subscribeUser": subscribe_user_fixed},
            followups=["R3"],
        ),
        rounds=3,
        iterations=1,
    )

    emit(
        "",
        "=== E6: Figure 3 (bottom) — retroactive run of the patched code ===",
        result.summary(),
    )
    for outcome in result.outcomes:
        followup = outcome.followups[0]
        emit(
            f"  ordering {outcome.schedule}: final forum_sub = "
            f"{outcome.final_state['forum_sub']}, "
            f"fetchSubscribers -> {followup.output_repr} "
            f"(error: {followup.error})"
        )
    emit("")

    # Paper shape: both orderings tested, duplication gone, R3' clean.
    assert result.explored == 2
    assert result.all_ok
    assert result.states_agree()
    for outcome in result.outcomes:
        assert outcome.final_state["forum_sub"] == [("U1", "F2")]
        assert outcome.followups[0].error is None


def test_fig3_checkpointed_dev_db_restore(benchmark, emit):
    """Checkpointed ``build_dev_db`` must beat full-history restore."""
    db, runtime, trod = racy_scenario(fresh_moodle())
    # Grow the history well past the slice replay cares about.
    for i in range(300):
        runtime.submit("subscribeUser", f"U{i + 10}", "F1")
    trod.flush()
    prov = trod.provenance
    upto = db.last_csn
    prov.create_checkpoint(upto)

    def best_of(fn, rounds=5):
        samples = []
        for _ in range(rounds):
            start = time.perf_counter_ns()
            fn()
            samples.append(time.perf_counter_ns() - start)
        return min(samples) / 1e6  # milliseconds

    checkpointed_ms = best_of(lambda: trod.replayer.build_dev_db(upto))
    dev_ck = trod.replayer.build_dev_db(upto)
    saved = dict(prov._checkpoints)
    prov.invalidate_checkpoints()
    full_ms = best_of(lambda: trod.replayer.build_dev_db(upto))
    dev_full = trod.replayer.build_dev_db(upto)
    prov._checkpoints = saved

    benchmark(lambda: trod.replayer.build_dev_db(upto))

    emit(
        "",
        "=== E4b: checkpointed vs full-history dev-db restore ===",
        f"  history: {upto} commits, "
        f"{prov.event_count} provenance rows",
        f"  full-history restore: {full_ms:.2f} ms",
        f"  checkpointed restore: {checkpointed_ms:.2f} ms "
        f"({full_ms / checkpointed_ms:.1f}x faster)",
        "",
    )

    # Same state either way, but the checkpointed path must win.
    for table in dev_full.catalog.table_names():
        assert dev_ck.table_rows(table) == dev_full.table_rows(table)
    assert checkpointed_ms < full_ms
