"""Shared benchmark environment builders.

Every benchmark prints its paper-shaped output through ``emit`` (which
bypasses pytest's capture so the tables land in the terminal and in the
``tee``'d bench_output.txt) and also asserts the qualitative shape the
paper reports, so regressions fail loudly rather than silently drifting.
"""

from __future__ import annotations

import pytest

from repro.apps import (
    build_ecommerce_app,
    build_mediawiki_app,
    build_moodle_app,
    build_profiles_app,
)
from repro.core import Trod
from repro.db import Database, SimulatedBackend
from repro.runtime import Runtime
from repro.workload.generators import ForumWorkload


@pytest.fixture
def emit(capsys):
    """Print unconditionally (outside pytest capture)."""

    def _emit(*lines: object) -> None:
        with capsys.disabled():
            for line in lines:
                print(line)

    return _emit


def fresh_moodle(backend_name: str | None = None, attach_trod: bool = True):
    backend = SimulatedBackend.named(backend_name) if backend_name else None
    db = Database(backend=backend)
    runtime = Runtime(db)
    names = build_moodle_app(db, runtime)
    trod = None
    if attach_trod:
        trod = Trod(db, event_names=names).attach(runtime)
    return db, runtime, trod


def fresh_mediawiki():
    db = Database()
    runtime = Runtime(db)
    names = build_mediawiki_app(db, runtime)
    trod = Trod(db, event_names=names).attach(runtime)
    return db, runtime, trod


def fresh_ecommerce(backend_name: str | None = None, attach_trod: bool = True):
    backend = SimulatedBackend.named(backend_name) if backend_name else None
    db = Database(backend=backend)
    runtime = Runtime(db)
    names = build_ecommerce_app(db, runtime)
    trod = None
    if attach_trod:
        trod = Trod(db, event_names=names).attach(runtime)
    return db, runtime, trod


def fresh_profiles():
    db = Database()
    runtime = Runtime(db)
    names = build_profiles_app(db, runtime)
    trod = Trod(db, event_names=names).attach(runtime)
    return db, runtime, trod


def racy_scenario(trod_runtime):
    """Run the paper's §2 scenario on an already-built moodle env."""
    db, runtime, trod = trod_runtime
    runtime.run_concurrent(
        ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
    )
    runtime.submit("fetchSubscribers", "F2")
    return db, runtime, trod
