"""E10–E14 — §4 case studies: MediaWiki, Moodle regression, security.

Each case runs the bug's scenario, then the TROD workflow that the paper
describes for it (declarative location, replay, retroactive validation,
or provenance-based security analysis), timing the TROD operation.
"""

from repro.apps.mediawiki import edit_page_fixed
from repro.apps.moodle import subscribe_user_fixed
from repro.runtime import Request
from repro.workload.generators import ForumWorkload
from repro.workload.harness import render_table

from conftest import fresh_ecommerce, fresh_mediawiki, fresh_moodle, fresh_profiles

RACY_EDITS_SCHEDULE = [0, 1, 0, 1, 0, 1]


def build_mw_scenario():
    db, runtime, trod = fresh_mediawiki()
    runtime.submit("createPage", "P1", "Title", "hello")  # R1
    runtime.run_concurrent(
        [
            Request("editPage", ("P1", "hello world", "http://x.org")),
            Request("editPage", ("P1", "hello!", "http://x.org")),
        ],
        schedule=RACY_EDITS_SCHEDULE,
    )  # R2, R3
    runtime.submit("fetchSiteLinks", "P1")  # R4: the error report
    trod.flush()
    return db, runtime, trod


def test_e10_mw44325_duplicate_sitelinks(benchmark, emit):
    db, runtime, trod = build_mw_scenario()

    def locate_and_validate():
        dupes = trod.debugger.duplicate_inserts("site_links", ["PageId", "Url"])
        replay = trod.replayer.replay_request("R2")
        retro = trod.retroactive.run(
            ["R2", "R3"],
            patches={"editPage": edit_page_fixed},
            followups=["R4"],
        )
        return dupes, replay, retro

    dupes, replay, retro = benchmark.pedantic(
        locate_and_validate, rounds=3, iterations=1
    )

    emit(
        "",
        "=== E10: MW-44325 — duplicate sitelinks from concurrent edits ===",
        f"  provenance located duplicate {dupes[0]['key']} inserted by "
        f"{[w['ReqId'] for w in dupes[0]['writers']]}",
        f"  replay of R2 faithful: {replay.fidelity}",
        f"  retroactive fix: {retro.explored} orderings, all pass: "
        f"{retro.all_ok}",
        "",
    )
    assert len(dupes) == 1
    assert {w["ReqId"] for w in dupes[0]["writers"]} == {"R2", "R3"}
    assert replay.fidelity, replay.divergences
    assert retro.all_ok
    for outcome in retro.outcomes:
        assert outcome.final_state["site_links"] == [("P1", "http://x.org")]


def test_e11_mw39225_wrong_size_deltas(benchmark, emit):
    db, runtime, trod = fresh_mediawiki()
    runtime.submit("createPage", "P1", "Title", "hello")  # R1, size 5
    runtime.run_concurrent(
        [
            Request("editPage", ("P1", "hello world", None)),
            Request("editPage", ("P1", "hello!", None)),
        ],
        schedule=RACY_EDITS_SCHEDULE,
    )  # R2, R3
    check = runtime.submit("checkSizeConsistency", "P1", 5)  # R4: detects
    trod.flush()
    assert not check.ok

    def debug_workflow():
        # Which requests wrote revisions with which deltas?
        writers = trod.debugger.find_writers("revisions", kind="Insert")
        interleaved = trod.debugger.interleaved_writes("R2")
        retro = trod.retroactive.run(
            ["R2", "R3"],
            patches={"editPage": edit_page_fixed},
            followups=["R4"],
        )
        return writers, interleaved, retro

    writers, interleaved, retro = benchmark.pedantic(
        debug_workflow, rounds=3, iterations=1
    )

    emit(
        "=== E11: MW-39225 — wrong article size changes ===",
        f"  revision writers: {sorted(set(writers.column('ReqId')))}",
        f"  writes interleaved into R2: "
        f"{[(w['ReqId'], w['Type'], w['_table']) for w in interleaved]}",
        f"  retroactive fix all orderings pass: {retro.all_ok}",
        "",
    )
    assert set(writers.column("ReqId")) == {"R2", "R3"}
    assert any(w["ReqId"] == "R3" for w in interleaved)
    assert retro.all_ok  # atomic edit keeps the size history consistent


def test_e12_mdl60669_patch_regression(benchmark, emit):
    db, runtime, trod = fresh_moodle()
    runtime.submit("createCourse", "C1", "Intro", ["F2"])  # R1
    runtime.run_concurrent(
        ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
    )  # R2, R3 create the duplicates
    runtime.submit("deleteCourse", "C1")  # R4
    restore = runtime.submit("restoreCourse", "C1")  # R5 fails in prod
    trod.flush()
    assert not restore.ok

    def validate_patch_widely():
        narrow = trod.retroactive.run(
            ["R2", "R3"], patches={"subscribeUser": subscribe_user_fixed}
        )
        wide = trod.retroactive.run(
            ["R2", "R3"],
            orderings=[[0, 1, 1, 0]],  # reproduce the original duplicates
            followups=["R4", "R5"],
        )
        return narrow, wide

    narrow, wide = benchmark.pedantic(validate_patch_widely, rounds=3, iterations=1)

    emit(
        "=== E12: MDL-60669 — the MDL-59854 patch regression ===",
        f"  narrow retroactive test (patched subscriptions only) passes: "
        f"{narrow.all_ok}",
        f"  wide test incl. course restore over original duplicates "
        f"fails: {not wide.all_ok}",
        f"  restore error: {wide.outcomes[0].followups[-1].error}",
        "",
    )
    assert narrow.all_ok  # the patch looks fine in isolation...
    assert not wide.all_ok  # ...but the wide test catches the regression
    assert "duplicate" in wide.outcomes[0].followups[-1].error


def test_e13_user_profiles_pattern(benchmark, emit):
    db, runtime, trod = fresh_profiles()
    runtime.submit("createProfile", "alice", "a@x.com", auth_user="alice")
    runtime.submit("updateProfile", "alice", "hi", auth_user="alice")
    runtime.submit("updateProfileInsecure", "alice", "pwn", auth_user="mallory")
    runtime.submit("sendMessage", "M1", "alice", "s3cret", auth_user="bob")
    runtime.submit("readMessages", "alice")  # unauthenticated
    trod.flush()

    violations = benchmark(
        lambda: (
            trod.security.user_profiles("profiles"),
            trod.security.authentication("messages"),
        )
    )
    profile_violations, auth_violations = violations

    emit(
        "=== E13: §4.2 access-control patterns ===",
        render_table(
            ["pattern", "request", "handler"],
            [
                [v.pattern, v.req_id, v.handler]
                for v in profile_violations + auth_violations
            ],
        ),
        "",
    )
    assert [v.handler for v in profile_violations] == ["updateProfileInsecure"]
    assert [v.handler for v in auth_violations] == ["readMessages"]


def test_e14_exfiltration_through_workflows(benchmark, emit):
    db, runtime, trod = fresh_ecommerce()
    runtime.submit("registerUser", "U1", "u1@x.com", "4111-1111")
    runtime.submit("registerUser", "U2", "u2@x.com", "4222-2222")
    runtime.submit("restock", "SKU1", 10)
    runtime.submit("addToCart", "C1", "U1", "SKU1", 1, 9.0)
    runtime.submit("checkout", "C1", "U1")  # benign workflow with email
    runtime.submit("harvestData", "steal-1")  # reads users -> staging
    runtime.submit("exportReport", "steal-1")  # staging -> export channel
    runtime.submit("weeklyReport")  # benign email
    trod.flush()

    flows = benchmark(lambda: trod.taint.find_flows(["users"]))

    emit(
        "=== E14: §4.2 data exfiltration through workflows ===",
        render_table(
            ["request", "handler", "hops", "tainted sources", "sink"],
            [
                [
                    f.req_id,
                    f.handler,
                    f.hops,
                    ",".join(f.sources),
                    f.sinks[0]["Channel"],
                ]
                for f in flows
            ],
        ),
        "  (the benign checkout/weeklyReport emails are not flagged)",
        "",
    )
    assert len(flows) == 1
    assert flows[0].handler == "exportReport"
    assert flows[0].hops == 2  # lateral movement via the staging table
