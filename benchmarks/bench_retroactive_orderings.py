"""E9/A2 — §3.6 ordering-space size: naive vs conflict-pruned enumeration.

Paper: "Naively, there are a prohibitively large number of possible ways
to interleave instructions among concurrent executions. However ... TROD
can identify relevant transactions and only enumerate possible
re-execution orderings of those transactions."

We measure the naive interleaving count against TROD's pruned enumeration
for mixed workloads (some requests touching the same forum table, some
disjoint), and time a full retroactive validation across all pruned
orderings.
"""

from repro.core.orderings import (
    TxnStep,
    enumerate_interleavings,
    naive_interleaving_count,
)
from repro.workload.harness import render_table

from conftest import fresh_moodle
from repro.apps.moodle import subscribe_user_fixed
from repro.runtime import Request


def make_seq(req, footprints):
    return [
        TxnStep(req_index=req, ordinal=i, reads=frozenset(r), writes=frozenset(w))
        for i, (r, w) in enumerate(footprints)
    ]


SCENARIOS = [
    (
        "2 racy subscribers (2 txns each, same table)",
        [
            make_seq(0, [({"forum_sub"}, set()), (set(), {"forum_sub"})]),
            make_seq(1, [({"forum_sub"}, set()), (set(), {"forum_sub"})]),
        ],
    ),
    (
        "2 racy + 1 disjoint request",
        [
            make_seq(0, [({"forum_sub"}, set()), (set(), {"forum_sub"})]),
            make_seq(1, [({"forum_sub"}, set()), (set(), {"forum_sub"})]),
            make_seq(2, [({"courses"}, set()), (set(), {"courses"})]),
        ],
    ),
    (
        "3 pairwise-disjoint requests",
        [
            make_seq(0, [(set(), {"a"})] * 2),
            make_seq(1, [(set(), {"b"})] * 2),
            make_seq(2, [(set(), {"c"})] * 2),
        ],
    ),
    (
        "4 racy subscribers",
        [
            make_seq(r, [({"forum_sub"}, set()), (set(), {"forum_sub"})])
            for r in range(4)
        ],
    ),
]


def test_ordering_enumeration_pruning(benchmark, emit):
    rows = []
    for name, seqs in SCENARIOS:
        naive = naive_interleaving_count([len(s) for s in seqs])
        pruned, truncated = enumerate_interleavings(seqs, prune=True, cap=100_000)
        assert not truncated
        rows.append([name, naive, len(pruned), f"{naive / len(pruned):.1f}x"])

    benchmark(
        lambda: enumerate_interleavings(SCENARIOS[3][1], prune=True, cap=100_000)
    )

    emit(
        "",
        "=== E9: §3.6 ordering space — naive vs conflict-pruned ===",
        render_table(
            ["scenario", "naive interleavings", "pruned", "reduction"], rows
        ),
        "",
    )

    # Shape: pruning never loses behaviours (counts are <= naive), and
    # fully-independent requests collapse to a single ordering.
    assert all(row[2] <= row[1] for row in rows)
    disjoint_row = rows[2]
    assert disjoint_row[2] == 1
    racy4 = rows[3]
    assert racy4[1] == 2_520  # 8!/(2!^4)
    assert racy4[2] < racy4[1]


def test_retroactive_validation_across_all_orderings(benchmark, emit):
    """Time the full §3.6 workflow: patch + every pruned ordering."""
    db, runtime, trod = fresh_moodle()
    requests = [
        Request("subscribeUser", ("U1", "F2")),
        Request("subscribeUser", ("U1", "F2")),
        Request("subscribeUser", ("U2", "F2")),
    ]
    runtime.run_concurrent(requests, schedule=[0, 1, 2, 1, 0, 2])
    trod.flush()

    result = benchmark.pedantic(
        lambda: trod.retroactive.run(
            ["R1", "R2", "R3"],
            patches={"subscribeUser": subscribe_user_fixed},
            max_orderings=64,
        ),
        rounds=3,
        iterations=1,
    )

    emit(
        "=== E9b: retroactive validation across pruned orderings ===",
        result.summary(),
        "",
    )
    assert result.all_ok
    assert result.states_agree()
    # Patched requests are single-txn and all conflict on forum_sub:
    # every permutation of 3 txns is distinguishable.
    assert result.naive_orderings == 6
    assert result.explored == 6
