"""E8 — §3.7 declarative debugging query latency vs event count.

Paper: "We also run declarative debugging queries over billions of events
and get results in <5 seconds."

A pure-Python row store cannot hold 10^9 events, so we sweep 10^3..5x10^4
synthetic provenance events, measure the paper's duplicate-hunting join
query and the §4.2 security query, verify near-linear scaling, and
extrapolate the per-event cost to the paper's scale (documenting that the
paper's number comes from a vectorized analytical engine).
"""

import time

from repro.workload.generators import ProvenanceFiller
from repro.workload.harness import render_table

from conftest import fresh_moodle

SWEEP = [1_000, 10_000, 50_000]

DUPLICATE_QUERY = (
    "SELECT Timestamp, ReqId, HandlerName"
    " FROM Executions as E, ForumEvents as F"
    " ON E.TxnId = F.TxnId"
    " WHERE F.UserId = 'U1' AND F.Forum = 'F2' AND F.Type = 'Insert'"
    " ORDER BY Timestamp ASC"
)

SECURITY_QUERY = (
    "SELECT COUNT(*)"
    " FROM Executions as E, ForumEvents as F"
    " ON E.TxnId = F.TxnId"
    " WHERE E.AuthUser != F.UserId AND F.Type = 'Insert'"
)

AGGREGATE_QUERY = (
    "SELECT F.Forum, COUNT(*) AS n FROM ForumEvents AS F"
    " WHERE F.Type = 'Insert' GROUP BY F.Forum ORDER BY n DESC LIMIT 5"
)


def time_query(trod, sql) -> tuple[float, int]:
    start = time.perf_counter_ns()
    result = trod.provenance.query(sql)
    elapsed_ms = (time.perf_counter_ns() - start) / 1e6
    return elapsed_ms, len(result)


def test_query_latency_scaling(benchmark, emit):
    rows = []
    trods = {}
    for n_events in SWEEP:
        _db, _runtime, trod = fresh_moodle()
        filler = ProvenanceFiller(trod.provenance.db, event_table="ForumEvents")
        filler.fill(n_events, duplicate_every=max(100, n_events // 50))
        dup_ms, dup_rows = time_query(trod, DUPLICATE_QUERY)
        sec_ms, _ = time_query(trod, SECURITY_QUERY)
        agg_ms, _ = time_query(trod, AGGREGATE_QUERY)
        rows.append(
            [n_events, dup_ms, sec_ms, agg_ms, 1000.0 * dup_ms / n_events]
        )
        trods[n_events] = (trod, dup_rows)

    # Benchmark the paper's query at the largest sweep point.
    big_trod, _ = trods[SWEEP[-1]]
    benchmark(lambda: big_trod.provenance.query(DUPLICATE_QUERY))

    per_event_us = rows[-1][4]
    extrapolated_s = per_event_us * 1e9 / 1e6  # us/event * 1e9 events -> s
    emit(
        "",
        "=== E8: §3.7 declarative query latency vs traced event count ===",
        render_table(
            [
                "events", "dup query ms", "security query ms",
                "aggregate ms", "per-event us",
            ],
            rows,
        ),
        f"per-event cost at n={SWEEP[-1]}: {per_event_us:.2f}us; naive"
        f" extrapolation to 1e9 events: {extrapolated_s:,.0f}s on this"
        " pure-Python engine",
        "paper: <5s over billions of events on a vectorized analytical"
        " store — the shape reproduced here is near-linear scan scaling"
        " with interactive latencies at debugging scale",
        "",
    )

    # Shape assertions: query returns the injected duplicates, latency is
    # interactive at the largest size, and scaling is near-linear (not
    # quadratic): 50x more events must cost far less than 50^2.
    _trod, dup_rows = trods[SWEEP[-1]]
    assert dup_rows > 0
    assert rows[-1][1] < 5_000  # <5s at 5e4 events, interactive
    ratio = rows[-1][1] / max(rows[0][1], 0.001)
    assert ratio < 500, f"duplicate query scaled superlinearly: {ratio:.0f}x"
