"""A1/A3/A4/A5 — ablations of TROD's design choices (DESIGN.md §3).

* A1: dependency-filtered vs full snapshot restore during replay (§3.5's
  "only restore those data items used in replayed transactions").
* A3: ring-buffered tracing vs per-event synchronous provenance inserts
  (§3.7's "high-performance in-memory buffer").
* A4: transaction- vs statement-granularity scheduling cost.
* A5: replay under snapshot isolation (reenactment) vs serializable.
"""

import time

from repro.core import Trod
from repro.db import Database, IsolationLevel
from repro.runtime import Request, Runtime
from repro.workload.generators import ForumWorkload
from repro.workload.harness import render_table

from conftest import fresh_moodle, racy_scenario
from repro.apps import build_moodle_app


def test_a1_dependency_filtered_vs_full_restore(benchmark, emit):
    db, runtime, trod = racy_scenario(fresh_moodle())
    # Bulk up the untouched tables so the filter has something to skip.
    for i in range(300):
        runtime.submit("createCourse", f"C{i}", f"Course {i}", [f"F{i % 7}"])
    trod.flush()

    def timed_replay(dependency_filter):
        start = time.perf_counter_ns()
        result = trod.replayer.replay_request(
            "R1", dependency_filter=dependency_filter
        )
        elapsed_ms = (time.perf_counter_ns() - start) / 1e6
        assert result.fidelity, result.divergences
        return elapsed_ms, result

    full_ms, full_result = timed_replay(False)
    filtered_ms, filtered_result = timed_replay(True)
    benchmark(lambda: trod.replayer.replay_request("R1", dependency_filter=True))

    emit(
        "",
        "=== A1: replay restore — dependency-filtered vs full ===",
        render_table(
            ["mode", "ms", "tables restored"],
            [
                ["full restore", full_ms, len(full_result.dev_db.catalog.table_names())],
                ["dependency-filtered", filtered_ms,
                 len(filtered_result.dev_db.catalog.table_names())],
            ],
        ),
        "",
    )
    # The filtered replay restores strictly fewer tables...
    assert len(filtered_result.dev_db.catalog.table_names()) < len(
        full_result.dev_db.catalog.table_names()
    )
    # ...and both reproduce the bug identically.
    assert (
        filtered_result.dev_db.table_rows("forum_sub")
        == full_result.dev_db.table_rows("forum_sub")
    )


def test_a3_buffered_vs_unbuffered_tracing(benchmark, emit):
    def run_traced(buffer_capacity: int) -> float:
        db = Database()
        runtime = Runtime(db)
        names = build_moodle_app(db, runtime)
        Trod(db, event_names=names, buffer_capacity=buffer_capacity).attach(
            runtime
        )
        start = time.perf_counter_ns()
        for i in range(150):
            runtime.submit("subscribeUser", f"U{i}", f"F{i % 5}")
        return (time.perf_counter_ns() - start) / 1e6

    buffered_ms = run_traced(buffer_capacity=65536)
    unbuffered_ms = run_traced(buffer_capacity=1)  # flush on every event

    db, runtime, trod = fresh_moodle()
    counter = iter(range(10**9))
    benchmark(lambda: runtime.submit("subscribeUser", f"U{next(counter)}", "F1"))

    emit(
        "=== A3: tracing with ring buffer vs per-event provenance insert ===",
        render_table(
            ["mode", "150 requests ms", "ms/request"],
            [
                ["buffered (cap 65536)", buffered_ms, buffered_ms / 150],
                ["unbuffered (cap 1)", unbuffered_ms, unbuffered_ms / 150],
            ],
        ),
        "paper: the in-memory buffer is what keeps always-on tracing <15%",
        "",
    )
    # The buffer must help (generous bound: at least no slower).
    assert buffered_ms <= unbuffered_ms * 1.2


def test_a4_scheduler_granularity_cost(benchmark, emit):
    def run_batch(granularity: str) -> float:
        db, runtime, _trod = fresh_moodle(attach_trod=False)
        requests = [
            Request("subscribeUser", (f"U{i}", f"F{i % 3}")) for i in range(12)
        ]
        start = time.perf_counter_ns()
        results = runtime.run_concurrent(requests, seed=3, granularity=granularity)
        assert all(r.ok for r in results)
        return (time.perf_counter_ns() - start) / 1e6

    txn_ms = run_batch("txn")
    stmt_ms = run_batch("statement")
    benchmark.pedantic(lambda: run_batch("txn"), rounds=3, iterations=1)

    emit(
        "=== A4: scheduler granularity — transaction vs statement ===",
        render_table(
            ["granularity", "12-request batch ms"],
            [["txn", txn_ms], ["statement", stmt_ms]],
        ),
        "statement granularity adds yield points (and possible lock waits)"
        " inside transactions; txn granularity is the default and matches"
        " the paper's strict-serializability model (absolute costs are"
        " thread-scheduling noise at this scale)",
        "",
    )
    assert txn_ms > 0 and stmt_ms > 0


def test_a5_si_reenactment_replay(benchmark, emit):
    """Replay fidelity and cost under SNAPSHOT isolation reenactment."""
    db = Database()
    runtime = Runtime(db, isolation=IsolationLevel.SNAPSHOT)
    names = build_moodle_app(db, runtime)
    trod = Trod(db, event_names=names).attach(runtime)
    runtime.run_concurrent(
        ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
    )
    runtime.submit("fetchSubscribers", "F2")
    trod.flush()

    result = benchmark.pedantic(
        lambda: trod.replayer.replay_request("R1"), rounds=5, iterations=1
    )

    isolation = trod.query(
        "SELECT DISTINCT Isolation FROM Executions WHERE Status = 'Committed'"
    ).column("Isolation")
    emit(
        "=== A5: GProM-style reenactment — replay under SNAPSHOT isolation ===",
        f"  traced isolation levels: {isolation}",
        f"  replay fidelity: {result.fidelity} "
        f"(injection bound = recorded snapshot CSN per txn)",
        "",
    )
    assert isolation == ["SNAPSHOT"]
    assert result.fidelity, result.divergences
    assert len(result.dev_db.table_rows("forum_sub")) == 2
