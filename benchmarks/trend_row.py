"""Append one per-commit row to the perf trend log.

Usage::

    python benchmarks/trend_row.py BENCH.json SHA [trend.csv]
    python benchmarks/trend_row.py --render [trend.csv]

The first form reads a ``bench_substrate`` JSON result, appends a
one-line summary of the headline rates to the CSV log (creating it with
a header if absent), and prints a markdown table row for the CI job
summary. The committed ``benchmarks/trend.csv`` seeds the log with the
developer-machine baseline of each landed change; CI appends its own
smoke-mode rows to the job summary so per-commit drift is visible
without regenerating the committed baseline.

``--render`` prints the whole accumulated log as a markdown table, each
rate cell annotated with its delta against the previous row of the same
case — the per-case trajectory reads straight off the job summary
instead of a raw CSV dump.
"""

from __future__ import annotations

import datetime
import json
import sys
from pathlib import Path

#: The compute-tail headliners tracked per commit, in column order.
HEADLINE = [
    "aggregate scan (5k rows)",
    "hash join (5k x 50)",
    "filtered scan 50% selectivity",
    "sharded aggregate (partial/final)",
    "point query (index probe)",
    "full scan latest (live cache)",
]

HEADER = "date,sha," + ",".join(
    name.replace(",", ";") for name in HEADLINE
)


def render(csv_path: Path) -> str:
    """Render the trend log as a markdown table with per-case deltas."""
    if not csv_path.exists():
        return "_no trend data yet_"
    lines = [ln for ln in csv_path.read_text().splitlines() if ln.strip()]
    if len(lines) < 2:
        return "_no trend data yet_"
    header = lines[0].split(",")
    table = [
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    prev: list[str] | None = None
    for line in lines[1:]:
        cells = line.split(",")
        rendered = [cells[0], f"`{cells[1]}`" if len(cells) > 1 else ""]
        for i, cell in enumerate(cells[2:], start=2):
            try:
                value = float(cell)
            except ValueError:
                rendered.append(cell)
                continue
            note = ""
            if prev is not None and i < len(prev):
                try:
                    before = float(prev[i])
                except ValueError:
                    before = 0.0
                if before > 0:
                    note = f" ({(value - before) / before * 100:+.0f}%)"
            rendered.append(f"{cell}{note}")
        table.append("| " + " | ".join(rendered) + " |")
        prev = cells
    return "\n".join(table)


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--render":
        csv_path = (
            Path(argv[1]) if len(argv) > 1 else Path("benchmarks/trend.csv")
        )
        print(render(csv_path))
        return 0
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    results = json.loads(Path(argv[0]).read_text())
    rates = results.get("ops_per_sec", {})
    sha = argv[1][:12]
    csv_path = Path(argv[2]) if len(argv) > 2 else Path("benchmarks/trend.csv")
    date = datetime.date.today().isoformat()
    cells = [f"{rates.get(name, 0.0):.1f}" for name in HEADLINE]
    line = ",".join([date, sha] + cells)
    existing = csv_path.read_text() if csv_path.exists() else ""
    with csv_path.open("a") as log:
        if not existing:
            log.write(HEADER + "\n")
        log.write(line + "\n")
    print(
        "| "
        + " | ".join([date, f"`{sha}`"] + cells)
        + " |  _(ops/s: "
        + ", ".join(HEADLINE)
        + ")_"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
