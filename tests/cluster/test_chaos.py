"""Chaos: kill a primary and reshard 2 -> 4 under a live workload.

The end-state test for the self-managing cluster. On one cooperative
scheduler, four tasks interleave deterministically:

* a randomized ledger workload runs through the Connection API
  (autocommit statements, transparent failover retry),
* the controller's detection loop probes every primary and replica and
  promotes on confirmed failure — no test code ever calls ``promote()``
  or ``failover()``,
* the controller's ship loop keeps replicas converging,
* a director task injects the chaos: crashes a shard primary and a
  replica, waits for the automatic promotion, probes pre-reshard
  history, then reshards the cluster 2 -> 4 while the workload writes.

Afterwards the identical statement stream replays on a single-node twin
and every result fingerprint must match byte-for-byte; AS OF probes at
bookmarked commits compare sharded-vs-twin history row-for-row, and
bookmarks below the reshard horizon must raise TimeTravelError.
"""

import os
import random

import pytest

from repro.cluster import Controller
from repro.db.connection import connect
from repro.db.database import Database
from repro.db.sharding import ShardedDatabase
from repro.errors import TimeTravelError
from repro.runtime.scheduler import (
    CheckpointKind,
    CooperativeScheduler,
    maybe_checkpoint,
)

#: CI's chaos-seed matrix re-runs this module under several scheduler
#: seeds; the differential assertions must hold for every interleaving.
#: A failing seed is printed by the matrix for local replay:
#: ``REPRO_CHAOS_SEED=<seed> pytest tests/cluster/test_chaos.py``.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "17"))

REGIONS = ("north", "south", "east", "west")
N_KEYS = 32
PROBE_SQL = (
    "SELECT acct, balance, region FROM ledger WHERE acct >= 0 AS OF ?"
)


def seed_rows(conn) -> None:
    conn.execute(
        "CREATE TABLE ledger (acct INTEGER, balance FLOAT, region TEXT)"
    )
    for key in range(N_KEYS):
        conn.execute(
            "INSERT INTO ledger VALUES (?, ?, ?)",
            (key, 100.0, REGIONS[key % len(REGIONS)]),
        )


def make_statements(count: int, seed: int) -> list[tuple]:
    """A deterministic (kind, sql, params) stream; no AS OF statements —
    historical probes run under explicit control so the test can place
    them on the correct side of the reshard horizon."""
    rng = random.Random(seed)
    out = []
    for i in range(count):
        roll = rng.randrange(100)
        key = rng.randrange(N_KEYS)
        if roll < 28:
            out.append(
                (
                    "read",
                    "SELECT balance, region FROM ledger WHERE acct = ?",
                    (key,),
                )
            )
        elif roll < 40:
            out.append(
                (
                    "read",
                    "SELECT acct, balance FROM ledger "
                    "WHERE acct >= ? AND acct < ? ORDER BY acct",
                    (key, key + 6),
                )
            )
        elif roll < 50:
            out.append(
                (
                    "read",
                    "SELECT region, COUNT(*), SUM(balance) FROM ledger "
                    "GROUP BY region ORDER BY region",
                    (),
                )
            )
        elif roll < 72:
            out.append(
                (
                    "write",
                    "UPDATE ledger SET balance = balance + ? WHERE acct = ?",
                    (float(rng.randrange(50)), key),
                )
            )
        elif roll < 86:
            out.append(
                (
                    "write",
                    "INSERT INTO ledger VALUES (?, ?, ?)",
                    (
                        N_KEYS + i,
                        float(rng.randrange(500)),
                        REGIONS[i % len(REGIONS)],
                    ),
                )
            )
        else:
            out.append(
                ("write", "DELETE FROM ledger WHERE acct = ?", (key,))
            )
    return out


def replay_on_twin(statements: list[tuple]):
    """The same stream on a single node: fingerprints + CSN bookmarks."""
    twin = Database(name="twin")
    conn = connect(twin)
    seed_rows(conn)
    fingerprints, bookmarks = [], []
    for kind, sql, params in statements:
        result = conn.execute(sql, params)
        if kind == "write":
            fingerprints.append((kind, result.rowcount))
            bookmarks.append(twin.last_commit_csn)
        else:
            fingerprints.append((kind, sorted(result.rows)))
    return conn, fingerprints, bookmarks


class TestClusterChaos:
    def test_kill_promote_reshard_differential(self):
        sharded = ShardedDatabase(2, name="chaos", shard_keys={"ledger": "acct"})
        controller = Controller(sharded, suspicion_threshold=2)
        conn = connect(
            sharded, read_preference="primary", max_failover_retries=500
        )
        seed_rows(conn)
        sharded.attach_replicas(2)
        controller.refresh_watches()

        statements = make_statements(140, seed=23)
        fingerprints: list = []
        bookmarks: list[int] = []  # global CSN after each write
        progress = {"done": 0, "finished": False}
        events: dict = {}

        def workload():
            try:
                for i, (kind, sql, params) in enumerate(statements):
                    result = conn.execute(sql, params)
                    if kind == "write":
                        fingerprints.append((kind, result.rowcount))
                        bookmarks.append(sharded.last_commit_csn)
                    else:
                        fingerprints.append((kind, sorted(result.rows)))
                    progress["done"] = i + 1
                    maybe_checkpoint(CheckpointKind.SCAN_BATCH, "workload")
            finally:
                # Set even on error so the director can wind down and
                # stop the background loops — a failure must surface as
                # this worker's outcome, not a scheduler hang.
                progress["finished"] = True

        probe_conn = connect(sharded, read_preference="primary")

        def direct():
            while progress["done"] < 20 and not progress["finished"]:
                maybe_checkpoint(CheckpointKind.SCAN_BATCH, "director")
            controller.kill("shard0")
            controller.kill_replica("shard1", "chaos-shard1-r1")
            # The detection loop must confirm and promote on its own.
            while controller.detector.stats["failovers"] < 1:
                maybe_checkpoint(CheckpointKind.SCAN_BATCH, "director")
            events["failover_at"] = progress["done"]
            while progress["done"] < 60 and not progress["finished"]:
                maybe_checkpoint(CheckpointKind.SCAN_BATCH, "director")
            # Pre-reshard history is probed here, while it is reachable.
            pre_probes = []
            for index in range(0, len(bookmarks), 7):
                rows = sorted(
                    probe_conn.execute(PROBE_SQL, (bookmarks[index],)).rows
                )
                pre_probes.append((index, rows))
            events["pre_probes"] = pre_probes
            events["reshard_stats"] = controller.reshard(4, chunk_size=16)
            events["reshard_at"] = progress["done"]
            while not progress["finished"]:
                maybe_checkpoint(CheckpointKind.SCAN_BATCH, "director")

        def director():
            # stop() runs even if the director (or workload, observed
            # through progress) fails: the background loops must exit so
            # the error surfaces as an outcome, not a scheduler hang.
            try:
                direct()
            finally:
                controller.stop()

        scheduler = CooperativeScheduler(seed=CHAOS_SEED, granularity="batch")
        outcomes = scheduler.run(
            [
                workload,
                director,
                controller.detection_loop,
                controller.ship_loop,
            ]
        )
        errors = [o.error for o in outcomes if o.error is not None]
        assert errors == []

        # -- the chaos actually happened --------------------------------
        assert controller.detector.stats["failovers"] >= 1
        assert controller.detector.stats["confirmed_failures"] >= 2
        if CHAOS_SEED == 17:
            # Whether the workload races the promotion window is
            # interleaving-dependent: under some matrix seeds the
            # detector promotes before any statement routes to the dead
            # shard, so zero retries is a legitimate outcome. The
            # canonical seed is known to hit the window; deterministic
            # retry coverage lives in tests/cluster/test_cluster_faults.py.
            assert conn.stats["failover_retries"] > 0
        assert controller.stats["shipped_records"] > 0
        assert events["failover_at"] <= events["reshard_at"]
        assert events["reshard_stats"]["rows_copied"] > 0
        assert sharded.n_shards == 4
        assert progress["finished"]

        # -- differential vs the single-node twin ------------------------
        twin_conn, twin_fps, twin_bookmarks = replay_on_twin(statements)
        assert fingerprints == twin_fps
        assert len(bookmarks) == len(twin_bookmarks)
        final_state = "SELECT acct, balance, region FROM ledger WHERE acct >= 0"
        assert sorted(conn.execute(final_state).rows) == sorted(
            twin_conn.execute(final_state).rows
        )

        # Pre-reshard probes (taken live, before the swap) match the
        # twin's history at the same write indices.
        assert events["pre_probes"]
        for index, rows in events["pre_probes"]:
            twin_rows = sorted(
                twin_conn.execute(PROBE_SQL, (twin_bookmarks[index],)).rows
            )
            assert rows == twin_rows

        # Post-reshard bookmarks stay probe-able and byte-identical;
        # pre-reshard bookmarks now raise: that history lives only on
        # the retired stores.
        horizon = sharded.reshard_horizon
        pre = [k for k, csn in enumerate(bookmarks) if csn < horizon]
        post = [k for k, csn in enumerate(bookmarks) if csn >= horizon]
        assert pre and post
        for k in post[::3]:
            sharded_rows = sorted(
                conn.execute(PROBE_SQL, (bookmarks[k],)).rows
            )
            twin_rows = sorted(
                twin_conn.execute(PROBE_SQL, (twin_bookmarks[k],)).rows
            )
            assert sharded_rows == twin_rows
        for k in pre[:: max(1, len(pre) // 4)]:
            with pytest.raises(TimeTravelError):
                conn.execute(PROBE_SQL, (bookmarks[k],))

    def test_revived_replica_heals_through_the_ship_loop(self):
        """A replica that comes back after an outage converges from the
        log (or a resync) without operator involvement."""
        sharded = ShardedDatabase(2, name="heal", shard_keys={"kv": "k"})
        controller = Controller(sharded, suspicion_threshold=2)
        conn = connect(sharded, read_preference="primary")
        conn.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
        for i in range(10):
            conn.execute("INSERT INTO kv VALUES (?, ?)", (i, f"v{i}"))
        sharded.attach_replicas(1)
        controller.refresh_watches()

        dead = controller.kill_replica("shard0", "heal-shard0-r1")
        for i in range(10, 20):
            conn.execute("INSERT INTO kv VALUES (?, ?)", (i, f"v{i}"))
        controller.detection_loop(max_polls=3)
        assert controller.detector.stats["misses"] >= 2
        controller.revive(dead)
        controller.ship_loop(max_rounds=20)
        replica_set = sharded.replica_sets["shard0"]
        assert all(
            r.csn == replica_set.primary.last_csn
            for r in replica_set.replicas
        )
