"""Online resharding unit tests: data movement, gating, and guards."""

import pytest

from repro.cluster import reshard
from repro.cluster.reshard import _Migration
from repro.db.connection import connect
from repro.db.sharding import ShardedDatabase
from repro.errors import (
    ReplicationError,
    SchemaError,
    TimeTravelError,
    TransactionError,
)


def build(n_rows: int = 40) -> ShardedDatabase:
    sharded = ShardedDatabase(2, name="rs", shard_keys={"kv": "k"})
    sharded.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
    for i in range(n_rows):
        sharded.execute("INSERT INTO kv VALUES (?, ?)", (i, f"v{i}"))
    return sharded


class TestReshard:
    def test_2_to_4_preserves_every_row(self):
        sharded = build(40)
        before = sorted(sharded.execute("SELECT k, v FROM kv").rows)
        stats = reshard(sharded, 4, chunk_size=8)
        assert sharded.n_shards == 4
        assert sharded.store_names == ["shard0", "shard1", "shard2", "shard3"]
        assert stats["rows_copied"] == 40
        assert stats["old_shards"] == 2 and stats["new_shards"] == 4
        assert stats["horizon"] == sharded.reshard_horizon > 0
        assert sorted(sharded.execute("SELECT k, v FROM kv").rows) == before

    def test_rows_land_on_their_hash_owner(self):
        """Every row sits where the new router would route it — the
        adoption invariant ``ShardedDatabase(databases=...)`` checks."""
        sharded = build(40)
        reshard(sharded, 4, chunk_size=8)
        schema = sharded.catalog.get("kv")
        for store, shard in sharded.named_shards():
            for _row_id, values in shard.store("kv").scan(None):
                assert sharded.router.shard_for_row("kv", schema, values) == store

    def test_shrink_4_to_2(self):
        sharded = build(30)
        reshard(sharded, 4, chunk_size=8)
        before = sorted(sharded.execute("SELECT k, v FROM kv").rows)
        stats = reshard(sharded, 2, chunk_size=8)
        assert sharded.n_shards == 2
        assert stats["rows_copied"] == 30
        assert sorted(sharded.execute("SELECT k, v FROM kv").rows) == before

    def test_writes_after_reshard_route_through_new_ring(self):
        sharded = build(20)
        reshard(sharded, 4, chunk_size=8)
        # The shard-key registry survived the router swap.
        assert sharded.router.key_column("kv") == "k"
        sharded.execute("INSERT INTO kv VALUES (?, ?)", (100, "post"))
        sharded.execute("UPDATE kv SET v = ? WHERE k = ?", ("updated", 3))
        assert (
            sharded.execute("SELECT v FROM kv WHERE k = ?", (100,)).scalar()
            == "post"
        )
        assert (
            sharded.execute("SELECT v FROM kv WHERE k = ?", (3,)).scalar()
            == "updated"
        )

    def test_as_of_gated_at_the_horizon(self):
        sharded = build(10)
        conn = connect(sharded, read_preference="primary")
        pre_csn = sharded.last_commit_csn
        reshard(sharded, 4, chunk_size=4)
        sharded.execute("INSERT INTO kv VALUES (?, ?)", (50, "after"))
        post_csn = sharded.last_commit_csn
        # History below the horizon lives only on the retired stores.
        with pytest.raises(TimeTravelError, match="reshard horizon"):
            conn.execute(
                "SELECT k FROM kv WHERE k >= 0 AS OF ?", (pre_csn,)
            )
        # The horizon itself (the synthetic aligned commit) and anything
        # after it resolve onto the new stores.
        at_horizon = conn.execute(
            "SELECT k FROM kv WHERE k >= 0 AS OF ?",
            (sharded.reshard_horizon,),
        ).rows
        assert len(at_horizon) == 10
        at_post = conn.execute(
            "SELECT k FROM kv WHERE k >= 0 AS OF ?", (post_csn,)
        ).rows
        assert len(at_post) == 11

    def test_old_primaries_are_fenced(self):
        sharded = build(10)
        old = list(sharded.shards)
        reshard(sharded, 3, chunk_size=4)
        assert all(db.fenced for db in old)

    def test_replica_sets_dropped_and_reattachable(self):
        sharded = build(10)
        sharded.attach_replicas(1)
        reshard(sharded, 4, chunk_size=4)
        assert sharded.replica_sets == {}
        sharded.attach_replicas(1)
        sharded.execute("INSERT INTO kv VALUES (?, ?)", (60, "shipped"))
        sharded.catch_up_replicas()
        for replica_set in sharded.replica_sets.values():
            for replica in replica_set.replicas:
                assert replica.csn == replica_set.primary.last_csn

    def test_validates_arguments(self):
        sharded = build(5)
        with pytest.raises(SchemaError):
            reshard(sharded, 0)
        with pytest.raises(SchemaError):
            reshard(sharded, 4, chunk_size=0)

    def test_reentrant_reshard_rejected_then_allowed(self):
        sharded = build(5)
        sharded._resharding = True
        with pytest.raises(TransactionError, match="already in progress"):
            reshard(sharded, 4)
        sharded._resharding = False
        reshard(sharded, 4, chunk_size=4)  # guard released: runs fine
        reshard(sharded, 2, chunk_size=4)  # and clears itself after


class TestReshardGuards:
    def test_apply_reshard_requires_the_fence(self):
        sharded = build(5)
        with pytest.raises(TransactionError, match="fence"):
            sharded.apply_reshard({"shard0": sharded.shards[0]})

    def test_apply_reshard_requires_drained_writers(self):
        sharded = build(5)
        sharded.fence_writes()
        try:
            sharded._active_gtxns = 1
            with pytest.raises(TransactionError, match="in flight"):
                sharded.apply_reshard({"shard0": sharded.shards[0]})
        finally:
            sharded._active_gtxns = 0
            sharded.unfence_writes()

    def test_ddl_during_migration_aborts_it(self):
        """A schema change the taps see before the fence kills the
        migration — it cannot be carried across the copy."""
        sharded = build(12)
        migration = _Migration(sharded, 4)
        try:
            migration.copy_snapshot(chunk_size=4)
            sharded.execute("CREATE INDEX ix_kv_v ON kv (v)")
            with pytest.raises(ReplicationError, match="DDL landed"):
                migration.drain_all()
        finally:
            migration.detach()

    def test_deltas_after_snapshot_are_replayed(self):
        sharded = build(12)
        migration = _Migration(sharded, 4)
        try:
            migration.copy_snapshot(chunk_size=4)
            sharded.execute("INSERT INTO kv VALUES (?, ?)", (90, "late"))
            sharded.execute("UPDATE kv SET v = ? WHERE k = ?", ("redone", 1))
            sharded.execute("DELETE FROM kv WHERE k = ?", (2,))
            assert migration.drain_all() > 0
            rows = {
                values[0]: values[1]
                for db in migration.new_stores.values()
                for _rid, values in db.store("kv").scan(None)
            }
            assert rows[90] == "late"
            assert rows[1] == "redone"
            assert 2 not in rows
        finally:
            migration.detach()

    def test_failed_migration_leaves_topology_untouched(self):
        sharded = build(12)
        old_names = list(sharded.store_names)
        migration = _Migration(sharded, 4)
        try:
            migration.copy_snapshot(chunk_size=4)
            sharded.execute("CREATE INDEX ix_boom ON kv (v)")
            with pytest.raises(ReplicationError):
                migration.drain_all()
        finally:
            migration.detach()
        assert sharded.store_names == old_names
        assert not sharded._write_fence
        assert sharded.execute("SELECT COUNT(*) FROM kv").scalar() == 12
