"""Cluster robustness: probe timeouts, backoff, quorum degradation,
and automatic re-provisioning of demoted nodes.

These are the deterministic chaos tests for the failure-handling
policies that sit *around* the failover machinery: a probe that answers
too slowly is a miss, a suspected node is probed on a backoff schedule
instead of hammered, a primary that loses its write quorum degrades to
read-only (and recovers), and a demoted primary rejoins the fleet as a
fresh replica with no operator action. Fault points let tests stand in
for real network failures without monkeypatching.
"""

import time

import pytest

from repro.cluster import Controller
from repro.cluster.detector import HeartbeatDetector
from repro.db.connection import connect
from repro.db.database import Database
from repro.db.replication import ReplicaSet
from repro.db.sharding import ShardedDatabase
from repro.errors import (
    ProbeTimeoutError,
    ReadOnlyError,
    ReplicationError,
    UnavailableError,
)
from repro.faults import BackoffPolicy, FaultInjector, injected
from repro.runtime.scheduler import (
    CheckpointKind,
    CooperativeScheduler,
    maybe_checkpoint,
)


class TestProbeTimeouts:
    def test_slow_probe_counts_as_timeout_miss(self):
        detector = HeartbeatDetector(
            suspicion_threshold=2, probe_timeout=0.0005
        )
        detector.watch("slow", lambda: time.sleep(0.002))
        detector.poll()
        assert detector.stats["probe_timeouts"] == 1
        assert detector.stats["misses"] == 1
        assert detector.suspected() == ["slow"]
        detector.poll()
        assert detector.confirmed() == ["slow"]
        assert detector.stats["probe_timeouts"] == 2

    def test_fast_probe_is_not_a_timeout(self):
        alive = Database(name="quick")
        detector = HeartbeatDetector(probe_timeout=5.0)
        detector.watch("quick", alive.ping)
        detector.poll()
        assert detector.stats["probes"] == 1
        assert detector.stats["probe_timeouts"] == 0
        assert detector.stats["misses"] == 0

    def test_probe_raising_timeout_error_counts(self):
        def probe():
            raise ProbeTimeoutError("rpc deadline exceeded")

        detector = HeartbeatDetector()
        detector.watch("deadline", probe)
        detector.poll()
        assert detector.stats["probe_timeouts"] == 1
        assert detector.stats["misses"] == 1

    def test_invalid_probe_timeout_rejected(self):
        with pytest.raises(ReplicationError, match="probe_timeout"):
            HeartbeatDetector(probe_timeout=0)

    def test_controller_threads_probe_policy_through(self):
        sharded = ShardedDatabase(1, name="policy", shard_keys={})
        controller = Controller(
            sharded,
            probe_timeout=0.5,
            probe_backoff=BackoffPolicy(base=1, factor=2, cap=4),
        )
        assert controller.detector.probe_timeout == 0.5
        assert controller.detector.backoff.cap == 4


class TestProbeBackoff:
    def test_backoff_spares_a_suspected_target(self):
        down = Database(name="down")
        down.crashed = True
        detector = HeartbeatDetector(
            suspicion_threshold=3,
            backoff=BackoffPolicy(base=1, factor=2, cap=2),
        )
        detector.watch("down", down.ping)
        # ticks(1) == ticks(2) == 2: probes land on polls 1, 4 and 7,
        # the polls between are backoff skips.
        for _ in range(7):
            detector.poll()
        assert detector.confirmed() == ["down"]
        assert detector.stats["probes"] == 3
        assert detector.stats["backoff_skips"] == 4
        # Confirmed targets keep full probe cadence so recovery is
        # noticed promptly.
        detector.poll()
        assert detector.stats["probes"] == 4
        down.crashed = False
        detector.poll()
        assert detector.confirmed() == []
        assert detector.suspected() == []

    def test_success_resets_the_backoff(self):
        flaky = Database(name="flaky")
        detector = HeartbeatDetector(
            suspicion_threshold=3,
            backoff=BackoffPolicy(base=2, factor=2, cap=8),
        )
        detector.watch("flaky", flaky.ping)
        flaky.crashed = True
        detector.poll()  # miss: schedules a skip window
        flaky.crashed = False
        skips_before = detector.stats["backoff_skips"]
        while detector.stats["backoff_skips"] > skips_before - 1:
            before = detector.stats["probes"]
            detector.poll()
            if detector.stats["probes"] > before:
                break  # probed again: the skip window elapsed
        assert detector.suspected() == []
        detector.poll()  # healthy: probed at full cadence again
        assert detector.stats["misses"] == 1


class TestInjectedProbeFaults:
    def test_injected_probe_fault_counts_as_miss(self):
        alive = Database(name="fine")
        detector = HeartbeatDetector(suspicion_threshold=2)
        detector.watch("fine", alive.ping)
        injector = FaultInjector()
        injector.fail("detector.probe", count=2, exc=UnavailableError)
        with injected(injector):
            detector.poll()
            detector.poll()
        assert detector.stats["misses"] == 2
        assert detector.confirmed() == ["fine"]
        assert injector.hits["detector.probe"] == 2
        detector.poll()  # fault cleared: the healthy node re-arms
        assert detector.confirmed() == []

    def test_injected_timeout_is_counted_as_timeout(self):
        alive = Database(name="fine")
        detector = HeartbeatDetector()
        detector.watch("fine", alive.ping)
        injector = FaultInjector()
        injector.fail_every("detector.probe", 1.0, exc=ProbeTimeoutError)
        with injected(injector):
            detector.poll()
        assert detector.stats["probe_timeouts"] == 1
        assert detector.stats["misses"] == 1


class TestQuorumDegradation:
    def make_set(self):
        primary = Database(name="deg")
        primary.execute("CREATE TABLE t (k INTEGER)")
        return primary, ReplicaSet(primary, n_replicas=2, ack_quorum=2)

    def test_quorum_loss_degrades_primary_to_read_only(self):
        primary, replica_set = self.make_set()
        for replica in replica_set.replicas:
            replica.database.crashed = True
        with pytest.raises(ReplicationError, match="quorum not met"):
            primary.execute("INSERT INTO t VALUES (1)")
        assert replica_set.degraded
        assert primary.read_only
        assert "write quorum lost" in primary.read_only_reason
        # Further writes are refused with the quorum explanation — not
        # the misleading "this is a replica" default.
        with pytest.raises(ReadOnlyError, match="write quorum lost"):
            primary.execute("INSERT INTO t VALUES (2)")
        # Reads keep flowing: a quorum-less primary must stay readable,
        # and the quorum-missing write IS durable locally.
        assert primary.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_restoration_lifts_the_fence(self):
        primary, replica_set = self.make_set()
        for replica in replica_set.replicas:
            replica.database.crashed = True
        with pytest.raises(ReplicationError, match="quorum not met"):
            primary.execute("INSERT INTO t VALUES (1)")
        for replica in replica_set.replicas:
            replica.database.crashed = False
        replica_set.catch_up()
        assert not replica_set.degraded
        assert not primary.read_only
        assert primary.read_only_reason is None
        primary.execute("INSERT INTO t VALUES (2)")  # writes flow again
        assert replica_set.stats["quorum_misses"] == 1
        assert replica_set.stats["degradations"] == 1
        assert replica_set.stats["restorations"] == 1
        assert replica_set.stats["quorum_commits"] == 1
        assert all(
            r.csn == primary.last_csn for r in replica_set.replicas
        )

    def test_injected_apply_fault_degrades_then_restores(self):
        primary = Database(name="quorum-fault")
        primary.execute("CREATE TABLE t (k INTEGER)")
        replica_set = ReplicaSet(primary, n_replicas=1, ack_quorum=1)
        injector = FaultInjector()
        injector.fail("repl.apply", exc=UnavailableError)
        with injected(injector):
            with pytest.raises(ReplicationError, match="quorum not met"):
                primary.execute("INSERT INTO t VALUES (1)")
        assert replica_set.degraded and primary.read_only
        # The fault is gone; catch-up converges the replica and lifts
        # the degradation in the same pass.
        replica_set.catch_up()
        assert not replica_set.degraded and not primary.read_only
        assert replica_set.replicas[0].csn == primary.last_csn
        primary.execute("INSERT INTO t VALUES (2)")
        assert replica_set.stats["quorum_commits"] == 1


class TestShipFaultPoints:
    def test_ship_and_apply_points_observe_replication(self):
        primary = Database(name="ship")
        replica_set = ReplicaSet(primary, n_replicas=1)
        injector = FaultInjector()
        with injected(injector):
            primary.execute("CREATE TABLE t (k INTEGER)")
            primary.execute("INSERT INTO t VALUES (1)")
            replica_set.catch_up()
        assert injector.hits["repl.ship"] >= 2  # DDL + commit records
        assert injector.hits["repl.apply"] >= 2


class TestReprovision:
    def test_demoted_primary_rejoins_as_fresh_replica(self):
        primary = Database(name="rp")
        primary.execute("CREATE TABLE t (k INTEGER)")
        primary.execute("INSERT INTO t VALUES (1)")
        replica_set = ReplicaSet(primary, n_replicas=1)
        replica_set.catch_up()
        new_primary = replica_set.promote()
        assert replica_set.retired == [primary]
        assert primary.fenced
        # The demoted node is up (fenced, not crashed): it rejoins on
        # the next reprovision pass, as a FRESH bootstrap — its old
        # state may have diverged, so never a rewind.
        assert replica_set.reprovision() == 1
        assert replica_set.retired == []
        rejoined = replica_set.replicas[0]
        assert "rejoin" in rejoined.name
        assert rejoined.csn == new_primary.last_csn
        new_primary.execute("INSERT INTO t VALUES (2)")
        replica_set.catch_up()
        assert rejoined.csn == new_primary.last_csn
        assert replica_set.stats["reprovisions"] == 1

    def test_crashed_retired_node_waits_for_revival(self):
        primary = Database(name="crashed-rp")
        primary.execute("CREATE TABLE t (k INTEGER)")
        replica_set = ReplicaSet(primary, n_replicas=1)
        primary.crashed = True
        replica_set.promote()
        assert replica_set.reprovision() == 0
        assert replica_set.retired == [primary]
        primary.crashed = False
        assert replica_set.reprovision() == 1
        assert replica_set.retired == []

    def test_controller_reprovisions_revived_primary(self):
        """The full loop, no operator: kill a shard primary, let the
        detection loop promote, revive the corpse, and the next
        detection tick re-provisions it as a replica of the new
        primary."""
        sharded = ShardedDatabase(2, name="auto", shard_keys={"kv": "k"})
        sharded.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
        for i in range(8):
            sharded.execute("INSERT INTO kv VALUES (?, ?)", (i, f"v{i}"))
        sharded.attach_replicas(1)
        controller = Controller(sharded, suspicion_threshold=2)
        controller.refresh_watches()

        dead = controller.kill("shard0")
        controller.detection_loop(max_polls=3)
        assert controller.detector.stats["failovers"] >= 1
        replica_set = sharded.replica_sets["shard0"]
        assert replica_set.retired == [dead]
        assert controller.stats["reprovisions"] == 0  # still crashed

        controller.revive(dead)
        controller.detection_loop(max_polls=1)
        assert controller.stats["reprovisions"] == 1
        assert replica_set.retired == []
        assert any("rejoin" in r.name for r in replica_set.replicas)
        # The rejoined replica is immediately under watch.
        assert any(
            "rejoin" in name for name in controller.detector.watching()
        )
        # And it serves: it tracks the new primary through catch-up.
        sharded.execute("INSERT INTO kv VALUES (100, 'post')")
        replica_set.catch_up()
        assert all(
            r.csn == replica_set.primary.last_csn
            for r in replica_set.replicas
        )


class TestFailoverRetry:
    def test_connection_retry_backoff_rides_out_a_failover(self):
        """Deterministic for ANY scheduler seed: the primary is dead
        before the statement runs, so the connection MUST burn at least
        one retry (spaced by its backoff policy) before the promotion —
        triggered only once a retry is observed — lets it through."""
        sharded = ShardedDatabase(1, name="retry", shard_keys={"kv": "k"})
        conn = connect(
            sharded,
            read_preference="primary",
            max_failover_retries=50,
            retry_backoff=BackoffPolicy(base=1, factor=2, cap=4),
        )
        conn.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
        sharded.attach_replicas(1)
        sharded.shard_named("shard0").crashed = True

        def workload():
            conn.execute("INSERT INTO kv VALUES (1, 'x')")

        def promoter():
            while conn.stats["failover_retries"] == 0:
                maybe_checkpoint(CheckpointKind.SCAN_BATCH, "promoter")
            sharded.failover("shard0")

        scheduler = CooperativeScheduler(seed=5)
        outcomes = scheduler.run([workload, promoter])
        assert [o.error for o in outcomes if o.error is not None] == []
        assert conn.stats["failover_retries"] > 0
        # Retries are mirrored into the cluster-wide robustness surface.
        assert sharded.stats["failover_retries"] > 0
        assert (
            sharded.cluster_stats["failover_retries"]
            == sharded.stats["failover_retries"]
        )
        assert conn.execute("SELECT COUNT(*) FROM kv").scalar() == 1


class TestClusterStatsSurface:
    def test_cluster_stats_unifies_the_surfaces(self):
        sharded = ShardedDatabase(2, name="stats", shard_keys={"kv": "k"})
        sharded.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
        sharded.attach_replicas(1)
        controller = Controller(sharded, suspicion_threshold=2)
        controller.refresh_watches()
        gtxn = sharded.begin()
        for k in range(4):  # spans both shards: a real 2PC decision
            sharded.execute(
                "INSERT INTO kv VALUES (?, ?)", (k, f"v{k}"), txn=gtxn
            )
        gtxn.commit()
        sharded.catch_up_replicas()
        controller.detection_loop(max_polls=1)

        stats = controller.cluster_stats
        for key in (
            "shipped_records",
            "promotions",
            "quorum_misses",
            "degradations",
            "reprovisions",
            "decisions_logged",
            "in_doubt_committed",
            "failover_retries",
            "detector_probes",
            "detector_probe_timeouts",
            "detector_backoff_skips",
            "detection_polls",
            "controller_reprovisions",
            "reshards",
        ):
            assert key in stats, f"cluster_stats missing {key!r}"
        assert stats["detector_probes"] >= 1
        assert stats["shipped_records"] >= 1
        assert stats["decisions_logged"] >= 1

    def test_faults_injected_appears_only_when_installed(self):
        sharded = ShardedDatabase(2, name="fi", shard_keys={"kv": "k"})
        sharded.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
        assert "faults_injected" not in sharded.cluster_stats
        injector = FaultInjector()
        injector.fail("repl.ship", at=10**9)  # armed, far away
        with injected(injector):
            sharded.execute("INSERT INTO kv VALUES (1, 'x')")
            assert sharded.cluster_stats["faults_injected"] == 0
        assert "faults_injected" not in sharded.cluster_stats
