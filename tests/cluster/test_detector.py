"""Heartbeat detection: suspicion, confirmation, automatic promotion.

Includes the promote-race coverage: the detector firing while a manual
``promote()`` is mid-flight, and a double failover of the same shard —
both must be idempotent or fail loudly, never tear the topology.
"""

import pytest

from repro.cluster import HeartbeatDetector
from repro.db.database import Database
from repro.db.replication import ReplicaSet
from repro.db.sharding import ShardedDatabase
from repro.errors import ReplicationError


def make_replica_set(n_replicas: int = 2) -> tuple[Database, ReplicaSet]:
    primary = Database(name="p")
    primary.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
    for i in range(10):
        primary.execute("INSERT INTO kv VALUES (?, ?)", (i, f"v{i}"))
    return primary, ReplicaSet(primary, n_replicas=n_replicas)


def make_sharded(n_replicas: int = 2) -> ShardedDatabase:
    sharded = ShardedDatabase(2, name="s", shard_keys={"kv": "k"})
    sharded.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
    for i in range(20):
        sharded.execute("INSERT INTO kv VALUES (?, ?)", (i, f"v{i}"))
    sharded.attach_replicas(n_replicas)
    return sharded


class TestHeartbeatBasics:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ReplicationError, match="threshold"):
            HeartbeatDetector(suspicion_threshold=0)

    def test_healthy_probe_counts_no_misses(self):
        primary, _ = make_replica_set(0)
        detector = HeartbeatDetector()
        detector.watch("p", primary.ping)
        assert detector.poll() == []
        assert detector.stats["probes"] == 1
        assert detector.stats["misses"] == 0
        assert detector.suspected() == []

    def test_suspected_before_threshold_confirmed_at_it(self):
        primary, replica_set = make_replica_set()
        detector = HeartbeatDetector(suspicion_threshold=3)
        detector.watch_replica_set("p", replica_set)
        primary.crashed = True
        assert detector.poll() == []
        assert detector.poll() == []
        assert detector.suspected() == ["p"]
        assert detector.confirmed() == []
        # Third consecutive miss convicts and promotes automatically.
        assert detector.poll() == ["p"]
        assert detector.stats["failovers"] == 1
        assert replica_set.primary is not primary
        assert primary.fenced

    def test_recovery_resets_the_miss_count(self):
        primary, _ = make_replica_set(0)
        detector = HeartbeatDetector(suspicion_threshold=3)
        detector.watch("p", primary.ping)
        primary.crashed = True
        detector.poll()
        detector.poll()
        primary.crashed = False
        detector.poll()  # heals: misses reset to zero
        primary.crashed = True
        detector.poll()
        detector.poll()
        # Still only suspected — the earlier misses did not accumulate.
        assert detector.confirmed() == []
        assert detector.suspected() == ["p"]

    def test_promoted_primary_rearms_the_watch(self):
        primary, replica_set = make_replica_set()
        detector = HeartbeatDetector(suspicion_threshold=1)
        detector.watch_replica_set("p", replica_set)
        primary.crashed = True
        assert detector.poll() == ["p"]
        # The probe resolves the *current* primary, which is healthy, so
        # the watch re-arms for the next outage instead of staying stuck
        # on the corpse.
        assert detector.poll() == []
        assert detector.confirmed() == []
        replica_set.primary.crashed = True
        assert detector.poll() == ["p"]
        assert detector.stats["failovers"] == 2

    def test_unwatch_and_replace(self):
        primary, _ = make_replica_set(0)
        detector = HeartbeatDetector()
        detector.watch("p", primary.ping)
        detector.watch("p", primary.ping)  # replace, not duplicate
        assert detector.watching() == ["p"]
        detector.unwatch("p")
        assert detector.watching() == []
        detector.unwatch("p")  # idempotent


class TestPromoteRaces:
    def test_detector_fires_during_manual_promote(self):
        """A confirmed failure while promote() is already in flight is
        counted as a failover error and retried — never a second,
        overlapping promotion."""
        primary, replica_set = make_replica_set()
        detector = HeartbeatDetector(suspicion_threshold=1)
        detector.watch_replica_set("p", replica_set)
        primary.crashed = True
        replica_set._promoting = True  # a manual promote holds the guard
        assert detector.poll() == ["p"]
        assert detector.stats["failovers"] == 0
        assert detector.stats["failover_errors"] == 1
        # The failure is deliberately left unconfirmed so the next poll
        # retries once the manual promote releases the guard.
        assert detector.confirmed() == []
        replica_set._promoting = False
        assert detector.poll() == ["p"]
        assert detector.stats["failovers"] == 1
        assert replica_set.primary is not primary
        assert detector.stats["confirmed_failures"] == 2

    def test_detector_poll_during_manual_sharded_failover(self):
        sharded = make_sharded()
        store = sharded.store_names[0]
        detector = HeartbeatDetector(suspicion_threshold=1)
        detector.watch_shard(sharded, store)
        sharded.replica_sets[store]._promoting = True
        sharded.shard_named(store).crashed = True
        detector.poll()
        assert detector.stats["failover_errors"] == 1
        # Topology untouched: the crashed primary still holds the slot.
        assert sharded.shard_named(store).crashed
        sharded.replica_sets[store]._promoting = False
        detector.poll()
        assert detector.stats["failovers"] == 1
        assert not sharded.shard_named(store).crashed

    def test_double_failover_same_shard_keeps_topology_whole(self):
        """Two failovers of one shard promote two replicas in turn; the
        shard keeps serving consistent data after each."""
        sharded = make_sharded(n_replicas=2)
        store = sharded.store_names[0]
        before = sorted(
            sharded.execute("SELECT k, v FROM kv").rows
        )
        sharded.shard_named(store).crashed = True
        first = sharded.failover(store)
        assert sorted(sharded.execute("SELECT k, v FROM kv").rows) == before
        try:
            second = sharded.failover(store)
        except ReplicationError:
            second = None  # failing loudly is acceptable; tearing is not
        else:
            assert second is not first
        assert sorted(sharded.execute("SELECT k, v FROM kv").rows) == before
        # Writes still route and commit through the surviving topology.
        sharded.execute("INSERT INTO kv VALUES (?, ?)", (100, "post"))
        assert (
            sharded.execute(
                "SELECT v FROM kv WHERE k = ?", (100,)
            ).scalar()
            == "post"
        )

    def test_manual_failover_preempts_the_detector(self):
        """An operator beats the detector to the promote: the next poll
        sees a healthy (new) primary and stands down."""
        sharded = make_sharded()
        store = sharded.store_names[0]
        detector = HeartbeatDetector(suspicion_threshold=2)
        detector.watch_shard(sharded, store)
        sharded.shard_named(store).crashed = True
        detector.poll()  # one miss: suspected, not confirmed
        sharded.failover(store)  # manual promote lands first
        assert detector.poll() == []
        assert detector.stats["failovers"] == 0
        assert detector.suspected() == []

    def test_failover_without_replicas_fails_loudly_and_retries(self):
        sharded = ShardedDatabase(2, name="bare", shard_keys={"kv": "k"})
        sharded.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
        store = sharded.store_names[0]
        detector = HeartbeatDetector(suspicion_threshold=1)
        detector.watch_shard(sharded, store)
        sharded.shard_named(store).crashed = True
        detector.poll()
        assert detector.stats["failover_errors"] == 1
        assert detector.confirmed() == []  # retried on every later poll
        detector.poll()
        assert detector.stats["failover_errors"] == 2
