"""Quorum replication: ack_quorum commits and cascading replica chains."""

import pytest

from repro.db.database import Database
from repro.db.replication import ReplicaSet
from repro.errors import ReplicationError


def make_primary() -> Database:
    primary = Database(name="q")
    primary.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
    for i in range(5):
        primary.execute("INSERT INTO kv VALUES (?, ?)", (i, f"v{i}"))
    return primary


class TestAckQuorum:
    def test_rejects_negative_quorum(self):
        with pytest.raises(ReplicationError, match="ack_quorum"):
            ReplicaSet(make_primary(), ack_quorum=-1)

    def test_rejects_quorum_with_sync_mode(self):
        with pytest.raises(ReplicationError, match="redundant"):
            ReplicaSet(make_primary(), n_replicas=1, mode="sync", ack_quorum=1)

    def test_commit_applies_to_quorum_synchronously(self):
        primary = make_primary()
        replica_set = ReplicaSet(primary, n_replicas=3, ack_quorum=2)
        primary.execute("INSERT INTO kv VALUES (?, ?)", (10, "durable"))
        acked = [r for r in replica_set.replicas if r.csn == primary.last_csn]
        # Exactly the quorum is synchronous; the rest catch up later.
        assert len(acked) == 2
        assert replica_set.stats["quorum_commits"] >= 1
        behind = [r for r in replica_set.replicas if r.csn < primary.last_csn]
        assert len(behind) == 1
        replica_set.catch_up()
        assert all(r.csn == primary.last_csn for r in replica_set.replicas)

    def test_quorum_skips_crashed_replicas(self):
        primary = make_primary()
        replica_set = ReplicaSet(primary, n_replicas=3, ack_quorum=2)
        crashed = replica_set.replicas[0]
        crashed.database.crashed = True
        primary.execute("INSERT INTO kv VALUES (?, ?)", (11, "skip"))
        assert crashed.csn < primary.last_csn
        acked = [
            r
            for r in replica_set.replicas[1:]
            if r.csn == primary.last_csn
        ]
        assert len(acked) == 2

    def test_quorum_not_met_raises_after_primary_applied(self):
        """Losing the quorum surfaces as an error, but the write is
        durable on the primary and in the ship log — recovery replays
        it, it is never silently dropped."""
        primary = make_primary()
        replica_set = ReplicaSet(primary, n_replicas=2, ack_quorum=2)
        for replica in replica_set.replicas:
            replica.database.crashed = True
        before = primary.last_csn
        with pytest.raises(ReplicationError, match="quorum not met"):
            primary.execute("INSERT INTO kv VALUES (?, ?)", (12, "short"))
        assert primary.last_csn == before + 1
        assert (
            primary.execute("SELECT v FROM kv WHERE k = ?", (12,)).scalar()
            == "short"
        )
        assert replica_set.log.last_seq > 0
        # Revived replicas converge from the log: durability was only
        # ever deferred, not lost.
        for replica in replica_set.replicas:
            replica.database.crashed = False
        replica_set.catch_up()
        for replica in replica_set.replicas:
            assert (
                replica.database.execute(
                    "SELECT v FROM kv WHERE k = ?", (12,)
                ).scalar()
                == "short"
            )


class TestCascadingChains:
    def test_chain_replicates_one_hop_removed(self):
        primary = make_primary()
        replica_set = ReplicaSet(primary, n_replicas=2)
        downstream = replica_set.chain(replica_set.replicas[0], n_replicas=2)
        primary.execute("INSERT INTO kv VALUES (?, ?)", (20, "deep"))
        replica_set.catch_up()  # cascades into the chain
        for replica in downstream.replicas:
            assert (
                replica.database.execute(
                    "SELECT v FROM kv WHERE k = ?", (20,)
                ).scalar()
                == "deep"
            )
            assert replica.csn == primary.last_csn

    def test_chain_upstream_must_be_a_member(self):
        primary = make_primary()
        replica_set = ReplicaSet(primary, n_replicas=1)
        other = ReplicaSet(make_primary(), n_replicas=1)
        with pytest.raises(ReplicationError, match="not in this replica set"):
            replica_set.chain(other.replicas[0])

    def test_quorum_and_chain_compose(self):
        """Fan-out scales by chaining without widening the quorum set."""
        primary = make_primary()
        replica_set = ReplicaSet(primary, n_replicas=2, ack_quorum=1)
        downstream = replica_set.chain(replica_set.replicas[0], n_replicas=1)
        primary.execute("INSERT INTO kv VALUES (?, ?)", (21, "both"))
        assert replica_set.replicas[0].csn == primary.last_csn
        replica_set.catch_up()
        assert downstream.replicas[0].csn == primary.last_csn
