"""Logical clock and handler registry tests."""

import pytest

from repro.errors import UnknownHandlerError
from repro.runtime.clock import LogicalClock, format_ts
from repro.runtime.handlers import HandlerRegistry


class TestClock:
    def test_tick_is_monotonic(self):
        clock = LogicalClock()
        assert [clock.tick() for _ in range(3)] == [1, 2, 3]
        assert clock.now() == 3

    def test_now_does_not_advance(self):
        clock = LogicalClock()
        clock.tick()
        assert clock.now() == clock.now() == 1

    def test_advance_to_never_goes_backwards(self):
        clock = LogicalClock(start=5)
        clock.advance_to(3)
        assert clock.now() == 5
        clock.advance_to(9)
        assert clock.now() == 9

    def test_format_ts(self):
        assert format_ts(4) == "TS4"


class TestRegistry:
    def test_register_and_get(self):
        registry = HandlerRegistry()
        fn = lambda ctx: 1
        registry.register("h", fn)
        assert registry.get("h") is fn
        assert registry.has("h")
        assert registry.names() == ["h"]

    def test_decorator_form(self):
        registry = HandlerRegistry()

        @registry.handler("greet")
        def greet(ctx):
            return "hi"

        assert registry.get("greet") is greet

    def test_unknown_handler_lists_known(self):
        registry = HandlerRegistry()
        registry.register("a", lambda ctx: 1)
        with pytest.raises(UnknownHandlerError, match="'a'"):
            registry.get("zzz")

    def test_empty_name_rejected(self):
        with pytest.raises(UnknownHandlerError):
            HandlerRegistry().register("", lambda ctx: 1)

    def test_patched_does_not_mutate_original(self):
        registry = HandlerRegistry()
        original = lambda ctx: "orig"
        registry.register("h", original)
        replacement = lambda ctx: "new"
        patched = registry.patched(h=replacement)
        assert patched.get("h") is replacement
        assert registry.get("h") is original

    def test_patched_can_add_new_handlers(self):
        registry = HandlerRegistry()
        patched = registry.patched(extra=lambda ctx: 1)
        assert patched.has("extra")
        assert not registry.has("extra")

    def test_iteration_and_len(self):
        registry = HandlerRegistry()
        registry.register("a", lambda ctx: 1)
        registry.register("b", lambda ctx: 2)
        assert len(registry) == 2
        assert {name for name, _fn in registry} == {"a", "b"}
