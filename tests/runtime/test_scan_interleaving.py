"""Batch-yielding scans under the cooperative scheduler.

Proves the tentpole's concurrency claims: long scans yield at
deterministic row-batch boundaries so concurrent readers interleave; a
short query completes while a full-table scan is in flight with
byte-identical results vs serialized execution; scans stay
snapshot-consistent under concurrent committed writes; TROD statement
traces are unchanged by batching; and the background replica ship loop
drains in batches that interleave with foreground work.
"""

from repro.db import Database, IsolationLevel, ReplicaSet, ShardedDatabase
from repro.errors import DeadlockError
from repro.runtime import Runtime
from repro.runtime.scheduler import CheckpointKind, CooperativeScheduler

N_ROWS = 1_000
BATCH = 100


def seeded_db(n: int = N_ROWS) -> Database:
    db = Database()
    db.scan_batch_size = BATCH
    db.execute("CREATE TABLE items (k INTEGER, v INTEGER)")
    txn = db.begin()
    for i in range(n):
        db.execute("INSERT INTO items VALUES (?, ?)", (i, i * 3), txn=txn)
    txn.commit()
    return db


def scan_thunk(db, out, sql="SELECT k, v FROM items"):
    def thunk():
        # Snapshot reads take no table locks, so readers and a writer
        # can interleave freely without the lock-wait protocol.
        txn = db.begin(IsolationLevel.SNAPSHOT)
        try:
            out.append(db.execute(sql, txn=txn).rows)
        finally:
            txn.abort()
        return "scan"

    return thunk


class TestBatchInterleaving:
    def test_two_scans_interleave_at_batch_boundaries(self):
        db = seeded_db()
        results: list = []
        scheduler = CooperativeScheduler(
            schedule=[0, 1] * 20, granularity="batch"
        )
        outcomes = scheduler.run(
            [scan_thunk(db, results), scan_thunk(db, results)]
        )
        assert all(o.ok for o in outcomes)
        batch_entries = [
            e for e in scheduler.record if e.kind is CheckpointKind.SCAN_BATCH
        ]
        # Each 1000-row scan parks every 100 rows.
        assert len(batch_entries) >= 10
        workers = [e.worker for e in batch_entries]
        assert set(workers) == {0, 1}
        # Adjacent batch grants alternate between the two scans — the
        # baton really changes hands mid-statement.
        alternations = sum(
            1 for a, b in zip(workers, workers[1:]) if a != b
        )
        assert alternations >= 5
        # Interleaving changed nothing about what either scan saw.
        expected = [(i, i * 3) for i in range(N_ROWS)]
        assert results[0] == expected and results[1] == expected

    def test_batch_yields_are_deterministic(self):
        def run_once(seed):
            db = seeded_db(400)
            results: list = []
            scheduler = CooperativeScheduler(seed=seed, granularity="batch")
            scheduler.run([scan_thunk(db, results), scan_thunk(db, results)])
            return [(e.worker, e.kind.value, e.label) for e in scheduler.record]

        assert run_once(7) == run_once(7)
        assert run_once(7) != run_once(8)  # the seed genuinely drives it

    def test_short_query_completes_while_long_scan_in_flight(self):
        db = seeded_db()
        results: list = []
        # LIMIT short-circuits after ~18 rows — under one batch, so the
        # query never parks: it runs to completion in a single grant.
        point_sql = "SELECT v FROM items WHERE k = 17 LIMIT 1"
        # Serialized reference: the same two statements, one at a time.
        serial_scan = db.execute("SELECT k, v FROM items").rows
        serial_point = db.execute(point_sql).rows

        point_results: list = []
        scheduler = CooperativeScheduler(schedule=[0, 0], granularity="batch")
        outcomes = scheduler.run(
            [
                scan_thunk(db, results),
                scan_thunk(db, point_results, sql=point_sql),
            ]
        )
        assert all(o.ok for o in outcomes)
        record = scheduler.record
        # Record entries say which parked checkpoint each grant resumed
        # from; a worker's last entry is the grant it finished in.
        scan_first = min(e.step for e in record if e.worker == 0)
        scan_last = max(e.step for e in record if e.worker == 0)
        point_entries = [e for e in record if e.worker == 1]
        assert len(point_entries) == 1  # one grant: start -> done
        # The scan parked at batch boundaries (it was genuinely mid-
        # flight), and the point query came and went in between.
        assert any(
            e.kind is CheckpointKind.SCAN_BATCH
            for e in record
            if e.worker == 0
        )
        assert scan_first < point_entries[0].step < scan_last
        # Byte-identical results vs serialized execution.
        assert results == [serial_scan]
        assert point_results == [serial_point]

    def test_scan_is_snapshot_consistent_under_concurrent_writes(self):
        db = seeded_db()
        results: list = []

        def writer():
            for i in range(5):
                db.execute(
                    "INSERT INTO items VALUES (?, ?)", (N_ROWS + i, -1)
                )
            db.execute("DELETE FROM items WHERE k = 3")
            return "write"

        scheduler = CooperativeScheduler(
            schedule=[0, 1, 0], granularity="batch"
        )
        outcomes = scheduler.run([scan_thunk(db, results), writer])
        assert all(o.ok for o in outcomes)
        # The writer committed while the scan was parked mid-flight, yet
        # the scan serves exactly its begin-time snapshot.
        assert results[0] == [(i, i * 3) for i in range(N_ROWS)]
        # The writes are not lost — a later scan sees them.
        after = db.execute("SELECT k FROM items").rows
        assert (N_ROWS, ) in after and (3,) not in after

    def test_txn_granularity_never_yields_mid_scan(self):
        db = seeded_db(400)
        results: list = []
        scheduler = CooperativeScheduler(schedule=[0, 1], granularity="txn")
        scheduler.run([scan_thunk(db, results), scan_thunk(db, results)])
        assert not any(
            e.kind is CheckpointKind.SCAN_BATCH for e in scheduler.record
        )


class TestLockSafetyUnderBatching:
    def test_sharded_scatter_never_yields_into_a_cross_shard_cycle(self):
        """A scatter read + concurrent 2PC writer must not deadlock.

        Scatter branches hold per-shard table locks that no single
        deadlock detector spans, so sharded gathers run without
        mid-scan yields: a reader can never park holding shard A's lock
        while a writer builds an A/B cycle. Regression for the batch-
        granularity ABBA hang found in review.
        """
        for seed in range(6):
            sdb = ShardedDatabase(2, shard_keys={"t": "k"})
            sdb.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
            gtxn = sdb.begin()
            for i in range(1200):
                sdb.execute(
                    "INSERT INTO t VALUES (?, ?)", (i, i % 7), txn=gtxn
                )
            gtxn.commit()
            reads: list = []

            def reader():
                reads.append(
                    len(sdb.execute("SELECT k, v FROM t WHERE v = 999").rows)
                )
                return "read"

            def writer():
                wtxn = sdb.begin()
                for i in range(2000, 2004):  # spans both shards
                    sdb.execute(
                        "INSERT INTO t VALUES (?, ?)", (i, 0), txn=wtxn
                    )
                wtxn.commit()
                return "write"

            scheduler = CooperativeScheduler(seed=seed, granularity="batch")
            outcomes = scheduler.run([reader, writer])
            assert all(o.ok for o in outcomes), (seed, outcomes)
        assert reads[-1] == 0

    def test_single_node_deadlock_is_detected_deterministically(self):
        """Batch yields can surface 2PL deadlocks on one node; the lock
        manager's waits-for graph detects them and aborts the requester
        as a deterministic victim — the other worker completes."""
        db = seeded_db(600)
        db.execute("CREATE TABLE other (k INTEGER)")
        db.execute("INSERT INTO other VALUES (1)")
        scheduler = CooperativeScheduler(
            schedule=[0, 1, 0, 1] * 50, granularity="batch"
        )
        db.txn_manager.wait_hook = lambda txn, res: scheduler.lock_wait()
        try:

            def joining_reader():
                # The hash join builds on items (600 rows): the reader
                # S-locks items, parks at a batch boundary mid-build,
                # and only then acquires other for the probe side — the
                # classic held-while-acquiring shape.
                return len(
                    db.execute(
                        "SELECT * FROM other o JOIN items i ON i.k = o.k"
                    ).rows
                )

            def opposite_writer():
                txn = db.begin()
                db.execute("UPDATE other SET k = 2", txn=txn)
                db.execute("UPDATE items SET v = 0 WHERE k = 1", txn=txn)
                txn.commit()
                return "write"

            outcomes = scheduler.run([joining_reader, opposite_writer])
        finally:
            db.txn_manager.wait_hook = None
        errors = [o for o in outcomes if not o.ok]
        assert len(errors) == 1
        assert isinstance(errors[0].error, DeadlockError)
        # The surviving worker finished its work.
        survivor = next(o for o in outcomes if o.ok)
        assert survivor.result is not None


class TestTraceParityUnderBatching:
    def build(self):
        db = seeded_db(300)
        db.track_reads = True
        traces: list = []

        class Observer:
            def statement_executed(self, txn, trace):
                traces.append(
                    (
                        trace.sql,
                        trace.kind,
                        trace.rowcount,
                        tuple((r.table, r.row_id) for r in trace.reads),
                    )
                )

        db.add_observer(Observer())
        runtime = Runtime(db)
        runtime.register(
            "scan_all", lambda ctx: len(ctx.sql("SELECT * FROM items").rows)
        )
        runtime.register(
            "scan_some",
            lambda ctx: len(
                ctx.sql("SELECT * FROM items WHERE k < 150").rows
            ),
        )
        return runtime, traces

    def test_statement_traces_unchanged_by_batch_granularity(self):
        from repro.runtime import Request

        per_granularity = {}
        for granularity in ("txn", "batch"):
            runtime, traces = self.build()
            runtime.run_concurrent(
                [Request("scan_all"), Request("scan_some")],
                seed=5,
                granularity=granularity,
            )
            per_granularity[granularity] = traces
        # Batching changes when the baton moves, never what TROD sees:
        # the same statements report the same kinds, rowcounts, and
        # per-row read provenance.
        assert sorted(per_granularity["txn"]) == sorted(
            per_granularity["batch"]
        )


class TestShipLoop:
    def test_drains_backlog_in_batches(self):
        primary = seeded_db(10)
        rs = ReplicaSet(primary, n_replicas=1, mode="async")
        for i in range(40):
            primary.execute("INSERT INTO items VALUES (?, ?)", (10 + i, 0))
        assert rs.max_lag() == 40
        applied = rs.ship_loop(batch=6)
        assert applied == 40
        assert rs.max_lag() == 0

    def test_max_batches_bounds_one_slice(self):
        primary = seeded_db(10)
        rs = ReplicaSet(primary, n_replicas=1, mode="async")
        for i in range(40):
            primary.execute("INSERT INTO items VALUES (?, ?)", (10 + i, 0))
        assert rs.ship_loop(batch=6, max_batches=2) == 12
        assert rs.max_lag() == 28

    def test_interleaves_with_foreground_reads_under_scheduler(self):
        primary = seeded_db(200)
        primary.scan_batch_size = 50
        rs = ReplicaSet(primary, n_replicas=1, mode="async")
        backlog = 30
        for i in range(backlog):
            primary.execute(
                "INSERT INTO items VALUES (?, ?)", (N_ROWS + i, 0)
            )
        reads: list = []

        def reader():
            txn = primary.begin(IsolationLevel.SNAPSHOT)
            try:
                reads.append(
                    primary.execute("SELECT COUNT(*) FROM items", txn=txn)
                    .scalar()
                )
            finally:
                txn.abort()
            return "read"

        scheduler = CooperativeScheduler(
            schedule=[0, 1] * 20, granularity="batch"
        )
        outcomes = scheduler.run(
            [lambda: rs.ship_loop(batch=4), reader]
        )
        assert all(o.ok for o in outcomes)
        record = scheduler.record
        ship_parks = [
            e.step
            for e in record
            if e.kind is CheckpointKind.SCAN_BATCH and e.label == "ship_loop"
        ]
        reader_last = max(e.step for e in record if e.worker == 1)
        ship_last = max(e.step for e in record if e.worker == 0)
        # Catch-up parked between batches, and the foreground read
        # completed while the backlog was still draining.
        assert ship_parks and ship_parks[0] < reader_last < ship_last
        assert reads == [200 + backlog]
        # The loop still drained everything it could see (the reader's
        # aborted txn ships nothing).
        assert outcomes[0].result >= backlog
        assert rs.max_lag() == 0
