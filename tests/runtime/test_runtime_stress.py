"""Runtime/scheduler robustness under failures and larger batches."""

import pytest

from repro.db import Database
from repro.runtime import Request, Runtime


@pytest.fixture
def env():
    db = Database()
    db.execute("CREATE TABLE log (worker TEXT NOT NULL, step INTEGER)")
    runtime = Runtime(db)

    def work(ctx, name, steps, fail_at=None):
        for step in range(steps):
            if fail_at is not None and step == fail_at:
                raise RuntimeError(f"{name} failed at step {step}")
            with ctx.txn(label=f"{name}-{step}") as t:
                t.execute("INSERT INTO log VALUES (?, ?)", (name, step))
        return steps

    runtime.register("work", work)
    return db, runtime


class TestFailureHandling:
    def test_mid_batch_failure_isolated(self, env):
        db, runtime = env
        requests = [
            Request("work", ("a", 2)),
            Request("work", ("b", 3), {"fail_at": 1}),
            Request("work", ("c", 2)),
        ]
        results = runtime.run_concurrent(requests, seed=1)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        # b committed its step 0 before failing; steps after the failure
        # never ran.
        b_steps = db.execute(
            "SELECT step FROM log WHERE worker = 'b' ORDER BY step"
        ).column("step")
        assert b_steps == [0]

    def test_all_workers_failing(self, env):
        _db, runtime = env
        requests = [
            Request("work", (name, 2), {"fail_at": 0}) for name in "abc"
        ]
        results = runtime.run_concurrent(requests, seed=2)
        assert all(not r.ok for r in results)

    def test_failure_before_first_txn(self, env):
        _db, runtime = env

        def early_fail(ctx):
            raise ValueError("before any txn")

        runtime.register("earlyFail", early_fail)
        results = runtime.run_concurrent(
            [Request("earlyFail"), Request("work", ("a", 1))], seed=0
        )
        assert not results[0].ok
        assert results[1].ok


class TestLargerBatches:
    def test_ten_workers_random_seed(self, env):
        db, runtime = env
        requests = [Request("work", (f"w{i}", 3)) for i in range(10)]
        results = runtime.run_concurrent(requests, seed=11)
        assert all(r.ok for r in results)
        assert db.execute("SELECT COUNT(*) FROM log").scalar() == 30

    def test_txn_order_has_all_steps(self, env):
        _db, runtime = env
        requests = [Request("work", (f"w{i}", 2)) for i in range(4)]
        runtime.run_concurrent(requests, seed=3)
        order = runtime.realized_txn_order()
        assert len(order) == 8
        for i in range(4):
            assert order.count(i) == 2

    def test_explicit_long_schedule(self, env):
        db, runtime = env
        requests = [Request("work", (f"w{i}", 2)) for i in range(3)]
        schedule = [0, 1, 2, 2, 1, 0]
        runtime.run_concurrent(requests, schedule=schedule)
        assert runtime.realized_txn_order() == schedule
        # Commit order in the database matches the schedule exactly.
        workers = db.execute(
            "SELECT worker FROM log"
        ).column("worker")
        assert workers == ["w0", "w1", "w2", "w2", "w1", "w0"]

    def test_mixed_handler_batch(self, env):
        db, runtime = env

        def reader(ctx):
            with ctx.txn(label="read") as t:
                return t.execute("SELECT COUNT(*) FROM log").scalar()

        runtime.register("reader", reader)
        requests = [
            Request("work", ("w", 2)),
            Request("reader"),
            Request("work", ("v", 1)),
            Request("reader"),
        ]
        results = runtime.run_concurrent(requests, seed=9)
        assert all(r.ok for r in results)
        counts = [r.output for r in results if isinstance(r.output, int) and r.handler == "reader"]
        assert all(0 <= c <= 3 for c in counts)


class TestSchedulerReuse:
    def test_sequential_batches_on_one_runtime(self, env):
        db, runtime = env
        for batch in range(3):
            requests = [Request("work", (f"b{batch}-{i}", 1)) for i in range(2)]
            results = runtime.run_concurrent(requests, seed=batch)
            assert all(r.ok for r in results)
        assert db.execute("SELECT COUNT(*) FROM log").scalar() == 6

    def test_submit_after_concurrent_batch(self, env):
        db, runtime = env
        runtime.run_concurrent([Request("work", ("a", 1))], seed=0)
        result = runtime.submit("work", "b", 1)
        assert result.ok
        assert db.execute("SELECT COUNT(*) FROM log").scalar() == 2

    def test_wait_hook_restored_after_batch(self, env):
        db, runtime = env
        assert db.txn_manager.wait_hook is None
        runtime.run_concurrent([Request("work", ("a", 1))], seed=0)
        assert db.txn_manager.wait_hook is None
