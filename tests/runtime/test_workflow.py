"""Runtime tests: request execution, contexts, RPC workflows, concurrency."""

import pytest

from repro.db import Database, IsolationLevel
from repro.errors import HandlerError, UnknownHandlerError
from repro.runtime import Request, Runtime


@pytest.fixture
def env():
    db = Database()
    db.execute("CREATE TABLE kv (k TEXT NOT NULL, v INTEGER)")
    runtime = Runtime(db)
    return db, runtime


class TestSubmit:
    def test_submit_returns_output(self, env):
        db, rt = env

        def put(ctx, k, v):
            with ctx.txn(label="put") as t:
                t.execute("INSERT INTO kv VALUES (?, ?)", (k, v))
            return k

        rt.register("put", put)
        result = rt.submit("put", "a", 1)
        assert result.ok and result.output == "a"
        assert result.req_id == "R1"
        assert db.execute("SELECT v FROM kv").scalar() == 1

    def test_req_ids_assigned_sequentially(self, env):
        _db, rt = env
        rt.register("noop", lambda ctx: None)
        ids = [rt.submit("noop").req_id for _ in range(3)]
        assert ids == ["R1", "R2", "R3"]

    def test_explicit_req_id_respected(self, env):
        _db, rt = env
        rt.register("noop", lambda ctx: None)
        assert rt.submit("noop", req_id="custom-9").req_id == "custom-9"

    def test_handler_exception_captured(self, env):
        _db, rt = env

        def bad(ctx):
            raise RuntimeError("oops")

        rt.register("bad", bad)
        result = rt.submit("bad")
        assert not result.ok
        assert "oops" in result.error
        assert isinstance(result.exception, RuntimeError)

    def test_unknown_handler_reported_in_result(self, env):
        _db, rt = env
        result = rt.submit("ghost")
        assert not result.ok
        assert "ghost" in result.error

    def test_failed_txn_in_handler_aborts_cleanly(self, env):
        db, rt = env

        def partial(ctx):
            with ctx.txn() as t:
                t.execute("INSERT INTO kv VALUES ('x', 1)")
                raise ValueError("mid-txn failure")

        rt.register("partial", partial)
        result = rt.submit("partial")
        assert not result.ok
        assert db.execute("SELECT COUNT(*) FROM kv").scalar() == 0

    def test_txn_names_recorded(self, env):
        _db, rt = env

        def two_txns(ctx):
            with ctx.txn(label="a") as t:
                t.execute("SELECT * FROM kv")
            with ctx.txn(label="b") as t:
                t.execute("SELECT * FROM kv")

        rt.register("two", two_txns)
        result = rt.submit("two")
        assert len(result.txn_names) == 2

    def test_ctx_sql_shortcut(self, env):
        db, rt = env

        def quick(ctx):
            ctx.sql("INSERT INTO kv VALUES ('q', 7)")
            return ctx.sql("SELECT v FROM kv WHERE k = 'q'").scalar()

        rt.register("quick", quick)
        assert rt.submit("quick").output == 7


class TestDeterminism:
    def test_rng_is_deterministic_per_req_id(self, env):
        _db, rt = env

        def roll(ctx):
            return ctx.rng.randrange(1_000_000)

        rt.register("roll", roll)
        a = rt.submit("roll", req_id="RX").output
        b = rt.submit("roll", req_id="RX").output
        c = rt.submit("roll", req_id="RY").output
        assert a == b
        assert a != c

    def test_rng_depends_on_runtime_seed(self, env):
        db, _rt = env

        def roll(ctx):
            return ctx.rng.randrange(1_000_000)

        rt1 = Runtime(db, seed=1)
        rt2 = Runtime(db, seed=2)
        rt1.register("roll", roll)
        rt2.register("roll", roll)
        assert rt1.submit("roll", req_id="R").output != rt2.submit(
            "roll", req_id="R"
        ).output

    def test_now_is_logical(self, env):
        _db, rt = env

        def when(ctx):
            return ctx.now()

        rt.register("when", when)
        first = rt.submit("when").output
        second = rt.submit("when").output
        assert second > first  # ticks advance with requests, not wall time


class TestRpcWorkflows:
    def test_call_propagates_req_id(self, env):
        _db, rt = env
        seen = {}

        def parent(ctx):
            return ctx.call("child")

        def child(ctx):
            seen["req_id"] = ctx.req_id
            seen["depth"] = ctx.depth
            return "from-child"

        rt.register("parent", parent)
        rt.register("child", child)
        result = rt.submit("parent", req_id="R42")
        assert result.output == "from-child"
        assert seen == {"req_id": "R42", "depth": 1}

    def test_nested_rpc_chain(self, env):
        _db, rt = env
        rt.register("a", lambda ctx: ctx.call("b") + 1)
        rt.register("b", lambda ctx: ctx.call("c") + 1)
        rt.register("c", lambda ctx: 0)
        assert rt.submit("a").output == 2

    def test_child_failure_wrapped_as_handler_error(self, env):
        _db, rt = env

        def parent(ctx):
            return ctx.call("broken")

        def broken(ctx):
            raise ValueError("inner")

        rt.register("parent", parent)
        rt.register("broken", broken)
        result = rt.submit("parent")
        assert not result.ok
        assert isinstance(result.exception, HandlerError)
        assert isinstance(result.exception.__cause__, ValueError)

    def test_rpc_to_unknown_handler(self, env):
        _db, rt = env
        rt.register("parent", lambda ctx: ctx.call("ghost"))
        result = rt.submit("parent")
        assert not result.ok

    def test_side_effects_recorded(self, env):
        _db, rt = env

        def notify(ctx):
            ctx.emit("email", {"to": "x"})
            ctx.emit("export", [1, 2])

        rt.register("notify", notify)
        rt.submit("notify")
        assert [e.channel for e in rt.side_effects] == ["email", "export"]


class TestRunConcurrent:
    def register_counter(self, rt):
        def bump(ctx, key):
            with ctx.txn(label="read") as t:
                rows = t.execute("SELECT v FROM kv WHERE k = ?", (key,)).rows
                current = rows[0][0] if rows else 0
            with ctx.txn(label="write") as t:
                if current == 0 and not rows:
                    t.execute("INSERT INTO kv VALUES (?, ?)", (key, 1))
                else:
                    t.execute(
                        "UPDATE kv SET v = ? WHERE k = ?", (current + 1, key)
                    )
            return current + 1

        rt.register("bump", bump)

    def test_serial_schedule_counts_correctly(self, env):
        db, rt = env
        self.register_counter(rt)
        requests = [Request("bump", ("k",)), Request("bump", ("k",))]
        results = rt.run_concurrent(requests, schedule=[0, 0, 1, 1])
        assert [r.output for r in results] == [1, 2]
        assert db.execute("SELECT v FROM kv").scalar() == 2

    def test_racy_schedule_loses_update(self, env):
        db, rt = env
        self.register_counter(rt)
        requests = [Request("bump", ("k",)), Request("bump", ("k",))]
        results = rt.run_concurrent(requests, schedule=[0, 1, 0, 1])
        # Both read 0 -> both "insert 1": the lost-update anatomy. The
        # second insert makes it two rows of v=1.
        assert [r.output for r in results] == [1, 1]
        assert db.execute("SELECT COUNT(*) FROM kv WHERE k = 'k'").scalar() == 2

    def test_req_ids_stable_across_schedules(self, env):
        _db, rt = env
        self.register_counter(rt)
        requests = [Request("bump", ("a",)), Request("bump", ("b",))]
        results = rt.run_concurrent(requests, schedule=[1, 1, 0, 0])
        # Request ids follow list order, not execution order.
        assert [r.req_id for r in results] == ["R1", "R2"]

    def test_realized_txn_order(self, env):
        _db, rt = env
        self.register_counter(rt)
        requests = [Request("bump", ("a",)), Request("bump", ("b",))]
        rt.run_concurrent(requests, schedule=[1, 0, 1, 0])
        assert rt.realized_txn_order() == [1, 0, 1, 0]

    def test_lock_contention_with_statement_granularity(self, env):
        """2PL blocking integrates with the scheduler's lock-wait state."""
        db, rt = env

        def writer(ctx, key):
            with ctx.txn(label="w") as t:
                t.execute("INSERT INTO kv VALUES (?, 1)", (key,))
                t.execute("UPDATE kv SET v = 2 WHERE k = ?", (key,))
            return key

        rt.register("writer", writer)
        requests = [Request("writer", ("a",)), Request("writer", ("b",))]
        results = rt.run_concurrent(
            requests, seed=3, granularity="statement"
        )
        assert all(r.ok for r in results)
        assert db.execute("SELECT COUNT(*) FROM kv").scalar() == 2

    def test_handler_errors_do_not_kill_the_batch(self, env):
        _db, rt = env
        rt.register("ok", lambda ctx: "fine")

        def bad(ctx):
            raise RuntimeError("boom")

        rt.register("bad", bad)
        results = rt.run_concurrent([Request("ok"), Request("bad")])
        assert results[0].ok
        assert not results[1].ok
