"""Cooperative scheduler tests: determinism, schedules, lock waits."""

import pytest

from repro.errors import SchedulerError
from repro.runtime.scheduler import (
    CheckpointKind,
    CooperativeScheduler,
    current_scheduler,
    maybe_checkpoint,
)


def make_task(log, name, steps=2):
    """A task that records (name, step) around txn-like checkpoints."""

    def task():
        for step in range(steps):
            maybe_checkpoint(CheckpointKind.TXN_BEGIN, f"{name}-{step}")
            log.append((name, step))
        return name

    return task


class TestBasics:
    def test_runs_all_tasks_and_collects_results(self):
        log = []
        scheduler = CooperativeScheduler(schedule=[0, 1, 0, 1])
        outcomes = scheduler.run([make_task(log, "a"), make_task(log, "b")])
        assert [o.result for o in outcomes] == ["a", "b"]
        assert all(o.ok for o in outcomes)

    def test_schedule_controls_interleaving(self):
        log = []
        scheduler = CooperativeScheduler(schedule=[0, 1, 1, 0])
        scheduler.run([make_task(log, "a"), make_task(log, "b")])
        assert log == [("a", 0), ("b", 0), ("b", 1), ("a", 1)]

    def test_serial_schedule(self):
        log = []
        scheduler = CooperativeScheduler(schedule=[0, 0, 1, 1])
        scheduler.run([make_task(log, "a"), make_task(log, "b")])
        assert log == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]

    def test_empty_task_list(self):
        assert CooperativeScheduler().run([]) == []

    def test_task_without_checkpoints(self):
        scheduler = CooperativeScheduler()
        outcomes = scheduler.run([lambda: 42])
        assert outcomes[0].result == 42

    def test_task_exception_captured_not_raised(self):
        def boom():
            raise ValueError("x")

        outcomes = CooperativeScheduler().run([boom])
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, ValueError)

    def test_seeded_runs_are_reproducible(self):
        def run_once(seed):
            log = []
            CooperativeScheduler(seed=seed).run(
                [make_task(log, "a", 3), make_task(log, "b", 3)]
            )
            return log

        assert run_once(7) == run_once(7)

    def test_different_seeds_can_differ(self):
        logs = set()
        for seed in range(10):
            log = []
            CooperativeScheduler(seed=seed).run(
                [make_task(log, "a", 3), make_task(log, "b", 3)]
            )
            logs.add(tuple(log))
        assert len(logs) > 1


class TestScheduleSemantics:
    def test_realized_txn_order_matches_schedule(self):
        log = []
        scheduler = CooperativeScheduler(schedule=[1, 0, 1, 0])
        scheduler.run([make_task(log, "a"), make_task(log, "b")])
        assert scheduler.realized_txn_order() == [1, 0, 1, 0]

    def test_exhausted_schedule_drains_in_index_order(self):
        log = []
        scheduler = CooperativeScheduler(schedule=[1])
        scheduler.run([make_task(log, "a", 1), make_task(log, "b", 2)])
        # b ran its first txn; then drain: a finishes before b's second.
        assert log == [("b", 0), ("a", 0), ("b", 1)]

    def test_entries_for_finished_workers_skipped_by_default(self):
        log = []
        scheduler = CooperativeScheduler(schedule=[0, 0, 0, 1, 1])
        scheduler.run([make_task(log, "a", 1), make_task(log, "b", 1)])
        assert ("b", 0) in log

    def test_strict_mode_rejects_stale_entries(self):
        log = []
        scheduler = CooperativeScheduler(schedule=[0, 0, 0], strict=True)
        with pytest.raises(SchedulerError):
            scheduler.run([make_task(log, "a", 1), make_task(log, "b", 1)])

    def test_record_contains_executed_checkpoints(self):
        log = []
        scheduler = CooperativeScheduler(schedule=[0, 1, 1, 0])
        scheduler.run([make_task(log, "a"), make_task(log, "b")])
        txn_entries = [
            e for e in scheduler.record if e.kind is CheckpointKind.TXN_BEGIN
        ]
        assert [e.worker for e in txn_entries] == [0, 1, 1, 0]
        start_entries = [
            e for e in scheduler.record if e.kind is CheckpointKind.START
        ]
        assert [e.worker for e in start_entries] == [0, 1]


class TestGranularity:
    def test_statement_checkpoints_ignored_at_txn_granularity(self):
        log = []

        def task():
            maybe_checkpoint(CheckpointKind.TXN_BEGIN)
            maybe_checkpoint(CheckpointKind.STATEMENT)  # should not block
            log.append("ran")

        CooperativeScheduler(schedule=[0], granularity="txn").run([task])
        assert log == ["ran"]

    def test_statement_granularity_interleaves_inside_txn(self):
        log = []

        def task(name):
            def run():
                maybe_checkpoint(CheckpointKind.TXN_BEGIN)
                log.append((name, "stmt1"))
                maybe_checkpoint(CheckpointKind.STATEMENT)
                log.append((name, "stmt2"))

            return run

        scheduler = CooperativeScheduler(
            schedule=[0, 1, 0, 1], granularity="statement"
        )
        scheduler.run([task("a"), task("b")])
        assert log == [
            ("a", "stmt1"), ("b", "stmt1"), ("a", "stmt2"), ("b", "stmt2"),
        ]

    def test_unknown_granularity_rejected(self):
        with pytest.raises(SchedulerError):
            CooperativeScheduler(granularity="nope")


class TestThreadLocalPlumbing:
    def test_no_scheduler_outside_workers(self):
        assert current_scheduler() is None
        maybe_checkpoint(CheckpointKind.TXN_BEGIN)  # no-op, no error

    def test_worker_sees_its_scheduler(self):
        seen = []

        def task():
            seen.append(current_scheduler())

        scheduler = CooperativeScheduler()
        scheduler.run([task])
        assert seen == [scheduler]
