"""The read-heavy replicated workload profile, single-node and sharded."""

import pytest

from repro.db import Database, ShardedDatabase
from repro.db.replication import (
    ReadRouter,
    ReplicaSet,
    ShardedReadRouter,
)
from repro.workload.generators import ReplicatedReadWorkload


class TestReplicatedReadWorkload:
    def test_single_node_async_holds_read_your_writes(self):
        db = Database()
        workload = ReplicatedReadWorkload(n_keys=40, n_sessions=4, seed=7)
        workload.seed_database(db)
        rs = ReplicaSet(db, n_replicas=2, mode="async")
        router = ReadRouter(rs, on_stale="primary")
        counts = workload.run(router, 300, write_ratio=0.3, ship_every=20)
        assert counts["ryw_checks"] == counts["writes"] > 0
        assert counts["reads"] > counts["writes"]  # read-heavy
        assert counts["replica_reads"] > 0
        # Under lag, some probes must have needed the session token.
        assert counts["stale_fallbacks"] > 0

    def test_single_node_wait_mode_never_falls_back(self):
        db = Database()
        workload = ReplicatedReadWorkload(n_keys=40, n_sessions=4, seed=8)
        workload.seed_database(db)
        rs = ReplicaSet(db, n_replicas=2, mode="async")
        router = ReadRouter(rs, on_stale="wait")
        counts = workload.run(router, 200, write_ratio=0.3, ship_every=20)
        assert counts["stale_fallbacks"] == 0
        assert counts["catch_up_waits"] > 0

    def test_sync_mode_serves_everything_from_replicas(self):
        db = Database()
        workload = ReplicatedReadWorkload(n_keys=40, n_sessions=4, seed=9)
        workload.seed_database(db)
        rs = ReplicaSet(db, n_replicas=3, mode="sync")
        router = ReadRouter(rs, on_stale="primary")
        counts = workload.run(router, 200, write_ratio=0.2, ship_every=None)
        assert counts["stale_fallbacks"] == 0
        assert counts["primary_reads"] == 0
        assert counts["replica_reads"] == counts["reads"] + counts["ryw_checks"]

    def test_sharded_cluster_profile(self):
        sharded = ShardedDatabase(3, shard_keys={"kv": "k"})
        workload = ReplicatedReadWorkload(n_keys=60, n_sessions=6, seed=10)
        workload.seed_database(sharded)
        sharded.attach_replicas(2, mode="async")
        router = ShardedReadRouter(sharded, on_stale="primary")
        counts = workload.run(router, 250, write_ratio=0.25, ship_every=25)
        assert counts["ryw_checks"] == counts["writes"] > 0
        assert counts["replica_reads"] > 0
        # Final state agrees between primaries and caught-up replicas.
        sharded.catch_up_replicas()
        expected = sharded.execute("SELECT k, val FROM kv ORDER BY k").rows
        routed = router.execute("SELECT k, val FROM kv ORDER BY k").rows
        assert routed == expected

    def test_violation_detection_trips_on_a_broken_router(self):
        from repro.errors import ReplicationError

        db = Database()
        workload = ReplicatedReadWorkload(n_keys=10, n_sessions=2, seed=11)
        workload.seed_database(db)
        rs = ReplicaSet(db, n_replicas=1, mode="async")
        router = ReadRouter(rs, on_stale="primary")

        class SessionlessRouter:
            """Drops the session token — stale reads go unprotected."""

            def __init__(self, inner):
                self.inner = inner
                self.stats = inner.stats

            def execute(self, sql, params=(), session=None):
                return self.inner.execute(sql, params, session=None)

        with pytest.raises(ReplicationError, match="read back"):
            # With no token, a lagging replica eventually serves a stale
            # read-your-writes probe; the workload must catch it.
            workload.run(
                SessionlessRouter(router), 300, write_ratio=0.5, ship_every=50
            )
