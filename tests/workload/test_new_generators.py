"""MediaWiki and profile workload generator tests."""

import pytest

from repro.runtime import Request
from repro.workload.generators import MediaWikiWorkload, ProfileWorkload


class TestMediaWikiWorkload:
    def test_seed_creates_pages(self, mediawiki_env):
        db, runtime, _trod = mediawiki_env
        workload = MediaWikiWorkload(n_pages=5, seed=0)
        workload.seed_database(runtime)
        assert len(db.table_rows("pages")) == 5

    def test_request_mix(self, mediawiki_env):
        _db, runtime, _trod = mediawiki_env
        workload = MediaWikiWorkload(n_pages=5, seed=0)
        workload.seed_database(runtime)
        requests = list(workload.requests(50, read_ratio=0.3))
        handlers = [r.handler for r in requests]
        assert set(handlers) <= {"editPage", "pageHistory"}
        reads = handlers.count("pageHistory")
        assert 5 <= reads <= 30

    def test_requests_all_execute(self, mediawiki_env):
        _db, runtime, _trod = mediawiki_env
        workload = MediaWikiWorkload(n_pages=3, seed=1)
        workload.seed_database(runtime)
        for request in workload.requests(20):
            result = runtime.execute_request(request)
            assert result.ok, result.error

    def test_racy_edit_pair_reproduces_mw44325(self, mediawiki_env):
        _db, runtime, _trod = mediawiki_env
        runtime.submit("createPage", "P1", "T", "hello")
        runtime.run_concurrent(
            MediaWikiWorkload.racy_edit_pair(),
            schedule=MediaWikiWorkload.RACY_SCHEDULE,
        )
        result = runtime.submit("fetchSiteLinks", "P1")
        assert not result.ok

    def test_determinism(self):
        a = [r.args for r in MediaWikiWorkload(seed=5).requests(30)]
        b = [r.args for r in MediaWikiWorkload(seed=5).requests(30)]
        assert a == b


class TestProfileWorkload:
    def test_seed_creates_profiles(self, profiles_env):
        db, runtime, _trod = profiles_env
        ProfileWorkload(n_users=4, seed=0).seed_database(runtime)
        assert len(db.table_rows("profiles")) == 4

    def test_violations_injected_at_requested_rate(self, profiles_env):
        _db, runtime, trod = profiles_env
        workload = ProfileWorkload(n_users=5, seed=2)
        workload.seed_database(runtime)
        for request in workload.requests(100, violation_ratio=0.10):
            runtime.execute_request(request)
        violations = trod.security.user_profiles("profiles")
        assert 2 <= len(violations) <= 25
        assert all(v.handler == "updateProfileInsecure" for v in violations)

    def test_zero_violation_rate_is_clean(self, profiles_env):
        _db, runtime, trod = profiles_env
        workload = ProfileWorkload(n_users=5, seed=2)
        workload.seed_database(runtime)
        for request in workload.requests(50, violation_ratio=0.0):
            result = runtime.execute_request(request)
            assert result.ok, result.error
        assert trod.security.user_profiles("profiles") == []


class TestRaceHunting:
    def test_hunt_finds_the_toctou_interleaving(self, moodle_env):
        """Given only a set of past requests (run serially, no incident),
        hunt() finds an interleaving of the CURRENT code that breaks."""
        _db, runtime, trod = moodle_env
        # The requests ran serially in production — no duplicates, no error.
        runtime.submit("subscribeUser", "U1", "F2")
        runtime.submit("unsubscribeUser", "U1", "F2")
        runtime.submit("subscribeUser", "U1", "F2")
        trod.flush()

        def no_duplicates(dev_db):
            rows = dev_db.execute(
                "SELECT userId, forum, COUNT(*) FROM forum_sub"
                " GROUP BY userId, forum HAVING COUNT(*) > 1"
            ).rows
            return [f"duplicate {r[:2]}" for r in rows]

        found = trod.retroactive.hunt(
            ["R1", "R3"], invariant=no_duplicates
        )
        assert found is not None
        assert found.invariant_violations
        # The failing interleaving is the TOCTOU: both checks before both
        # inserts.
        assert found.final_state["forum_sub"] == [("U1", "F2"), ("U1", "F2")]

    def test_hunt_returns_none_for_safe_code(self, moodle_env):
        _db, runtime, trod = moodle_env
        runtime.submit("subscribeUserFixed", "U1", "F2")
        runtime.submit("subscribeUserFixed", "U1", "F2")
        trod.flush()

        def no_duplicates(dev_db):
            rows = dev_db.execute(
                "SELECT userId, forum, COUNT(*) FROM forum_sub"
                " GROUP BY userId, forum HAVING COUNT(*) > 1"
            ).rows
            return [str(r) for r in rows]

        assert trod.retroactive.hunt(["R1", "R2"], invariant=no_duplicates) is None
