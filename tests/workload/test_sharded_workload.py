"""The sharded workload profile: deterministic, balanced, and atomic."""

from repro.db import ShardedDatabase
from repro.workload import ShardedWorkload


def build_cluster(n_keys: int = 200) -> tuple[ShardedDatabase, ShardedWorkload]:
    sharded = ShardedDatabase(4, shard_keys={"accounts": "acct"})
    workload = ShardedWorkload(n_keys=n_keys, seed=7)
    workload.seed_database(sharded)
    return sharded, workload


class TestShardedWorkload:
    def test_streams_are_deterministic(self):
        a = list(ShardedWorkload(n_keys=100, seed=3).operations(200))
        b = list(ShardedWorkload(n_keys=100, seed=3).operations(200))
        c = list(ShardedWorkload(n_keys=100, seed=4).operations(200))
        assert a == b
        assert a != c

    def test_mix_contains_every_kind(self):
        kinds = {op[0] for op in ShardedWorkload(n_keys=100).operations(300)}
        assert kinds == {"point", "scan", "aggregate", "transfer"}

    def test_seed_spreads_keys_across_shards(self):
        sharded, _workload = build_cluster()
        counts = [
            shard.execute("SELECT COUNT(*) FROM accounts").scalar()
            for shard in sharded.shards
        ]
        assert sum(counts) == 200
        assert all(count > 0 for count in counts)

    def test_run_conserves_total_balance(self):
        """Transfers are atomic 2PC commits: money never appears or
        vanishes, no matter how many shards a transfer spans."""
        sharded, workload = build_cluster()
        before = sharded.execute("SELECT SUM(balance) FROM accounts").scalar()
        executed = workload.run(sharded, 150)
        after = sharded.execute("SELECT SUM(balance) FROM accounts").scalar()
        assert after == before
        assert executed.get("transfer", 0) > 0
        # Cross-shard transfers populated the aligned commit log.
        assert any(
            len(commit.local_csns) > 1
            for commit in sharded.coordinator.aligned_log
        )

    def test_run_reports_execution_counts(self):
        sharded, workload = build_cluster(n_keys=120)
        executed = workload.run(sharded, 100)
        assert sum(executed.values()) == 100
