"""Workload generator, sampler, and harness tests."""

import pytest

from repro.workload.distributions import UniformSampler, ZipfSampler
from repro.workload.generators import CheckoutWorkload, ForumWorkload, ProvenanceFiller
from repro.workload.harness import Timer, format_us, render_table, summarize_us


class TestSamplers:
    def test_uniform_bounds_and_determinism(self):
        a = UniformSampler(10, seed=1)
        b = UniformSampler(10, seed=1)
        samples_a = [a.sample() for _ in range(100)]
        samples_b = [b.sample() for _ in range(100)]
        assert samples_a == samples_b
        assert all(0 <= s < 10 for s in samples_a)

    def test_uniform_rejects_bad_n(self):
        with pytest.raises(ValueError):
            UniformSampler(0)

    def test_zipf_is_deterministic(self):
        a = [ZipfSampler(100, seed=3).sample() for _ in range(50)]
        b = [ZipfSampler(100, seed=3).sample() for _ in range(50)]
        assert a == b

    def test_zipf_skews_towards_low_ranks(self):
        sampler = ZipfSampler(1000, theta=0.99, seed=0)
        samples = [sampler.sample() for _ in range(5000)]
        head = sum(1 for s in samples if s < 10)
        tail = sum(1 for s in samples if s >= 500)
        assert head > tail

    def test_zipf_pmf_decreases(self):
        sampler = ZipfSampler(100, theta=1.0)
        assert sampler.pmf(0) > sampler.pmf(1) > sampler.pmf(50)

    def test_zipf_theta_zero_is_uniformish(self):
        sampler = ZipfSampler(10, theta=0.0)
        assert abs(sampler.pmf(0) - sampler.pmf(9)) < 1e-9

    def test_zipf_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, theta=-1)


class TestForumWorkload:
    def test_request_stream_shape(self):
        workload = ForumWorkload(seed=0)
        requests = list(workload.requests(100, fetch_ratio=0.2))
        assert len(requests) == 100
        handlers = {r.handler for r in requests}
        assert handlers <= {"subscribeUser", "fetchSubscribers"}
        fetches = sum(1 for r in requests if r.handler == "fetchSubscribers")
        assert 5 <= fetches <= 40  # ~20%

    def test_racy_pair_and_schedules(self):
        pair = ForumWorkload.racy_pair()
        assert [r.handler for r in pair] == ["subscribeUser"] * 2
        assert pair[0].args == pair[1].args
        assert ForumWorkload.RACY_SCHEDULE == [0, 1, 1, 0]


class TestCheckoutWorkload:
    def test_seed_and_requests(self, ecommerce_env):
        _db, runtime, _trod = ecommerce_env
        workload = CheckoutWorkload(n_users=3, n_skus=2, seed=0)
        workload.seed_database(runtime)
        requests = list(workload.requests(5))
        assert len(requests) == 10  # addToCart + checkout per iteration
        results = [runtime.execute_request(r) for r in requests]
        assert all(r.ok for r in results), [r.error for r in results if not r.ok]


class TestProvenanceFiller:
    def test_fill_writes_paired_rows(self, moodle_env):
        _db, _runtime, trod = moodle_env
        filler = ProvenanceFiller(trod.provenance.db, event_table="ForumEvents")
        written = filler.fill(500, duplicate_every=100)
        assert written == 1000
        count = trod.provenance.db.execute(
            "SELECT COUNT(*) FROM Executions"
        ).scalar()
        assert count >= 500
        dupes = trod.provenance.db.execute(
            "SELECT COUNT(*) FROM ForumEvents"
            " WHERE UserId = 'U1' AND Forum = 'F2' AND Type = 'Insert'"
        ).scalar()
        assert dupes >= 5  # injected duplicates


class TestHarness:
    def test_timer_measures(self):
        with Timer() as timer:
            sum(range(10000))
        assert timer.elapsed_ns > 0
        assert timer.elapsed_us == timer.elapsed_ns / 1000

    def test_summarize_percentiles(self):
        stats = summarize_us(list(range(1, 101)))
        assert stats["min"] == 1
        assert stats["max"] == 100
        assert stats["p50"] in (50, 51)  # nearest-rank with ties
        assert stats["p95"] in (95, 96)
        assert stats["mean"] == 50.5

    def test_summarize_empty(self):
        assert summarize_us([])["mean"] == 0.0

    def test_render_table_alignment(self):
        text = render_table(["a", "long_header"], [[1, 2.5], [10000, "x"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long_header" in lines[0]
        assert "10,000" in text

    def test_format_us_scales(self):
        assert format_us(500) == "500.0us"
        assert format_us(2500) == "2.50ms"
        assert format_us(3_000_000) == "3.00s"
