"""Property tests: compiled expressions against the closure tree and eval.

The code generator in ``repro.db.sql.compile`` must be a pure performance
transformation: for any expression and any row, the compiled function
returns exactly what the planner's closure tree returns — same value,
same type, or the same ``ExecutionError`` with the same message. Where
the planner itself agrees with ``Expr.eval`` (everywhere except the
documented arithmetic-error-path divergence), the compiled value must
match the interpreter too. These invariants are what let the batch
executor swap in compiled programs without changing a single result.

Deliberately out of scope (documented engine edges, not codegen bugs):
NaN values (group/join key identity semantics differ from value
semantics by design) and unary minus over strings (``Expr.eval`` raises
a raw TypeError where the planner wraps it — both non-compiled paths).
"""

from hypothesis import given, settings, strategies as st

from repro.db.expr import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Scope,
    UnaryOp,
)
from repro.db.sql import compile as codegen
from repro.db.sql import planner
from repro.errors import ExecutionError

COLUMNS = ["a", "b", "c", "d"]
LAYOUT = planner.Layout.for_table("t", COLUMNS)

#: Column values: ints, floats (no NaN), short strings, bools, NULLs.
value_strategy = st.one_of(
    st.none(),
    st.integers(-5, 5),
    st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False),
    st.sampled_from(["", "a", "ab", "xyz", "a%b", "5"]),
    st.booleans(),
)

row_strategy = st.tuples(*[value_strategy] * len(COLUMNS))

literal_strategy = st.builds(Literal, value_strategy)
column_strategy = st.sampled_from(COLUMNS).map(lambda c: ColumnRef(c, "t"))

_CMP_OPS = ["=", "!=", "<", "<=", ">", ">="]
_ARITH_OPS = ["+", "-", "*", "/", "%"]
_LOGIC_OPS = ["AND", "OR"]


def _binary(children: st.SearchStrategy) -> st.SearchStrategy:
    return st.builds(
        lambda op, l, r: BinaryOp(op, l, r),
        st.sampled_from(_CMP_OPS + _ARITH_OPS + _LOGIC_OPS + ["||"]),
        children,
        children,
    )


def _unary(children: st.SearchStrategy) -> st.SearchStrategy:
    # Unary minus only over numeric literals: the planner wraps the
    # TypeError for '-string' where Expr.eval lets it escape, a
    # pre-existing divergence this suite does not relitigate.
    minus = st.builds(
        lambda v: UnaryOp("-", Literal(v)),
        st.one_of(st.integers(-5, 5), st.floats(-10, 10, allow_nan=False)),
    )
    return st.one_of(
        st.builds(lambda e: UnaryOp("NOT", e), children),
        minus,
    )


def _compound(children: st.SearchStrategy) -> st.SearchStrategy:
    return st.one_of(
        _binary(children),
        _unary(children),
        st.builds(
            lambda e, neg: IsNull(e, negated=neg), children, st.booleans()
        ),
        st.builds(
            lambda e, lo, hi, neg: Between(e, lo, hi, negated=neg),
            children,
            children,
            children,
            st.booleans(),
        ),
        st.builds(
            lambda e, items, neg: InList(e, items, negated=neg),
            children,
            st.lists(children, min_size=1, max_size=3),
            st.booleans(),
        ),
        st.builds(
            lambda e, pat, neg: Like(e, Literal(pat), negated=neg),
            children,
            st.sampled_from(["a%", "%b", "_", "a_b", "%", "xyz"]),
            st.booleans(),
        ),
        st.builds(
            lambda pairs, default: Case(pairs, default),
            st.lists(st.tuples(children, children), min_size=1, max_size=2),
            st.one_of(st.none(), children),
        ),
    )


expr_strategy = st.recursive(
    st.one_of(literal_strategy, column_strategy),
    _compound,
    max_leaves=12,
)


def _run(fn, row, params=()):
    """(value-or-None, error-message-or-None) from one evaluation."""
    try:
        return fn(row, params), None
    except ExecutionError as exc:
        return None, str(exc)


@settings(max_examples=300, deadline=None)
@given(expr=expr_strategy, rows=st.lists(row_strategy, max_size=6))
def test_compiled_scalar_matches_planner_closure(expr: Expr, rows):
    compiled = codegen.compile_scalar(expr, LAYOUT)
    assert compiled is not None, "codegen refused a supported expression"
    closure = planner.compile_expr(expr, LAYOUT)
    for row in rows:
        expected, expected_err = _run(closure, row)
        actual, actual_err = _run(compiled, row)
        assert actual_err == expected_err
        if expected_err is None:
            assert type(actual) is type(expected)
            assert actual == expected or (actual is None and expected is None)


@settings(max_examples=300, deadline=None)
@given(expr=expr_strategy, rows=st.lists(row_strategy, max_size=6))
def test_compiled_predicate_batch_matches_row_filter(expr: Expr, rows):
    batch = codegen.compile_predicate_batch(expr, LAYOUT)
    assert batch is not None
    closure = planner.compile_expr(expr, LAYOUT)
    try:
        expected = [r for r in rows if closure(r, ()) is True]
    except ExecutionError as exc:
        try:
            batch(rows, ())
        except ExecutionError as batch_exc:
            assert str(batch_exc) == str(exc)
            return
        raise AssertionError("batch path did not raise") from None
    assert batch(rows, ()) == expected


@settings(max_examples=300, deadline=None)
@given(expr=expr_strategy, row=row_strategy)
def test_compiled_scalar_matches_interpreter_eval(expr: Expr, row):
    closure = planner.compile_expr(expr, LAYOUT)
    expected, expected_err = _run(closure, row)
    if expected_err is not None:
        return  # error paths: covered against the planner above
    scope = Scope(())
    scope.bind_row("t", COLUMNS, row)
    via_eval = expr.eval(scope)
    assert type(via_eval) is type(expected)
    assert via_eval == expected or (via_eval is None and expected is None)
    compiled = codegen.compile_scalar(expr, LAYOUT)
    actual, actual_err = _run(compiled, row)
    assert actual_err is None
    assert type(actual) is type(expected)
    assert actual == expected or (actual is None and expected is None)


@settings(max_examples=150, deadline=None)
@given(
    exprs=st.lists(expr_strategy, min_size=1, max_size=3),
    rows=st.lists(row_strategy, max_size=5),
)
def test_compiled_projection_batch_matches_planner(exprs, rows):
    batch = codegen.compile_projection_batch(exprs, LAYOUT)
    assert batch is not None
    closures = [planner.compile_expr(e, LAYOUT) for e in exprs]
    try:
        expected = [tuple(fn(r, ()) for fn in closures) for r in rows]
    except ExecutionError:
        return  # error equivalence is covered by the scalar test
    out = batch(rows, ())
    assert out == expected
    for got, want in zip(out, expected):
        for g, w in zip(got, want):
            assert type(g) is type(w)
