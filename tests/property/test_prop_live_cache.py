"""Property tests: the live-row caches against the version-walk path.

``scan(None)`` / ``get(row_id, None)`` / ``row_count(None)`` are served
from incrementally maintained caches; ``scan(csn)`` walks version chains.
At the latest CSN the two paths must agree after any sequence of inserts,
updates, deletes, and vacuums — the invariant the read-path overhaul
rests on.
"""

from hypothesis import given, settings, strategies as st

from repro.db.schema import Column, TableSchema
from repro.db.storage import TableStore
from repro.db.types import ColumnType


def make_store() -> TableStore:
    return TableStore(
        TableSchema("t", [Column("v", ColumnType.INTEGER)])
    )


#: An operation program: each entry is ('insert', value) |
#: ('update', target_index, value) | ('delete', target_index) |
#: ('vacuum', horizon_fraction).
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 100)),
        st.tuples(st.just("update"), st.integers(0, 30), st.integers(0, 100)),
        st.tuples(st.just("delete"), st.integers(0, 30)),
        st.tuples(st.just("vacuum"), st.integers(0, 100)),
    ),
    max_size=60,
)


def run_program(store: TableStore, ops) -> int:
    """Apply a program, one CSN per op; returns the last CSN used."""
    csn = 0
    for op in ops:
        csn += 1
        if op[0] == "insert":
            store.apply_insert((op[1],), csn)
        elif op[0] == "vacuum":
            store.vacuum(csn * op[1] // 100)
        else:
            live = store.live_row_ids()
            if not live:
                continue
            target = live[op[1] % len(live)]
            if op[0] == "update":
                store.apply_update(target, (op[2],), csn)
            else:
                store.apply_delete(target, csn)
    return csn


@settings(max_examples=200, deadline=None)
@given(ops=ops_strategy)
def test_latest_scan_matches_version_walk(ops):
    store = make_store()
    last_csn = run_program(store, ops)
    via_cache = list(store.scan(None))
    via_chains = list(store.scan(last_csn))
    assert via_cache == via_chains


@settings(max_examples=200, deadline=None)
@given(ops=ops_strategy)
def test_live_caches_agree_with_chain_reads(ops):
    store = make_store()
    last_csn = run_program(store, ops)
    chain_rows = dict(store.scan(last_csn))
    assert store.row_count(None) == len(chain_rows)
    assert store.live_row_ids() == sorted(chain_rows)
    assert store.stats()["live_rows"] == len(chain_rows)
    for row_id in list(chain_rows) + [10**6]:
        assert store.get(row_id, None) == store.get(row_id, last_csn)


@settings(max_examples=100, deadline=None)
@given(ops=ops_strategy, probe=st.integers(0, 100))
def test_snapshot_bisect_matches_linear_walk(ops, probe):
    """The bisect-located version equals a linear reverse visibility walk."""
    store = make_store()
    last_csn = run_program(store, ops)
    csn = min(probe, last_csn)
    for row_id, chain in store._versions.items():
        expected = None
        for version in reversed(chain):
            if version.visible_at(csn):
                expected = version.values
                break
        assert store.get(row_id, csn) == expected
