"""Property tests: expression SQL rendering round-trips through the parser.

Every expression node renders via ``.sql()``; parsing that text back and
evaluating both trees over random bindings must agree. This pins the
renderer (used by EXPLAIN, provenance Query columns, and the aggregate
rewrite's structural matching) to the parser.
"""

from hypothesis import given, settings, strategies as st

from repro.db.expr import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Scope,
    UnaryOp,
)
from repro.db.sql.parser import parse_sql

literal_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-100, 100),
    st.text(alphabet="abc x_%'", max_size=5),
)

column_names = st.sampled_from(["a", "b", "c"])


def leaf_exprs() -> st.SearchStrategy[Expr]:
    return st.one_of(
        literal_values.map(Literal),
        column_names.map(ColumnRef),
    )


def exprs(depth: int = 2) -> st.SearchStrategy[Expr]:
    if depth == 0:
        return leaf_exprs()
    sub = exprs(depth - 1)
    return st.one_of(
        leaf_exprs(),
        st.tuples(
            st.sampled_from(["+", "-", "*", "=", "<", "<=", ">", ">=", "<>", "AND", "OR"]),
            sub,
            sub,
        ).map(lambda t: BinaryOp(t[0], t[1], t[2])),
        st.tuples(sub, st.booleans()).map(
            lambda t: IsNull(t[0], negated=t[1])
        ),
        st.tuples(sub, st.lists(leaf_exprs(), min_size=1, max_size=3), st.booleans()).map(
            lambda t: InList(t[0], t[1], negated=t[2])
        ),
        st.tuples(sub, sub, sub, st.booleans()).map(
            lambda t: Between(t[0], t[1], t[2], negated=t[3])
        ),
        st.tuples(sub).map(lambda t: UnaryOp("NOT", t[0])),
        st.tuples(st.sampled_from(["UPPER", "LOWER", "LENGTH"]), leaf_exprs()).map(
            lambda t: FuncCall(t[0], [t[1]])
        ),
    )


def eval_or_error(expr: Expr, scope: Scope):
    try:
        return ("ok", expr.eval(scope))
    except Exception as exc:  # noqa: BLE001 - compared structurally
        return ("error", type(exc).__name__)


class TestSqlRoundTrip:
    @given(exprs(), st.integers(-5, 5), st.integers(-5, 5), literal_values)
    @settings(max_examples=150, deadline=None)
    def test_rendered_sql_reparses_to_equivalent_expr(self, expr, a, b, c):
        text = expr.sql()
        stmt = parse_sql(f"SELECT {text}")
        reparsed = stmt.items[0].expr
        scope = Scope()
        scope.bind("t", "a", a)
        scope.bind("t", "b", b)
        scope.bind("t", "c", c)
        assert eval_or_error(expr, scope) == eval_or_error(reparsed, scope)

    @given(exprs())
    @settings(max_examples=100, deadline=None)
    def test_rendering_is_stable(self, expr):
        text = expr.sql()
        stmt = parse_sql(f"SELECT {text}")
        assert stmt.items[0].expr.sql() == text

    @given(st.text(alphabet="ab'c%_", max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_string_literals_roundtrip_with_escaping(self, value):
        text = Literal(value).sql()
        stmt = parse_sql(f"SELECT {text}")
        assert stmt.items[0].expr.value == value
