"""Property test: no 2PC kill point can tear a global commit.

Hypothesis drives a randomized cross-store workload over two paged
stores, then kills the coordinator at a randomized phase boundary of the
final commit — before/after each branch's prepare, around the decision
log, between the two phase-2 branch commits, and before the end record.
After restart + recovery the invariant is checked at *every* AS-OF
point the aligned log can name: a global transaction's rows are visible
on both stores or on neither, never on one.
"""

import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import Database
from repro.db.multistore import MultiStoreCoordinator
from repro.errors import CrashPoint
from repro.faults import FaultInjector

#: (fault point, 1-based hit) for every boundary of a two-branch commit.
BOUNDARIES = [
    ("2pc.prepare", 1),
    ("2pc.prepare", 2),
    ("2pc.decision", 1),
    ("2pc.branch_commit", 1),
    ("2pc.branch_commit", 2),
    ("2pc.end", 1),
]

#: Kill points at which the commit decision is already durable — the
#: transaction must survive recovery; at the others it must vanish.
DECIDED = {("2pc.branch_commit", 1), ("2pc.branch_commit", 2), ("2pc.end", 1)}


def cross_store_insert(coordinator: MultiStoreCoordinator, key: int):
    gtxn = coordinator.begin()
    gtxn.execute("a", "INSERT INTO t VALUES (?, ?)", (key, f"a{key}"))
    gtxn.execute("b", "INSERT INTO t VALUES (?, ?)", (key, f"b{key}"))
    return gtxn


def keys_as_of(database: Database, csn: int) -> set:
    return {
        row[0]
        for row in database.execute(f"SELECT k FROM t AS OF {csn}").rows
    }


class TestNoTornGlobalCommit:
    @given(
        n_before=st.integers(0, 4),
        kill=st.sampled_from(BOUNDARIES),
        injector_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_as_of_sees_whole_transactions(
        self, n_before, kill, injector_seed
    ):
        point, hit = kill
        base = tempfile.mkdtemp(prefix="repro-2pc-prop-")
        try:
            dirs = {n: os.path.join(base, n) for n in ("a", "b")}
            log_path = os.path.join(base, "decisions.jsonl")
            stores = {
                n: Database(name=n, storage="paged", data_dir=d)
                for n, d in dirs.items()
            }
            coordinator = MultiStoreCoordinator(stores, decision_log=log_path)
            for store in stores.values():
                store.execute("CREATE TABLE t (k INTEGER, v TEXT)")
            for key in range(n_before):
                cross_store_insert(coordinator, key).commit()

            injector = FaultInjector(seed=injector_seed)
            injector.fail(point, at=hit)
            doomed = cross_store_insert(coordinator, n_before)
            with injector.installed():
                with pytest.raises(CrashPoint):
                    doomed.commit()
            for store in stores.values():
                store.wal._pending.clear()
                store.wal._file.close()
                store._page_manager.close_all()
            coordinator.decision_log.close()

            reopened = {
                n: Database(name=n, storage="paged", data_dir=d)
                for n, d in dirs.items()
            }
            recovered = MultiStoreCoordinator(reopened, decision_log=log_path)
            recovered.recover_in_doubt()

            survives = n_before + 1 if kill in DECIDED else n_before
            expected = set(range(survives))
            assert keys_as_of(reopened["a"], reopened["a"].last_csn) == expected
            assert keys_as_of(reopened["b"], reopened["b"].last_csn) == expected

            # The core invariant, at every aligned point in history: any
            # AS-OF translation the coordinator can hand out shows each
            # global transaction on both stores or on neither.
            for commit in recovered.aligned_log:
                local = recovered.local_csns_at(commit.global_csn)
                seen_a = keys_as_of(reopened["a"], local["a"])
                seen_b = keys_as_of(reopened["b"], local["b"])
                assert seen_a == seen_b, (
                    f"torn view at global csn {commit.global_csn} after "
                    f"kill at {point} hit {hit}: a={seen_a} b={seen_b}"
                )
            for database in reopened.values():
                database.close()
            recovered.decision_log.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)
