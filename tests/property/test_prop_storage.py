"""Property tests: MVCC storage against a reference model.

The model keeps one full dict snapshot per CSN; the store must agree with
every historical snapshot, which is the invariant time travel (and hence
bug replay) rests on.
"""

from hypothesis import given, settings, strategies as st

from repro.db.schema import Column, TableSchema
from repro.db.storage import TableStore
from repro.db.types import ColumnType


def make_store() -> TableStore:
    return TableStore(
        TableSchema("t", [Column("v", ColumnType.INTEGER)])
    )


#: An operation program: each entry is ('insert', value) |
#: ('update', target_index, value) | ('delete', target_index).
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 100)),
        st.tuples(st.just("update"), st.integers(0, 30), st.integers(0, 100)),
        st.tuples(st.just("delete"), st.integers(0, 30)),
    ),
    max_size=40,
)


def apply_program(ops):
    """Run a program; returns (store, snapshots-by-csn from the model)."""
    store = make_store()
    model: dict[int, tuple] = {}
    snapshots = {0: {}}
    csn = 0
    for op in ops:
        csn += 1
        live = sorted(model)
        if op[0] == "insert":
            rid = store.apply_insert((op[1],), csn)
            model[rid] = (op[1],)
        elif op[0] == "update" and live:
            rid = live[op[1] % len(live)]
            store.apply_update(rid, (op[2],), csn)
            model[rid] = (op[2],)
        elif op[0] == "delete" and live:
            rid = live[op[1] % len(live)]
            store.apply_delete(rid, csn)
            del model[rid]
        snapshots[csn] = dict(model)
    return store, snapshots


class TestMvccModel:
    @given(ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_every_historical_snapshot_matches_model(self, ops):
        store, snapshots = apply_program(ops)
        for csn, expected in snapshots.items():
            actual = dict(store.scan(csn))
            assert actual == expected, f"snapshot at csn {csn} diverged"

    @given(ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_latest_scan_equals_final_snapshot(self, ops):
        store, snapshots = apply_program(ops)
        final_csn = max(snapshots)
        assert dict(store.scan(None)) == snapshots[final_csn]

    @given(ops_strategy, st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_vacuum_preserves_states_after_horizon(self, ops, horizon_pick):
        store, snapshots = apply_program(ops)
        final_csn = max(snapshots)
        horizon = min(horizon_pick, final_csn)
        store.vacuum(keep_after_csn=horizon)
        for csn in range(horizon, final_csn + 1):
            assert dict(store.scan(csn)) == snapshots[csn]

    @given(ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_last_change_csn_is_max_visible_boundary(self, ops):
        store, snapshots = apply_program(ops)
        final_csn = max(snapshots)
        for rid in list(store._versions):
            changed = store.last_change_csn(rid)
            assert changed is not None
            assert 1 <= changed <= final_csn
            # Nothing about this row differs between `changed` and the end.
            for csn in range(changed, final_csn + 1):
                assert store.get(rid, csn) == store.get(rid, changed)
