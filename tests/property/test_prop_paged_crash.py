"""Property test: paged-storage crash recovery against an in-memory twin.

The same randomized workload drives a paged database (tiny buffer pool,
group-committed WAL) and an always-in-memory twin. The paged database is
then killed at an arbitrary point — pending WAL groups discarded, dirty
pool frames lost, optionally a torn byte tail appended to the log — and
reopened. The recovered state must be byte-identical to the twin as of
the recovered commit position, and that position must cover everything
the WAL made durable.
"""

import os
import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.db import Database

#: ('insert', key, payload) | ('update', pick, payload) | ('delete', pick)
#: | ('checkpoint',) — keys/picks resolve against the live-key list so
#: every generated program is valid.
ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"), st.integers(0, 999), st.integers(0, 9)
        ),
        st.tuples(
            st.just("update"), st.integers(0, 99), st.integers(0, 9)
        ),
        st.tuples(st.just("delete"), st.integers(0, 99)),
        st.tuples(st.just("checkpoint")),
    ),
    min_size=1,
    max_size=60,
)


def run_workload(paged: Database, twin: Database, ops) -> None:
    live: list[int] = []
    for op in ops:
        if op[0] == "checkpoint":
            paged.checkpoint()
            continue
        if op[0] == "insert":
            key = op[1]
            while key in live:
                key += 1000
            sql, params = "INSERT INTO t VALUES (?, ?)", (key, f"p{op[2]}" * 6)
            live.append(key)
        elif op[0] == "update":
            if not live:
                continue
            key = live[op[1] % len(live)]
            sql, params = "UPDATE t SET v = ? WHERE k = ?", (f"u{op[2]}", key)
        else:
            if not live:
                continue
            key = live.pop(op[1] % len(live))
            sql, params = "DELETE FROM t WHERE k = ?", (key,)
        # Identical statements, identical autocommits: both databases
        # consume CSNs in lockstep (checkpoints consume none).
        paged.execute(sql, params)
        twin.execute(sql, params)


def crash(paged: Database, torn_bytes: bytes) -> None:
    """Kill the process model: pending WAL groups were never written and
    are lost; dirty (unflushed) pool frames are lost; whatever page
    write-backs already happened stay on disk. ``torn_bytes`` simulates
    dying mid-append of the next record."""
    wal_path = paged.wal.path
    paged.wal._pending.clear()
    paged.wal._file.close()
    paged._page_manager.close_all()
    if torn_bytes:
        with open(wal_path, "ab") as handle:
            handle.write(torn_bytes)


class TestPagedCrashRecovery:
    @given(
        ops=ops_strategy,
        pool_pages=st.integers(2, 16),
        group_size=st.integers(1, 8),
        torn=st.sampled_from(
            [b"", b'{"csn', b'{"csn": 99999, "txn_id": 1}\n', b"\x00\xff"]
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_recovered_state_matches_twin_at_recovered_csn(
        self, ops, pool_pages, group_size, torn
    ):
        data_dir = tempfile.mkdtemp(prefix="repro-crash-prop-")
        try:
            paged = Database(
                storage="paged",
                data_dir=data_dir,
                buffer_pool_pages=pool_pages,
                page_size=512,
                wal_group_size=group_size,
            )
            twin = Database(storage="memory")
            paged.execute("CREATE TABLE t (k INTEGER, v TEXT)")
            twin.execute("CREATE TABLE t (k INTEGER, v TEXT)")
            run_workload(paged, twin, ops)
            durable_floor = max(
                store.flushed_csn for store in paged._stores.values()
            )
            crash(paged, torn)

            recovered = Database(storage="paged", data_dir=data_dir)
            assert recovered.recovery_stats["mode"] == "paged"
            recovered_csn = recovered.last_csn
            # Nothing a checkpoint made durable may be lost, and recovery
            # cannot run ahead of the twin's full history.
            assert durable_floor <= recovered_csn <= twin.last_csn

            actual = recovered.execute(
                "SELECT k, v FROM t ORDER BY k, v"
            ).rows
            if recovered_csn == twin.last_csn:
                expected = twin.execute(
                    "SELECT k, v FROM t ORDER BY k, v"
                ).rows
            else:
                expected = twin.execute(
                    f"SELECT k, v FROM t AS OF {recovered_csn} ORDER BY k, v"
                ).rows
            assert actual == expected

            # The database stays fully usable after recovery.
            recovered.execute("INSERT INTO t VALUES (?, ?)", (-1, "post"))
            assert (
                recovered.execute(
                    "SELECT v FROM t WHERE k = -1"
                ).scalar()
                == "post"
            )
            recovered.close()
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)

    @given(ops=ops_strategy)
    @settings(max_examples=15, deadline=None)
    def test_clean_close_loses_nothing(self, ops):
        """Control property: with a clean close the recovered database is
        the twin, exactly, with zero tail replay."""
        data_dir = tempfile.mkdtemp(prefix="repro-clean-prop-")
        try:
            paged = Database(
                storage="paged",
                data_dir=data_dir,
                buffer_pool_pages=4,
                page_size=512,
                wal_group_size=4,
            )
            twin = Database(storage="memory")
            paged.execute("CREATE TABLE t (k INTEGER, v TEXT)")
            twin.execute("CREATE TABLE t (k INTEGER, v TEXT)")
            run_workload(paged, twin, ops)
            paged.close()

            recovered = Database(storage="paged", data_dir=data_dir)
            assert recovered.recovery_stats["changes_reconciled"] == 0
            assert recovered.last_csn == twin.last_csn
            query = "SELECT k, v FROM t ORDER BY k, v"
            assert recovered.execute(query).rows == twin.execute(query).rows
            recovered.close()
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
