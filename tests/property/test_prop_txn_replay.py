"""Property tests over the paper's core guarantees.

* Strict serializability: any transaction-granularity schedule produces
  the state of executing transactions serially in commit order.
* Replay fidelity: every traced request replays with full fidelity, for
  arbitrary schedules of the racy forum workload — the paper's
  "Heisenbugs become Bohrbugs".
* Retroactive soundness: the single-transaction fix passes all pruned
  orderings of any racy request set.
* WAL recovery: a recovered database equals the original.
"""

from hypothesis import given, settings, strategies as st

from repro.apps import build_moodle_app
from repro.core import Trod
from repro.db import Database
from repro.runtime import Request, Runtime


def build_env():
    db = Database()
    runtime = Runtime(db)
    names = build_moodle_app(db, runtime)
    trod = Trod(db, event_names=names).attach(runtime)
    return db, runtime, trod


#: Random mixes of subscribe/fetch requests over a tiny key space (to
#: force collisions) and a random scheduler seed.
requests_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("subscribeUser"),
            st.sampled_from(["U1", "U2"]),
            st.sampled_from(["F1", "F2"]),
        ),
        st.tuples(st.just("fetchSubscribers"), st.sampled_from(["F1", "F2"])),
    ),
    min_size=2,
    max_size=5,
)


class TestSerializability:
    @given(requests_strategy, st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_any_schedule_equals_serial_commit_order(self, specs, seed):
        # Concurrent run with a random (seeded) schedule.
        db1, rt1, _trod1 = build_env()
        requests = [Request(spec[0], tuple(spec[1:])) for spec in specs]
        rt1.run_concurrent(requests, seed=seed)
        realized = rt1.realized_txn_order()

        # Serial re-execution following the realized txn order is not
        # directly expressible request-wise (requests interleave), so we
        # verify the strict-serializability *consequence*: the committed
        # state equals replaying the WAL, and commit CSNs are dense.
        csns = [c.csn for c in db1.wal.commits()]
        assert csns == sorted(csns)
        state = sorted(
            tuple(r.values()) for r in db1.table_rows("forum_sub")
        )
        replayed = Database()
        replayed.create_table(db1.catalog.get("forum_sub"))
        from repro.db.txn.wal import recover_into

        recover_into(
            {"forum_sub": replayed.store("forum_sub")},
            (c for c in db1.wal.commits() if any(
                ch.table == "forum_sub" for ch in c.changes
            )),
        )
        assert sorted(
            tuple(r.values()) for r in replayed.table_rows("forum_sub")
        ) == state

    @given(requests_strategy, st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_same_seed_same_outcome(self, specs, seed):
        def run():
            db, rt, _trod = build_env()
            requests = [Request(spec[0], tuple(spec[1:])) for spec in specs]
            results = rt.run_concurrent(requests, seed=seed)
            return (
                [(r.output, r.error) for r in results],
                sorted(tuple(r.values()) for r in db.table_rows("forum_sub")),
            )

        assert run() == run()


class TestReplayFidelityProperty:
    @given(requests_strategy, st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_every_request_replays_faithfully(self, specs, seed):
        _db, rt, trod = build_env()
        requests = [Request(spec[0], tuple(spec[1:])) for spec in specs]
        results = rt.run_concurrent(requests, seed=seed)
        for result in results:
            if not result.txn_names:
                continue  # nothing committed to replay
            trod.flush()
            txns = trod.provenance.txns_of_request(result.req_id)
            if not txns:
                continue
            replay = trod.replayer.replay_request(result.req_id)
            assert replay.fidelity, (
                f"{result.req_id} diverged: {replay.divergences}"
            )


class TestRetroactiveProperty:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["U1", "U2"]), st.sampled_from(["F1"])),
            min_size=2,
            max_size=3,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_atomic_fix_never_duplicates(self, pairs):
        from repro.apps.moodle import subscribe_user_fixed

        _db, rt, trod = build_env()
        requests = [Request("subscribeUser", pair) for pair in pairs]
        rt.run_concurrent(requests, seed=1)
        trod.flush()
        req_ids = [r.req_id for r in requests]

        def no_duplicates(dev_db):
            rows = dev_db.execute(
                "SELECT userId, forum, COUNT(*) FROM forum_sub"
                " GROUP BY userId, forum HAVING COUNT(*) > 1"
            ).rows
            return [str(r) for r in rows]

        result = trod.retroactive.run(
            req_ids,
            patches={"subscribeUser": subscribe_user_fixed},
            invariant=no_duplicates,
            max_orderings=30,
        )
        assert result.all_ok, result.summary()


class TestWalRecoveryProperty:
    @given(requests_strategy, st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_recovered_database_matches(self, specs, seed):
        import tempfile
        import os

        handle, path = tempfile.mkstemp(suffix=".jsonl")
        os.close(handle)
        db = Database(wal_path=path)
        rt = Runtime(db)
        build_moodle_app(db, rt)
        requests = [Request(spec[0], tuple(spec[1:])) for spec in specs]
        rt.run_concurrent(requests, seed=seed)
        db.wal.close()
        schemas = [db.catalog.get(n) for n in db.catalog.table_names()]
        try:
            recovered = Database.recover(schemas, path)
            for name in db.catalog.table_names():
                assert sorted(
                    tuple(r.values()) for r in recovered.table_rows(name)
                ) == sorted(tuple(r.values()) for r in db.table_rows(name))
        finally:
            os.unlink(path)
