"""Property tests: SQL execution against a Python reference model."""

from hypothesis import given, settings, strategies as st

from repro.db import Database
from repro.db.types import SortKey

value_strategy = st.one_of(
    st.none(), st.integers(-50, 50), st.text(alphabet="abc", max_size=3)
)
rows_strategy = st.lists(
    st.tuples(st.integers(-20, 20), st.text(alphabet="xyz", min_size=1, max_size=2)),
    max_size=25,
)


def load(rows):
    db = Database()
    db.execute("CREATE TABLE t (n INTEGER, s TEXT)")
    for n, s in rows:
        db.execute("INSERT INTO t VALUES (?, ?)", (n, s))
    return db


class TestSelectModel:
    @given(rows_strategy, st.integers(-20, 20))
    @settings(max_examples=50, deadline=None)
    def test_where_filter_matches_python(self, rows, threshold):
        db = load(rows)
        rs = db.execute("SELECT n, s FROM t WHERE n > ?", (threshold,))
        expected = sorted(
            [(n, s) for n, s in rows if n > threshold], key=lambda r: (r[0], r[1])
        )
        assert sorted(rs.rows, key=lambda r: (r[0], r[1])) == expected

    @given(rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_order_by_matches_python_sort(self, rows):
        db = load(rows)
        rs = db.execute("SELECT n FROM t ORDER BY n ASC, s DESC")
        expected = [
            n
            for n, _s in sorted(
                rows, key=lambda r: (SortKey(r[0]), SortKey(r[1])), reverse=False
            )
        ]
        # Python can't mix per-key directions in one key fn; emulate by
        # sorting s descending first (stable), then n ascending.
        by_s_desc = sorted(rows, key=lambda r: SortKey(r[1]), reverse=True)
        expected = [n for n, _s in sorted(by_s_desc, key=lambda r: SortKey(r[0]))]
        assert rs.column("n") == expected

    @given(rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_group_by_counts_match_python(self, rows):
        db = load(rows)
        rs = db.execute("SELECT s, COUNT(*), SUM(n) FROM t GROUP BY s")
        expected = {}
        for n, s in rows:
            count, total = expected.get(s, (0, 0))
            expected[s] = (count + 1, total + n)
        actual = {s: (c, t) for s, c, t in rs.rows}
        assert actual == expected

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_distinct_matches_set(self, rows):
        db = load(rows)
        rs = db.execute("SELECT DISTINCT s FROM t")
        assert sorted(rs.column("s")) == sorted({s for _n, s in rows})

    @given(rows_strategy, st.integers(0, 30), st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_limit_offset_window(self, rows, limit, offset):
        db = load(rows)
        rs = db.execute(
            "SELECT n FROM t ORDER BY n, s LIMIT ? OFFSET ?", (limit, offset)
        )
        all_rows = db.execute("SELECT n FROM t ORDER BY n, s").column("n")
        assert rs.column("n") == all_rows[offset : offset + limit]

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_self_join_on_equality_matches_python(self, rows):
        db = load(rows)
        rs = db.execute(
            "SELECT a.n, b.n FROM t a JOIN t b ON a.s = b.s"
        )
        expected = sorted(
            (n1, n2)
            for n1, s1 in rows
            for n2, s2 in rows
            if s1 == s2
        )
        assert sorted(rs.rows) == expected


class TestDmlModel:
    @given(rows_strategy, st.integers(-20, 20), st.integers(-50, 50))
    @settings(max_examples=40, deadline=None)
    def test_update_matches_python(self, rows, threshold, new_value):
        db = load(rows)
        count = db.execute(
            "UPDATE t SET n = ? WHERE n < ?", (new_value, threshold)
        ).rowcount
        expected = [
            (new_value if n < threshold else n, s) for n, s in rows
        ]
        assert count == sum(1 for n, _s in rows if n < threshold)
        assert sorted(db.execute("SELECT n, s FROM t").rows) == sorted(expected)

    @given(rows_strategy, st.integers(-20, 20))
    @settings(max_examples=40, deadline=None)
    def test_delete_matches_python(self, rows, threshold):
        db = load(rows)
        count = db.execute("DELETE FROM t WHERE n >= ?", (threshold,)).rowcount
        expected = [(n, s) for n, s in rows if n < threshold]
        assert count == len(rows) - len(expected)
        assert sorted(db.execute("SELECT n, s FROM t").rows) == sorted(expected)


class TestExpressionCompilerConsistency:
    """The compiled path (planner) must agree with the interpreter (expr)."""

    @given(
        st.integers(-5, 5),
        st.integers(-5, 5),
        st.sampled_from(["+", "-", "*", "=", "<", ">=", "<>"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_binary_ops_agree(self, a, b, op):
        from repro.db.expr import BinaryOp, Literal, Scope
        from repro.db.sql.planner import Layout, compile_expr

        expr = BinaryOp(op, Literal(a), Literal(b))
        interpreted = expr.eval(Scope())
        compiled = compile_expr(expr, Layout())((), ())
        assert interpreted == compiled

    @given(st.lists(st.one_of(st.none(), st.booleans()), min_size=2, max_size=2))
    @settings(max_examples=30, deadline=None)
    def test_three_valued_logic_agrees(self, pair):
        from repro.db.expr import BinaryOp, Literal, Scope
        from repro.db.sql.planner import Layout, compile_expr

        a, b = pair
        for op in ("AND", "OR"):
            expr = BinaryOp(op, Literal(a), Literal(b))
            assert expr.eval(Scope()) is compile_expr(expr, Layout())((), ())
