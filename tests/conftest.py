"""Shared fixtures: pre-built app environments with TROD attached."""

from __future__ import annotations

import pytest

from repro.apps import (
    build_ecommerce_app,
    build_mediawiki_app,
    build_moodle_app,
    build_profiles_app,
)
from repro.core import Trod
from repro.db import Database
from repro.runtime import Request, Runtime
from repro.workload.generators import ForumWorkload


@pytest.fixture
def db() -> Database:
    return Database()


@pytest.fixture
def moodle_env():
    """(db, runtime, trod) with the Moodle app built and TROD attached."""
    database = Database()
    runtime = Runtime(database)
    event_names = build_moodle_app(database, runtime)
    trod = Trod(database, event_names=event_names).attach(runtime)
    return database, runtime, trod


@pytest.fixture
def racy_moodle(moodle_env):
    """Moodle env after the MDL-59854 race: R1/R2 duplicates, R3 error."""
    database, runtime, trod = moodle_env
    runtime.run_concurrent(
        ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
    )
    runtime.submit("fetchSubscribers", "F2")
    return database, runtime, trod


@pytest.fixture
def mediawiki_env():
    database = Database()
    runtime = Runtime(database)
    event_names = build_mediawiki_app(database, runtime)
    trod = Trod(database, event_names=event_names).attach(runtime)
    return database, runtime, trod


@pytest.fixture
def ecommerce_env():
    database = Database()
    runtime = Runtime(database)
    event_names = build_ecommerce_app(database, runtime)
    trod = Trod(database, event_names=event_names).attach(runtime)
    return database, runtime, trod


@pytest.fixture
def profiles_env():
    database = Database()
    runtime = Runtime(database)
    event_names = build_profiles_app(database, runtime)
    trod = Trod(database, event_names=event_names).attach(runtime)
    return database, runtime, trod


def make_request(handler: str, *args, **kwargs) -> Request:
    return Request(handler, args, kwargs)
