"""Soak test: all four case-study apps on one database, one TROD.

Runs a mixed deterministic workload across every app, then checks
whole-trace integrity invariants — the properties that make the
provenance database trustworthy as a debugging source:

* every committed write event joins to exactly one Executions row;
* write-event counts equal CDC record counts (nothing lost or invented);
* every traced request's arguments re-parse (retroactive-ready);
* sampled requests replay with full fidelity;
* reconstruction from provenance agrees with the live database.
"""

import pytest

from repro.apps import (
    build_ecommerce_app,
    build_mediawiki_app,
    build_moodle_app,
    build_profiles_app,
)
from repro.core import Trod
from repro.db import Database
from repro.runtime import Request, Runtime
from repro.workload.generators import ForumWorkload, MediaWikiWorkload


@pytest.fixture(scope="module")
def soaked():
    db = Database()
    runtime = Runtime(db)
    names = {}
    names.update(build_moodle_app(db, runtime))
    names.update(build_mediawiki_app(db, runtime))
    names.update(build_ecommerce_app(db, runtime))
    names.update(build_profiles_app(db, runtime))
    trod = Trod(db, event_names=names).attach(runtime)

    # Mixed deterministic workload across all apps.
    runtime.submit("createPage", "P1", "Soak", "hello")
    runtime.submit("registerUser", "U1", "u1@x.com", "4111", auth_user="U1")
    runtime.submit("restock", "SKU1", 100)
    runtime.submit("createProfile", "alice", "a@x.com", auth_user="alice")
    forum = ForumWorkload(n_users=10, n_forums=3, seed=1)
    for request in forum.requests(25, fetch_ratio=0.2):
        runtime.execute_request(request)
    runtime.run_concurrent(
        ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
    )
    runtime.run_concurrent(
        MediaWikiWorkload.racy_edit_pair(),
        schedule=MediaWikiWorkload.RACY_SCHEDULE,
    )
    runtime.submit("addToCart", "C1", "U1", "SKU1", 2, 3.5, auth_user="U1")
    runtime.submit("checkout", "C1", "U1", auth_user="U1")
    runtime.submit("updateProfile", "alice", "soaked", auth_user="alice")
    trod.flush()
    return db, runtime, trod


class TestTraceIntegrity:
    def test_every_write_event_joins_to_a_committed_txn(self, soaked):
        _db, _runtime, trod = soaked
        for table in trod.provenance.traced_tables():
            event_table = trod.provenance.event_table_of(table)
            orphans = trod.query(
                f"SELECT COUNT(*) FROM {event_table} AS F"
                " LEFT JOIN Executions AS E ON F.TxnId = E.TxnId"
                " WHERE F.Type IN ('Insert', 'Update', 'Delete')"
                " AND E.TxnId IS NULL"
            ).scalar()
            assert orphans == 0, f"orphan write events in {event_table}"

    def test_write_events_match_cdc_exactly(self, soaked):
        db, _runtime, trod = soaked
        cdc_count = len(db.cdc.history())
        event_count = 0
        for table in trod.provenance.traced_tables():
            event_table = trod.provenance.event_table_of(table)
            event_count += trod.query(
                f"SELECT COUNT(*) FROM {event_table}"
                " WHERE Type IN ('Insert', 'Update', 'Delete')"
            ).scalar()
        assert event_count == cdc_count

    def test_committed_txn_csns_are_unique_and_ordered(self, soaked):
        _db, _runtime, trod = soaked
        csns = trod.query(
            "SELECT Csn FROM Executions WHERE Status = 'Committed'"
            " ORDER BY Csn"
        ).column("Csn")
        assert len(csns) == len(set(csns))
        assert csns == sorted(csns)

    def test_every_request_has_reexecutable_args(self, soaked):
        _db, _runtime, trod = soaked
        req_ids = trod.query("SELECT ReqId FROM Requests").column("ReqId")
        assert len(req_ids) >= 30
        for req_id in req_ids:
            handler, args, kwargs, _auth = trod.provenance.request_args(req_id)
            assert isinstance(handler, str) and handler
            assert isinstance(args, tuple)
            assert isinstance(kwargs, dict)

    def test_reconstruction_agrees_with_live_database(self, soaked):
        db, _runtime, trod = soaked
        for table in trod.provenance.traced_tables():
            live = dict(db.store(table).scan(None))
            rebuilt = dict(
                trod.provenance.reconstruct_rows(table, upto_csn=1 << 60)
            )
            assert rebuilt == live, f"reconstruction mismatch for {table}"

    def test_sampled_requests_replay_faithfully(self, soaked):
        _db, _runtime, trod = soaked
        rows = trod.query(
            "SELECT DISTINCT ReqId FROM Executions"
            " WHERE Status = 'Committed' AND ReqId IS NOT NULL"
        ).column("ReqId")
        sample = rows[:: max(1, len(rows) // 6)][:6]
        assert sample
        for req_id in sample:
            result = trod.replayer.replay_request(req_id)
            assert result.fidelity, (req_id, result.divergences)

    def test_overall_scale(self, soaked):
        _db, _runtime, trod = soaked
        assert trod.provenance.event_count > 150
        stats = trod.overhead_stats()
        assert stats["requests_traced"] >= 30
