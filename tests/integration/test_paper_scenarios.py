"""End-to-end reproductions of the paper's walkthroughs.

Each test corresponds to a row of DESIGN.md's experiment index and checks
the *shape* the paper reports (who appears in which table, which query
finds what, which orderings pass).
"""

import pytest

from repro.apps.moodle import subscribe_user_fixed
from repro.core import report


class TestTables1And2:
    """E1/E2: the trace of §2's scenario matches the paper's tables."""

    def test_table1_rows(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        rows = trod.query(
            "SELECT TxnId, HandlerName, ReqId, Metadata FROM Executions"
            " WHERE Status = 'Committed' ORDER BY Csn"
        ).rows
        # Paper Table 1: check, check, insert, insert, fetch — with the
        # two requests' transactions interleaved exactly as printed.
        assert [(r[1], r[2], r[3]) for r in rows] == [
            ("subscribeUser", "R1", "func:isSubscribed"),
            ("subscribeUser", "R2", "func:isSubscribed"),
            ("subscribeUser", "R2", "func:DB.insert"),
            ("subscribeUser", "R1", "func:DB.insert"),
            ("fetchSubscribers", "R3", "func:DB.executeQuery"),
        ]

    def test_table2_rows(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        rows = trod.query(
            "SELECT Type, UserId, Forum FROM ForumEvents"
            " WHERE Type != 'Snapshot' ORDER BY Seq"
        ).rows
        assert rows == [
            ("Read", None, None),      # TXN1: check found nothing
            ("Read", None, None),      # TXN2: check found nothing
            ("Insert", "U1", "F2"),    # TXN3: R2's insert
            ("Insert", "U1", "F2"),    # TXN4: R1's duplicate insert
            ("Read", "U1", "F2"),      # TXN5 (paper's TXN9): fetch sees
            ("Read", "U1", "F2"),      # both duplicates
        ]


class TestSection33Query:
    """E3: the paper's query returns the two racing subscribeUser runs."""

    def test_query_result_shape(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        rs = trod.query(
            "SELECT Timestamp, ReqId, HandlerName\n"
            "FROM Executions as E, ForumEvents as F\n"
            "ON E.TxnId = F.TxnId\n"
            "WHERE F.UserId = 'U1' AND F.Forum = 'F2'\n"
            "AND F.Type = 'Insert'\n"
            "ORDER BY Timestamp ASC;"
        )
        rows = rs.as_dicts()
        assert len(rows) == 2
        # "two different request IDs with the same handler name and
        # adjacent timestamps"
        assert rows[0]["ReqId"] != rows[1]["ReqId"]
        assert rows[0]["HandlerName"] == rows[1]["HandlerName"] == "subscribeUser"
        assert rows[0]["Timestamp"] < rows[1]["Timestamp"]


class TestFigure3:
    """E4/E5/E6: original history, faithful replay, retroactive fix."""

    def test_top_history(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        diagram = report.history_diagram(trod, req_ids=["R1", "R2", "R3"])
        lines = diagram.splitlines()
        assert lines[0].startswith("R1 |")
        # R1's lane: first and fourth slots; R2: second and third.
        assert "[isSubscribed]" in lines[0] and "[DB.insert]" in lines[0]
        assert "[DB.executeQuery]" in lines[2]

    def test_replay_walkthrough(self, racy_moodle):
        """§3.5's exact walkthrough for replaying R1."""
        _db, _runtime, trod = racy_moodle
        observed = []

        def gdb_breakpoint(info):
            observed.append(
                (
                    info.label,
                    info.dev_db.execute(
                        "SELECT COUNT(*) FROM forum_sub"
                    ).scalar(),
                    info.concurrent_writers(),
                )
            )

        result = trod.replayer.replay_request("R1", breakpoint_cb=gdb_breakpoint)
        assert result.fidelity
        # Step 1: snapshot before R1 — empty table, nothing injected.
        assert observed[0] == ("isSubscribed", 0, [])
        # Step 2: TROD injected R2's (U1, F2) insert before R1's insert.
        assert observed[1] == ("DB.insert", 1, ["R2"])
        # Replay ends with the duplicate reproduced in the dev database.
        assert len(result.dev_db.table_rows("forum_sub")) == 2

    def test_bottom_retroactive(self, racy_moodle):
        """§3.6: both orderings of the patched requests, then R3'."""
        _db, _runtime, trod = racy_moodle
        result = trod.retroactive.run(
            ["R1", "R2"],
            patches={"subscribeUser": subscribe_user_fixed},
            followups=["R3"],
        )
        assert result.explored == 2
        assert result.all_ok
        for outcome in result.outcomes:
            # One subscription survives; fetchSubscribers returns [U1]
            # with no error — the paper's closing observation.
            assert outcome.final_state["forum_sub"] == [("U1", "F2")]
            assert outcome.followups[0].output_repr == "['U1']"


class TestSection37Numbers:
    """E7/E8 sanity at test scale (full sweeps live in benchmarks/)."""

    def test_tracing_overhead_is_bounded(self, moodle_env):
        _db, runtime, trod = moodle_env
        for i in range(50):
            runtime.submit("subscribeUser", f"U{i}", "F1")
        stats = trod.overhead_stats()
        # The paper reports <100µs/request; allow headroom for slow CI.
        assert stats["tracing_overhead_us_per_request"] < 1000

    def test_declarative_query_latency_at_small_scale(self, racy_moodle):
        import time

        _db, _runtime, trod = racy_moodle
        start = time.perf_counter()
        trod.query(
            "SELECT COUNT(*) FROM Executions as E, ForumEvents as F"
            " ON E.TxnId = F.TxnId WHERE F.Type = 'Insert'"
        )
        assert time.perf_counter() - start < 1.0


class TestDeterministicReproduction:
    """The reproduction meta-property: everything above is stable."""

    def test_trace_is_identical_across_runs(self):
        from repro.apps import build_moodle_app
        from repro.core import Trod
        from repro.db import Database
        from repro.runtime import Runtime
        from repro.workload.generators import ForumWorkload

        def run():
            db = Database()
            rt = Runtime(db)
            names = build_moodle_app(db, rt)
            trod = Trod(db, event_names=names).attach(rt)
            rt.run_concurrent(
                ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
            )
            rt.submit("fetchSubscribers", "F2")
            return report.render_table1(trod) + report.render_table2(
                trod, "forum_sub"
            )

        assert run() == run()
