"""The acceptance bar for the unified API: one statement stream, three
engines, byte-identical results.

A randomized (but seeded) mix of inserts, updates, deletes, point/range
reads, aggregates, and ``AS OF`` probes drives the *same* Connection code
over a single ``Database``, a hash-sharded cluster, and a replica-routed
cluster — the results (including historical reads at per-engine CSN
bookmarks) must match statement for statement.
"""

import pytest

from repro.db import (
    Database,
    ReplicatedDatabase,
    ShardedDatabase,
    connect,
)
from repro.workload.generators import ConnectionWorkload

N_STATEMENTS = 150


def make_engines():
    sharded = ShardedDatabase(3, shard_keys={"ledger": "acct"})
    return {
        "single": Database(),
        "sharded": sharded,
        "replicated": ReplicatedDatabase(n_replicas=2, mode="async"),
    }


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_same_stream_same_results_on_all_engines(seed):
    fingerprints = {}
    for name, engine in make_engines().items():
        workload = ConnectionWorkload(seed=seed)
        conn = connect(engine)
        workload.seed(conn)
        fingerprints[name] = workload.run(
            conn, N_STATEMENTS, catch_up_every=20
        )
    single = fingerprints.pop("single")
    assert len(single) == N_STATEMENTS
    assert sum(1 for kind, _ in single if kind == "asof") > 0
    for name, prints in fingerprints.items():
        for i, (expected, got) in enumerate(zip(single, prints)):
            assert expected == got, f"{name} diverged at statement {i}"


def test_columns_and_kinds_agree_across_engines():
    """Output column names (not just rows) must match across engines."""
    sql = (
        "SELECT region, COUNT(*) AS n, SUM(balance) FROM ledger "
        "GROUP BY region ORDER BY region"
    )
    results = {}
    for name, engine in make_engines().items():
        workload = ConnectionWorkload(seed=3)
        conn = connect(engine)
        workload.seed(conn)
        results[name] = conn.execute(sql)
    single = results.pop("single")
    for name, result in results.items():
        assert result.columns == single.columns, name
        assert result.rows == single.rows, name


def test_session_guarantees_hold_on_every_engine():
    """Read-your-writes through the connection, even under async lag."""
    for name, engine in make_engines().items():
        workload = ConnectionWorkload(seed=5)
        conn = connect(engine)
        workload.seed(conn)
        for key in (1, 2, 3):
            conn.execute(
                "UPDATE ledger SET balance = ? WHERE acct = ?",
                (7777.0, key),
            )
            observed = conn.execute(
                "SELECT balance FROM ledger WHERE acct = ?", (key,)
            ).scalar()
            assert observed == 7777.0, name
