"""Backend latency simulation and Database-level behaviours."""

import time

import pytest

from repro.db import (
    Database,
    NULL_PROFILE,
    POSTGRES_PROFILE,
    SimulatedBackend,
    VOLTDB_PROFILE,
)
from repro.db.backend import busy_wait_us


class TestBackend:
    def test_profiles_registered(self):
        assert VOLTDB_PROFILE.commit_us < POSTGRES_PROFILE.commit_us
        assert NULL_PROFILE.commit_us == 0.0

    def test_busy_wait_is_at_least_requested(self):
        start = time.perf_counter_ns()
        busy_wait_us(200)
        elapsed_us = (time.perf_counter_ns() - start) / 1000
        assert elapsed_us >= 200

    def test_busy_wait_zero_is_noop(self):
        busy_wait_us(0)
        busy_wait_us(-5)

    def test_backend_hooks_fire(self):
        backend = SimulatedBackend(NULL_PROFILE)
        db = Database(backend=backend)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("SELECT * FROM t")
        assert backend.calls["begin"] >= 2
        assert backend.calls["statement"] >= 2
        assert backend.calls["commit"] >= 2

    def test_simulated_time_accumulates(self):
        backend = SimulatedBackend(VOLTDB_PROFILE)
        db = Database(backend=backend)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        expected_min = VOLTDB_PROFILE.begin_us + VOLTDB_PROFILE.statement_us
        assert backend.total_simulated_us >= expected_min

    def test_named_constructor(self):
        assert SimulatedBackend.named("postgres").profile is POSTGRES_PROFILE


class TestDatabaseMisc:
    def test_statement_cache_reused(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (?)", (1,))
        stmt1 = db._parse("SELECT * FROM t WHERE x = ?")
        stmt2 = db._parse("SELECT * FROM t WHERE x = ?")
        assert stmt1 is stmt2

    def test_insert_row_programmatic(self):
        db = Database()
        db.execute("CREATE TABLE t (k TEXT, v INTEGER)")
        rid = db.insert_row("t", {"k": "a", "v": 1})
        assert db.store("t").get(rid, None) == ("a", 1)

    def test_insert_row_in_explicit_txn(self):
        db = Database()
        db.execute("CREATE TABLE t (k TEXT)")
        txn = db.begin()
        db.insert_row("t", {"k": "x"}, txn=txn)
        txn.abort()
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_table_rows_as_of(self):
        db = Database()
        db.execute("CREATE TABLE t (k TEXT)")
        db.execute("INSERT INTO t VALUES ('a')")
        db.execute("INSERT INTO t VALUES ('b')")
        assert db.table_rows("t", csn=1) == [{"k": "a"}]
        assert len(db.table_rows("t")) == 2

    def test_observer_receives_events(self):
        events = []

        class Observer:
            def txn_began(self, txn):
                events.append(("began", txn.txn_id))

            def txn_committed(self, txn, csn, changes):
                events.append(("committed", csn, len(changes)))

            def txn_aborted(self, txn):
                events.append(("aborted", txn.txn_id))

            def statement_executed(self, txn, trace):
                events.append(("stmt", trace.kind))

        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.add_observer(Observer())
        db.execute("INSERT INTO t VALUES (1)")
        txn = db.begin()
        txn.abort()
        kinds = [e[0] for e in events]
        assert "began" in kinds and "committed" in kinds
        assert "aborted" in kinds and "stmt" in kinds

    def test_remove_observer(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        observer = object()
        db.add_observer(observer)
        db.remove_observer(observer)
        db.remove_observer(observer)  # idempotent
        assert db.observers == []

    def test_alias_query(self):
        db = Database()
        db.execute("CREATE TABLE executions (x INTEGER)")
        db.add_table_alias("Invocations", "executions")
        db.execute("INSERT INTO executions VALUES (1)")
        assert db.execute("SELECT COUNT(*) FROM Invocations").scalar() == 1

    def test_bulk_load_preserves_ids_and_indexes(self):
        db = Database()
        db.execute("CREATE TABLE t (k TEXT UNIQUE)")
        db.bulk_load("t", [(10, ("a",)), (20, ("b",))])
        assert db.store("t").get(10, None) == ("a",)
        # Unique index is populated: conflicting insert fails.
        import pytest as _pytest
        from repro.errors import IntegrityError

        with _pytest.raises(IntegrityError):
            db.execute("INSERT INTO t VALUES ('a')")

    def test_ddl_inside_txn_is_non_transactional(self):
        db = Database()
        txn = db.begin()
        db.execute("CREATE TABLE t (x INTEGER)", txn=txn)
        txn.abort()
        assert db.catalog.has_table("t")  # DDL survived the abort
