"""First-class time travel: the SELECT ... AS OF <csn> clause."""

import pytest

from repro.db import Database, ReplicatedDatabase, ShardedDatabase, connect
from repro.db.sql.parser import parse_sql
from repro.errors import ExecutionError, SqlSyntaxError, TimeTravelError


def history_db() -> Database:
    """Three committed versions of row id=1: v at csn 1, then 2, then 3."""
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER, v TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'first')")   # csn 1
    db.execute("UPDATE t SET v = 'second' WHERE id = 1")  # csn 2
    db.execute("UPDATE t SET v = 'third' WHERE id = 1")   # csn 3
    return db


class TestParsing:
    def test_trailing_clause_with_literal(self):
        stmt = parse_sql("SELECT * FROM t WHERE id = 1 AS OF 7")
        assert stmt.as_of is not None

    def test_from_position_before_where(self):
        stmt = parse_sql("SELECT * FROM t AS OF 7 WHERE id = 1")
        assert stmt.as_of is not None
        assert stmt.from_table.alias is None  # not an alias named "of"

    def test_parameterized(self):
        stmt = parse_sql("SELECT * FROM t AS OF ?")
        assert stmt.param_count == 1

    def test_alias_named_of_still_works(self):
        # Without a CSN operand, AS OF is just an alias.
        stmt = parse_sql("SELECT of.id FROM t AS of")
        assert stmt.from_table.alias == "of"

    def test_after_order_and_limit(self):
        stmt = parse_sql("SELECT * FROM t ORDER BY id LIMIT 2 AS OF 3")
        assert stmt.as_of is not None and stmt.limit is not None

    def test_duplicate_clause_rejected(self):
        with pytest.raises(SqlSyntaxError, match="duplicate AS OF"):
            parse_sql("SELECT * FROM t AS OF 1 AS OF 2")


class TestSingleNode:
    def test_reads_each_historical_version(self):
        db = history_db()
        read = lambda csn: db.execute(
            "SELECT v FROM t WHERE id = 1 AS OF ?", (csn,)
        ).scalar()
        assert [read(1), read(2), read(3)] == ["first", "second", "third"]

    def test_equivalent_to_time_travel_store_scan(self):
        db = history_db()
        via_sql = db.execute("SELECT id, v FROM t AS OF 2").rows
        via_tt = [
            values for _rid, values in db.time_travel.rows_as_of("t", 2)
        ]
        assert via_sql == via_tt

    def test_consumes_no_csn(self):
        db = history_db()
        before = db.last_csn
        db.execute("SELECT * FROM t AS OF 1")
        assert db.last_csn == before

    def test_future_csn_rejected(self):
        db = history_db()
        with pytest.raises(TimeTravelError, match="future"):
            db.execute("SELECT * FROM t AS OF 99")

    def test_vacuumed_csn_rejected(self):
        db = history_db()
        db.vacuum(keep_after_csn=3)
        with pytest.raises(TimeTravelError, match="vacuum horizon"):
            db.execute("SELECT * FROM t AS OF 1")

    def test_non_integer_csn_rejected(self):
        db = history_db()
        with pytest.raises(ExecutionError, match="non-negative integer"):
            db.execute("SELECT * FROM t AS OF ?", ("soon",))
        with pytest.raises(ExecutionError, match="non-negative integer"):
            db.execute("SELECT * FROM t AS OF ?", (-1,))

    def test_integral_float_csn_accepted(self):
        db = history_db()
        assert (
            db.execute("SELECT v FROM t WHERE id = 1 AS OF ?", (2.0,)).scalar()
            == "second"
        )

    def test_rejected_inside_insert_select(self):
        db = history_db()
        with pytest.raises(ExecutionError, match="INSERT"):
            db.execute("INSERT INTO t SELECT id, v FROM t AS OF 1")

    def test_ignores_enclosing_transaction_snapshot(self):
        db = history_db()
        txn = db.begin()
        try:
            assert (
                db.execute(
                    "SELECT v FROM t WHERE id = 1 AS OF 1", txn=txn
                ).scalar()
                == "first"
            )
        finally:
            txn.abort()


class TestSharded:
    def make(self) -> ShardedDatabase:
        sharded = ShardedDatabase(3, shard_keys={"t": "id"})
        sharded.execute("CREATE TABLE t (id INTEGER, v INTEGER)")
        for i in range(9):
            sharded.execute("INSERT INTO t VALUES (?, ?)", (i, 0))  # gcsn i+1
        return sharded

    def test_global_csn_translation(self):
        sharded = self.make()
        # At global CSN 4, exactly rows 0..3 exist, whatever shard owns them.
        assert (
            sharded.execute("SELECT COUNT(*) FROM t AS OF 4").scalar() == 4
        )
        assert sharded.execute("SELECT COUNT(*) FROM t").scalar() == 9

    def test_matches_deprecated_execute_as_of(self):
        sharded = self.make()
        sql = "SELECT id FROM t ORDER BY id"
        with pytest.warns(DeprecationWarning):
            old = sharded.execute_as_of(sql, 5).rows
        new = sharded.execute(sql + " AS OF 5").rows
        assert old == new

    def test_rejected_inside_insert_select(self):
        sharded = self.make()
        with pytest.raises(ExecutionError, match="INSERT"):
            sharded.execute("INSERT INTO t SELECT id, v FROM t AS OF 1")

    def test_served_by_covering_replicas_through_connection(self):
        sharded = self.make()
        sharded.attach_replicas(1)
        sharded.catch_up_replicas()
        bookmark = sharded.last_global_csn
        conn = connect(sharded)
        conn.execute("UPDATE t SET v = 99 WHERE id = 4")
        # Replicas lag behind the update but cover the bookmark.
        assert (
            conn.execute(
                "SELECT v FROM t WHERE id = 4 AS OF ?", (bookmark,)
            ).scalar()
            == 0
        )
        assert conn.execute("SELECT v FROM t WHERE id = 4").scalar() == 99


class TestReplicated:
    def test_covering_replica_serves_the_read(self):
        cluster = ReplicatedDatabase(history_db(), n_replicas=1, mode="async")
        cluster.catch_up()
        bookmark = cluster.last_commit_csn
        conn = connect(cluster)
        conn.execute("UPDATE t SET v = 'fourth' WHERE id = 1")
        assert (
            conn.execute(
                "SELECT v FROM t WHERE id = 1 AS OF ?", (bookmark,)
            ).scalar()
            == "third"
        )
        assert cluster.stats["replica_reads"] == 1

    def test_uncovered_csn_falls_back_to_primary(self):
        cluster = ReplicatedDatabase(history_db(), n_replicas=1, mode="async")
        # The replica bootstrapped at csn 3: history before that is only
        # on the primary.
        conn = connect(cluster)
        assert (
            conn.execute("SELECT v FROM t WHERE id = 1 AS OF 1").scalar()
            == "first"
        )
        assert cluster.stats["primary_reads"] == 1
