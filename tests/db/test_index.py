"""Unit tests for hash and sorted indexes."""

import pytest

from repro.db.index import HashIndex, IndexSet, SortedIndex
from repro.db.schema import Column, TableSchema
from repro.db.types import ColumnType
from repro.errors import IntegrityError, SchemaError


def make_schema(unique_pair: bool = False) -> TableSchema:
    return TableSchema(
        "t",
        [
            Column("a", ColumnType.TEXT),
            Column("b", ColumnType.INTEGER),
            Column("c", ColumnType.TEXT),
        ],
        unique_constraints=[("a", "b")] if unique_pair else (),
    )


class TestHashIndex:
    def test_lookup_after_add(self):
        index = HashIndex("ix", make_schema(), ["a"])
        index.add(1, ("x", 1, "p"))
        index.add(2, ("x", 2, "q"))
        index.add(3, ("y", 3, "r"))
        assert index.lookup(("x",)) == {1, 2}
        assert index.lookup(("y",)) == {3}
        assert index.lookup(("z",)) == set()

    def test_remove(self):
        index = HashIndex("ix", make_schema(), ["a"])
        index.add(1, ("x", 1, "p"))
        index.remove(1, ("x", 1, "p"))
        assert index.lookup(("x",)) == set()

    def test_composite_key(self):
        index = HashIndex("ix", make_schema(), ["a", "b"])
        index.add(1, ("x", 1, "p"))
        assert index.lookup(("x", 1)) == {1}
        assert index.lookup(("x", 2)) == set()

    def test_unique_violation_on_add(self):
        index = HashIndex("ix", make_schema(), ["a"], unique=True)
        index.add(1, ("x", 1, "p"))
        with pytest.raises(IntegrityError):
            index.add(2, ("x", 2, "q"))

    def test_unique_allows_null_keys(self):
        index = HashIndex("ix", make_schema(), ["a"], unique=True)
        index.add(1, (None, 1, "p"))
        index.add(2, (None, 2, "q"))  # SQL semantics: NULLs never collide

    def test_would_violate_ignores_own_row(self):
        index = HashIndex("ix", make_schema(), ["a"], unique=True)
        index.add(1, ("x", 1, "p"))
        assert index.would_violate(("x", 9, "z")) is True
        assert index.would_violate(("x", 9, "z"), ignore_row_id=1) is False


class TestSortedIndex:
    def test_scan_between(self):
        index = SortedIndex("ix", make_schema(), ["b"])
        for rid, b in [(1, 5), (2, 1), (3, 3), (4, 9)]:
            index.add(rid, ("x", b, "p"))
        assert index.scan_between((2,), (6,)) == [3, 1]
        assert index.scan_between(None, (3,)) == [2, 3]
        assert index.scan_between((6,), None) == [4]

    def test_remove_specific_entry(self):
        index = SortedIndex("ix", make_schema(), ["b"])
        index.add(1, ("x", 5, "p"))
        index.add(2, ("x", 5, "q"))
        index.remove(1, ("x", 5, "p"))
        assert index.scan_between(None, None) == [2]

    def test_null_keys_sort_first(self):
        index = SortedIndex("ix", make_schema(), ["b"])
        index.add(1, ("x", None, "p"))
        index.add(2, ("x", 0, "q"))
        assert index.scan_between(None, None) == [1, 2]


class TestIndexSet:
    def test_unique_constraints_create_indexes(self):
        index_set = IndexSet(make_schema(unique_pair=True))
        assert len(index_set.indexes) == 1

    def test_check_insert_detects_violation(self):
        index_set = IndexSet(make_schema(unique_pair=True))
        index_set.on_insert(1, ("x", 1, "p"))
        with pytest.raises(IntegrityError):
            index_set.check_insert(("x", 1, "other"))
        index_set.check_insert(("x", 2, "other"))  # different key: fine

    def test_on_update_moves_entries(self):
        index_set = IndexSet(make_schema(unique_pair=True))
        index_set.on_insert(1, ("x", 1, "p"))
        index_set.on_update(1, ("x", 1, "p"), ("y", 1, "p"))
        index_set.check_insert(("x", 1, "q"))  # old key freed
        with pytest.raises(IntegrityError):
            index_set.check_insert(("y", 1, "q"))

    def test_on_delete_frees_key(self):
        index_set = IndexSet(make_schema(unique_pair=True))
        index_set.on_insert(1, ("x", 1, "p"))
        index_set.on_delete(1, ("x", 1, "p"))
        index_set.check_insert(("x", 1, "q"))

    def test_equality_index_for_prefers_widest_cover(self):
        index_set = IndexSet(make_schema())
        narrow = index_set.create_hash_index("ix_a", ["a"])
        wide = index_set.create_hash_index("ix_ab", ["a", "b"])
        assert index_set.equality_index_for({"a"}) is narrow
        assert index_set.equality_index_for({"a", "b"}) is wide
        assert index_set.equality_index_for({"c"}) is None

    def test_duplicate_index_name_rejected(self):
        index_set = IndexSet(make_schema())
        index_set.create_hash_index("ix", ["a"])
        with pytest.raises(SchemaError):
            index_set.create_hash_index("IX", ["b"])

    def test_populate_existing_rows(self):
        index_set = IndexSet(make_schema())
        index = index_set.create_hash_index("ix", ["a"])
        index_set.populate([(1, ("x", 1, "p")), (2, ("y", 2, "q"))])
        assert index.lookup(("x",)) == {1}
