"""Crash-consistent 2PC: the coordinator dies at every phase boundary.

The acceptance scenario for the decision-log design: a cross-store 2PC
commit over two *paged* (on-disk) stores is killed — deterministically,
via the fault injector — at each boundary of the commit sequence,
including mid-phase-2 where one branch committed and the other did not.
The cluster restarts from disk, recovery resolves every in-doubt branch
against the decision log, and the result must be byte-identical to a
crash-free twin that either ran the transaction to completion (decision
was logged -> commit is the outcome) or never ran it (no decision ->
presumed abort). No kill point may surface the global commit on one
store but not the other.
"""

import os
import shutil
import tempfile

import pytest

from repro.db import Database
from repro.db.multistore import MultiStoreCoordinator
from repro.db.sharding import ShardedDatabase
from repro.errors import CrashPoint
from repro.faults import FaultInjector

#: Every phase boundary of a two-branch 2PC commit, as (point, hit):
#: before each branch's prepare, before the decision is logged, before
#: each branch's phase-2 commit, and before the end record. ``decided``
#: says whether the decision log has the commit by then — the single
#: bit recovery consults.
KILL_POINTS = [
    ("2pc.prepare", 1, False),
    ("2pc.prepare", 2, False),
    ("2pc.decision", 1, False),
    ("2pc.branch_commit", 1, True),
    ("2pc.branch_commit", 2, True),
    ("2pc.end", 1, True),
]


def make_store(data_dir: str, name: str) -> Database:
    return Database(name=name, storage="paged", data_dir=data_dir)


def seed(coordinator: MultiStoreCoordinator) -> None:
    """Identical pre-crash history on any pair of stores: DDL plus one
    committed cross-store transaction."""
    for store_name in ("a", "b"):
        coordinator.store(store_name).execute(
            "CREATE TABLE t (k INTEGER, v TEXT)"
        )
    gtxn = coordinator.begin()
    gtxn.execute("a", "INSERT INTO t VALUES (1, 'seed-a')")
    gtxn.execute("b", "INSERT INTO t VALUES (1, 'seed-b')")
    gtxn.commit()


def run_doomed(coordinator: MultiStoreCoordinator) -> "object":
    gtxn = coordinator.begin()
    gtxn.execute("a", "INSERT INTO t VALUES (2, 'cross-a')")
    gtxn.execute("b", "INSERT INTO t VALUES (2, 'cross-b')")
    return gtxn


def hard_kill(database: Database) -> None:
    """The crash model from the paged property suite: pending WAL groups
    lost, file handles dropped, no checkpoint, no cleanup."""
    database.wal._pending.clear()
    database.wal._file.close()
    database._page_manager.close_all()


def rows(database: Database) -> list:
    return database.execute("SELECT k, v FROM t ORDER BY k, v").rows


class TestCoordinatorCrashEveryBoundary:
    @pytest.mark.parametrize(
        "point,hit,decided",
        KILL_POINTS,
        ids=[f"{p}-at{h}" for p, h, _ in KILL_POINTS],
    )
    def test_kill_restart_resolves_to_logged_decision(
        self, point, hit, decided
    ):
        base = tempfile.mkdtemp(prefix="repro-2pc-crash-")
        try:
            dirs = {n: os.path.join(base, n) for n in ("a", "b")}
            log_path = os.path.join(base, "decisions.jsonl")
            stores = {n: make_store(d, n) for n, d in dirs.items()}
            coordinator = MultiStoreCoordinator(stores, decision_log=log_path)
            seed(coordinator)

            injector = FaultInjector(seed=7)
            injector.fail(point, at=hit)  # default exc: CrashPoint
            gtxn = run_doomed(coordinator)
            with injector.installed():
                with pytest.raises(CrashPoint):
                    gtxn.commit()
            assert injector.trace == [(point, hit, injector.trace[0][2])]
            assert coordinator.decision_log.decided_commit(gtxn.txn_id) is decided
            for database in stores.values():
                hard_kill(database)
            coordinator.decision_log.close()

            # -- restart from disk ------------------------------------
            reopened = {n: make_store(d, n) for n, d in dirs.items()}
            recovered = MultiStoreCoordinator(reopened, decision_log=log_path)
            outcome = recovered.recover_in_doubt()
            assert outcome["committed"] + outcome["aborted"] >= 0
            # Idempotent: nothing is left in doubt.
            assert recovered.recover_in_doubt() == {
                "committed": 0, "aborted": 0, "repaired_ends": 0,
            }
            for database in reopened.values():
                assert database.in_doubt_prepares() == []

            # -- crash-free twin --------------------------------------
            twin_stores = {n: Database(name=n) for n in ("a", "b")}
            twin = MultiStoreCoordinator(twin_stores)
            seed(twin)
            if decided:
                run_doomed(twin).commit()

            # Byte-identical differential, per store: rows AND commit
            # position must match the twin exactly.
            for name in ("a", "b"):
                assert rows(reopened[name]) == rows(twin_stores[name]), (
                    f"store {name!r} diverged from the crash-free twin "
                    f"after kill at {point} hit {hit}"
                )
                assert reopened[name].last_csn == twin_stores[name].last_csn
            assert recovered.global_csn == twin.global_csn

            # Atomicity across every schedule: the doomed row pair is
            # visible on both stores or neither — never torn.
            visible = {
                name: reopened[name]
                .execute("SELECT COUNT(*) FROM t WHERE k = 2")
                .scalar()
                for name in ("a", "b")
            }
            assert visible["a"] == visible["b"], (
                f"torn global commit after kill at {point} hit {hit}: "
                f"{visible}"
            )

            # The cluster stays fully writable after recovery.
            follow = recovered.begin()
            follow.execute("a", "INSERT INTO t VALUES (3, 'post-a')")
            follow.execute("b", "INSERT INTO t VALUES (3, 'post-b')")
            follow.commit()
            for database in reopened.values():
                database.close()
            recovered.decision_log.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)

    def test_recovery_counts_match_the_boundary(self):
        """The recovery stats expose exactly which branches were in
        doubt: kill between the two phase-2 branch commits and exactly
        one branch needs repair."""
        base = tempfile.mkdtemp(prefix="repro-2pc-counts-")
        try:
            dirs = {n: os.path.join(base, n) for n in ("a", "b")}
            log_path = os.path.join(base, "decisions.jsonl")
            stores = {n: make_store(d, n) for n, d in dirs.items()}
            coordinator = MultiStoreCoordinator(stores, decision_log=log_path)
            seed(coordinator)
            injector = FaultInjector()
            injector.fail("2pc.branch_commit", at=2)
            gtxn = run_doomed(coordinator)
            with injector.installed():
                with pytest.raises(CrashPoint):
                    gtxn.commit()
            for database in stores.values():
                hard_kill(database)
            coordinator.decision_log.close()

            reopened = {n: make_store(d, n) for n, d in dirs.items()}
            recovered = MultiStoreCoordinator(reopened, decision_log=log_path)
            outcome = recovered.recover_in_doubt()
            # Branch 'a' committed before the crash; only 'b' was in
            # doubt, and the decided transaction gets its aligned-log
            # entry repaired (the end record was never written).
            assert outcome == {
                "committed": 1, "aborted": 0, "repaired_ends": 1,
            }
            assert recovered.stats["in_doubt_committed"] == 1
            for database in reopened.values():
                database.close()
            recovered.decision_log.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)


class TestShardedRecoverySurface:
    def test_sharded_decision_log_and_recover_delegate(self):
        """ShardedDatabase wires the decision-log path through to its
        coordinator and exposes recover_in_doubt at the facade."""
        base = tempfile.mkdtemp(prefix="repro-sharded-2pc-")
        try:
            log_path = os.path.join(base, "decisions.jsonl")
            sdb = ShardedDatabase(
                2, shard_keys={"kv": "k"}, decision_log=log_path
            )
            sdb.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
            assert sdb.coordinator.decision_log.path == log_path

            injector = FaultInjector()
            injector.fail("2pc.decision")
            gtxn = sdb.begin()
            for k in range(4):  # spans both shards
                sdb.execute(
                    "INSERT INTO kv VALUES (?, ?)", (k, f"v{k}"), txn=gtxn
                )
            with injector.installed():
                with pytest.raises(CrashPoint):
                    gtxn.commit()
            # No decision was logged: the facade-level recovery aborts
            # every in-doubt branch (presumed abort).
            outcome = sdb.recover_in_doubt()
            assert outcome["committed"] == 0
            assert outcome["aborted"] >= 1
            assert sdb.execute("SELECT COUNT(*) FROM kv").scalar() == 0
            sdb.coordinator.decision_log.close()
        finally:
            shutil.rmtree(base, ignore_errors=True)
