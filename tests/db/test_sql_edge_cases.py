"""SQL executor edge cases across expressions, joins, and DML."""

import pytest

from repro.db import Database
from repro.errors import ExecutionError, PlanningError, SqlSyntaxError


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE t (a TEXT, b INTEGER, c FLOAT)")
    database.execute(
        "INSERT INTO t VALUES ('x', 1, 1.5), ('y', 2, 2.5), (NULL, 3, NULL)"
    )
    return database


class TestExpressionsInQueries:
    def test_case_in_where(self, db):
        rs = db.execute(
            "SELECT a FROM t WHERE CASE WHEN b > 1 THEN TRUE ELSE FALSE END"
        )
        assert len(rs) == 2

    def test_nested_scalar_functions(self, db):
        rs = db.execute("SELECT UPPER(COALESCE(a, 'missing')) FROM t WHERE b = 3")
        assert rs.scalar() == "MISSING"

    def test_in_with_params(self, db):
        rs = db.execute("SELECT b FROM t WHERE a IN (?, ?)", ("x", "y"))
        assert sorted(rs.column("b")) == [1, 2]

    def test_arithmetic_on_mixed_numeric_types(self, db):
        rs = db.execute("SELECT b + c FROM t WHERE a = 'x'")
        assert rs.scalar() == 2.5

    def test_string_concat_operator(self, db):
        rs = db.execute("SELECT a || '-' || b FROM t WHERE a = 'x'")
        assert rs.scalar() == "x-1"

    def test_like_with_underscore_and_percent_literals(self, db):
        db.execute("INSERT INTO t VALUES ('a_b', 9, 0.0)")
        # '_' is a single-char wildcard; 'a_b' matches 'a_b' and 'axb'.
        rs = db.execute("SELECT a FROM t WHERE a LIKE 'a_b'")
        assert rs.column("a") == ["a_b"]

    def test_not_like(self, db):
        rs = db.execute("SELECT a FROM t WHERE a NOT LIKE 'x%'")
        assert rs.column("a") == ["y"]  # NULL row excluded (NULL LIKE -> NULL)

    def test_between_on_floats(self, db):
        rs = db.execute("SELECT a FROM t WHERE c BETWEEN 1.0 AND 2.0")
        assert rs.column("a") == ["x"]

    def test_is_null_in_projection(self, db):
        rs = db.execute("SELECT a IS NULL AS missing FROM t ORDER BY b")
        assert rs.column("missing") == [False, False, True]

    def test_boolean_column_comparison(self, db):
        db.execute("CREATE TABLE flags (name TEXT, active BOOL)")
        db.execute("INSERT INTO flags VALUES ('a', TRUE), ('b', FALSE)")
        rs = db.execute("SELECT name FROM flags WHERE active = TRUE")
        assert rs.column("name") == ["a"]

    def test_unary_minus_in_where(self, db):
        rs = db.execute("SELECT a FROM t WHERE b = -(-2)")
        assert rs.column("a") == ["y"]

    def test_quoted_identifiers(self, db):
        db.execute('CREATE TABLE "Mixed Case" ("Weird Col" INTEGER)')
        db.execute('INSERT INTO "Mixed Case" ("Weird Col") VALUES (7)')
        rs = db.execute('SELECT "Weird Col" FROM "Mixed Case"')
        assert rs.scalar() == 7


class TestJoinEdgeCases:
    def test_join_on_expression_keys(self, db):
        db.execute("CREATE TABLE u (bb INTEGER)")
        db.execute("INSERT INTO u VALUES (2), (4)")
        rs = db.execute(
            "SELECT t.a FROM t JOIN u ON t.b * 2 = u.bb ORDER BY t.a"
        )
        assert rs.column("a") == ["x", "y"]

    def test_empty_left_side(self, db):
        db.execute("CREATE TABLE empty (a TEXT)")
        rs = db.execute("SELECT * FROM empty JOIN t ON empty.a = t.a")
        assert len(rs) == 0

    def test_left_join_aggregate_counts_unmatched_as_zero(self, db):
        db.execute("CREATE TABLE u (a TEXT, points INTEGER)")
        db.execute("INSERT INTO u VALUES ('x', 5), ('x', 6)")
        rs = db.execute(
            "SELECT t.a, COUNT(u.points) AS n FROM t LEFT JOIN u"
            " ON t.a = u.a WHERE t.a IS NOT NULL GROUP BY t.a ORDER BY t.a"
        )
        assert rs.rows == [("x", 2), ("y", 0)]

    def test_three_table_mixed_join_kinds(self, db):
        db.execute("CREATE TABLE u (a TEXT, tag TEXT)")
        db.execute("CREATE TABLE v (tag TEXT, score INTEGER)")
        db.execute("INSERT INTO u VALUES ('x', 'hot')")
        db.execute("INSERT INTO v VALUES ('hot', 10)")
        rs = db.execute(
            "SELECT t.a, v.score FROM t"
            " JOIN u ON t.a = u.a"
            " LEFT JOIN v ON u.tag = v.tag"
        )
        assert rs.rows == [("x", 10)]


class TestDmlEdgeCases:
    def test_update_no_matches_is_zero_rowcount(self, db):
        assert db.execute("UPDATE t SET b = 0 WHERE a = 'nope'").rowcount == 0

    def test_update_with_case_expression(self, db):
        db.execute(
            "UPDATE t SET b = CASE WHEN b > 1 THEN b * 10 ELSE b END"
        )
        assert sorted(db.execute("SELECT b FROM t").column("b")) == [1, 20, 30]

    def test_delete_by_null_check(self, db):
        assert db.execute("DELETE FROM t WHERE a IS NULL").rowcount == 1
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_insert_expression_values(self, db):
        db.execute("INSERT INTO t VALUES (UPPER('z'), 2 + 3, 1.0 * 4)")
        rs = db.execute("SELECT a, b, c FROM t WHERE a = 'Z'")
        assert rs.rows == [("Z", 5, 4.0)]

    def test_insert_null_into_nullable(self, db):
        db.execute("INSERT INTO t VALUES (NULL, 99, NULL)")
        assert (
            db.execute("SELECT COUNT(*) FROM t WHERE b = 99 AND a IS NULL").scalar()
            == 1
        )

    def test_update_inside_explicit_txn_visible_to_later_statements(self, db):
        txn = db.begin()
        db.execute("UPDATE t SET b = b + 100", txn=txn)
        total = db.execute("SELECT SUM(b) FROM t", txn=txn).scalar()
        assert total == 1 + 2 + 3 + 300
        txn.abort()
        assert db.execute("SELECT SUM(b) FROM t").scalar() == 6

    def test_statement_failure_in_explicit_txn_leaves_txn_usable(self, db):
        """Statement errors don't poison an explicit transaction; the
        caller decides whether to continue or abort."""
        txn = db.begin()
        with pytest.raises(PlanningError):
            db.execute("SELECT nope FROM t", txn=txn)
        result = db.execute("SELECT COUNT(*) FROM t", txn=txn)
        assert result.scalar() == 3
        txn.commit()


class TestQueryErrors:
    def test_group_by_alias_is_rejected(self, db):
        # Standard SQL: GROUP BY sees input columns, not output aliases.
        with pytest.raises((PlanningError, ExecutionError)):
            db.execute("SELECT UPPER(a) AS ua, COUNT(*) FROM t GROUP BY ua")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises((PlanningError, ExecutionError)):
            db.execute("SELECT a FROM t WHERE COUNT(*) > 1")

    def test_scalar_function_arity_error_at_execution(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT UPPER(a, b) FROM t")

    def test_division_by_zero_reported(self, db):
        with pytest.raises(ExecutionError, match="division by zero"):
            db.execute("SELECT b / 0 FROM t")

    def test_order_by_unknown_column(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT a FROM t ORDER BY zzz")

    def test_too_many_params(self, db):
        with pytest.raises(ExecutionError, match="parameter"):
            db.execute("SELECT a FROM t WHERE b = ?", (1, 2))
