"""Cross-store transaction coordinator tests (§5 extension)."""

import pytest

from repro.db import Database, IsolationLevel, TransactionStatus
from repro.db.multistore import MultiStoreCoordinator
from repro.errors import IntegrityError, TransactionError


@pytest.fixture
def coordinator() -> MultiStoreCoordinator:
    relational = Database(name="relational")
    relational.execute("CREATE TABLE orders (orderId TEXT UNIQUE, total FLOAT)")
    kv = Database(name="kv")
    kv.execute("CREATE TABLE cache (k TEXT UNIQUE, v TEXT)")
    return MultiStoreCoordinator({"relational": relational, "kv": kv})


class TestAtomicCommit:
    def test_commit_spans_both_stores(self, coordinator):
        gtxn = coordinator.begin()
        gtxn.execute(
            "relational", "INSERT INTO orders VALUES ('O1', 9.99)"
        )
        gtxn.execute("kv", "INSERT INTO cache VALUES ('order:O1', 'placed')")
        global_csn = gtxn.commit()
        assert global_csn == 1
        assert coordinator.store("relational").execute(
            "SELECT COUNT(*) FROM orders"
        ).scalar() == 1
        assert coordinator.store("kv").execute(
            "SELECT v FROM cache"
        ).scalar() == "placed"

    def test_abort_discards_both_stores(self, coordinator):
        gtxn = coordinator.begin()
        gtxn.execute("relational", "INSERT INTO orders VALUES ('O1', 1.0)")
        gtxn.execute("kv", "INSERT INTO cache VALUES ('k', 'v')")
        gtxn.abort()
        assert coordinator.store("relational").execute(
            "SELECT COUNT(*) FROM orders"
        ).scalar() == 0
        assert coordinator.store("kv").execute(
            "SELECT COUNT(*) FROM cache"
        ).scalar() == 0

    def test_prepare_failure_rolls_back_everything(self, coordinator):
        """The 2PC guarantee: a constraint failure in ONE store leaves
        BOTH stores unchanged."""
        coordinator.store("kv").execute(
            "INSERT INTO cache VALUES ('dup', 'existing')"
        )
        gtxn = coordinator.begin(IsolationLevel.SNAPSHOT)
        gtxn.execute("relational", "INSERT INTO orders VALUES ('O9', 5.0)")
        gtxn.execute("kv", "INSERT INTO cache VALUES ('dup2', 'x')")
        # Simulate a conflicting commit landing first in the kv store.
        other = coordinator.store("kv").begin(IsolationLevel.SNAPSHOT)
        coordinator.store("kv").execute(
            "INSERT INTO cache VALUES ('dup2', 'winner')", txn=other
        )
        other.commit()
        with pytest.raises(IntegrityError):
            gtxn.commit()
        # The relational branch was rolled back too.
        assert coordinator.store("relational").execute(
            "SELECT COUNT(*) FROM orders"
        ).scalar() == 0
        assert coordinator.aligned_log == []

    def test_gtxn_unusable_after_commit(self, coordinator):
        gtxn = coordinator.begin()
        gtxn.execute("relational", "INSERT INTO orders VALUES ('O1', 1.0)")
        gtxn.commit()
        with pytest.raises(TransactionError):
            gtxn.execute("kv", "INSERT INTO cache VALUES ('k', 'v')")

    def test_single_store_transactions_work(self, coordinator):
        gtxn = coordinator.begin()
        gtxn.execute("kv", "INSERT INTO cache VALUES ('solo', '1')")
        assert gtxn.commit() == 1
        assert gtxn.stores_joined() == ["kv"]


class TestAlignedLog:
    def test_global_csns_are_dense_and_ordered(self, coordinator):
        for i in range(3):
            gtxn = coordinator.begin()
            gtxn.execute(
                "relational", "INSERT INTO orders VALUES (?, ?)", (f"O{i}", 1.0)
            )
            gtxn.execute(
                "kv", "INSERT INTO cache VALUES (?, 'x')", (f"k{i}",)
            )
            gtxn.commit()
        assert [c.global_csn for c in coordinator.aligned_log] == [1, 2, 3]

    def test_log_maps_global_to_local_csns(self, coordinator):
        gtxn = coordinator.begin()
        gtxn.execute("relational", "INSERT INTO orders VALUES ('O1', 1.0)")
        gtxn.execute("kv", "INSERT INTO cache VALUES ('k1', 'v')")
        gtxn.commit()
        commit = coordinator.aligned_log[0]
        assert set(commit.local_csns) == {"relational", "kv"}
        # The local CSNs really exist in each store's history.
        for store, csn in commit.local_csns.items():
            assert coordinator.store(store).txn_manager.last_csn >= csn

    def test_global_csn_lookup(self, coordinator):
        gtxn = coordinator.begin()
        gtxn.execute("kv", "INSERT INTO cache VALUES ('k', 'v')")
        gtxn.commit()
        local = coordinator.aligned_log[0].local_csns["kv"]
        assert coordinator.global_csn_for("kv", local) == 1
        assert coordinator.global_csn_for("kv", 999) is None

    def test_commits_between(self, coordinator):
        for i in range(4):
            gtxn = coordinator.begin()
            gtxn.execute("kv", "INSERT INTO cache VALUES (?, 'v')", (f"k{i}",))
            gtxn.commit()
        window = coordinator.commits_between(1, 3)
        assert [c.global_csn for c in window] == [2, 3]

    def test_partial_participation_recorded(self, coordinator):
        gtxn = coordinator.begin()
        gtxn.execute("kv", "INSERT INTO cache VALUES ('only-kv', 'v')")
        gtxn.commit()
        assert list(coordinator.aligned_log[0].local_csns) == ["kv"]


class TestPrepareFailurePaths:
    """2PC guarantee under partial prepare: the Nth store's prepare
    failure aborts every already-prepared branch and leaves every store
    unchanged."""

    N_STORES = 4

    def build(self) -> MultiStoreCoordinator:
        stores = {}
        for i in range(self.N_STORES):
            db = Database(name=f"s{i}")
            db.execute("CREATE TABLE t (k TEXT UNIQUE, v INTEGER)")
            stores[f"s{i}"] = db
        return MultiStoreCoordinator(stores)

    def _conflict_on(self, coordinator, store_name):
        """Run a gtxn writing all stores, with a prepare-time conflict on
        ``store_name`` (a concurrent commit after the branch snapshot)."""
        gtxn = coordinator.begin(IsolationLevel.SNAPSHOT)
        for i in range(self.N_STORES):
            gtxn.execute(f"s{i}", "INSERT INTO t VALUES (?, 1)", (f"key-{i}",))
        conflicting = coordinator.store(store_name)
        other = conflicting.begin(IsolationLevel.SNAPSHOT)
        store_index = store_name.lstrip("s")
        conflicting.execute(
            "INSERT INTO t VALUES (?, 2)", (f"key-{store_index}",), txn=other
        )
        other.commit()
        with pytest.raises(IntegrityError):
            gtxn.commit()
        return gtxn

    @pytest.mark.parametrize("failing", ["s0", "s1", "s3"])
    def test_nth_store_prepare_failure_aborts_all(self, failing):
        """First, middle, and last position in the (sorted) prepare order."""
        coordinator = self.build()
        gtxn = self._conflict_on(coordinator, failing)
        assert gtxn.status is TransactionStatus.ABORTED
        for i in range(self.N_STORES):
            name = f"s{i}"
            survivors = coordinator.store(name).execute(
                "SELECT COUNT(*) FROM t"
            ).scalar()
            # Only the conflicting concurrent commit survives, and only
            # on the store where it happened.
            assert survivors == (1 if name == failing else 0)
            assert not coordinator.store(name).txn_manager.active
        assert coordinator.aligned_log == []

    def test_branches_unusable_after_prepare_failure(self):
        coordinator = self.build()
        gtxn = self._conflict_on(coordinator, "s2")
        with pytest.raises(TransactionError):
            gtxn.execute("s0", "INSERT INTO t VALUES ('late', 9)")

    def test_coordinator_survives_for_next_transaction(self):
        coordinator = self.build()
        self._conflict_on(coordinator, "s1")
        gtxn = coordinator.begin()
        for i in range(self.N_STORES):
            gtxn.execute(f"s{i}", "INSERT INTO t VALUES (?, 3)", (f"retry-{i}",))
        assert gtxn.commit() == 1
        assert [c.global_csn for c in coordinator.aligned_log] == [1]

    def test_empty_global_commit_records_nothing(self):
        coordinator = self.build()
        gtxn = coordinator.begin()
        assert gtxn.commit() == 0
        assert coordinator.aligned_log == []
        assert gtxn.status is TransactionStatus.COMMITTED


class TestAlignedLogInterleaving:
    """global_csn_for / commits_between / local_csns_at over a history
    interleaving single-store and multi-store commits."""

    def build(self):
        a = Database(name="a")
        a.execute("CREATE TABLE t (x INTEGER)")
        b = Database(name="b")
        b.execute("CREATE TABLE t (x INTEGER)")
        coordinator = MultiStoreCoordinator({"a": a, "b": b})
        # G1: a only; G2: both; G3: b only; G4: both.
        plan = [["a"], ["a", "b"], ["b"], ["a", "b"]]
        for stores in plan:
            gtxn = coordinator.begin()
            for store in stores:
                gtxn.execute(store, "INSERT INTO t VALUES (1)")
            gtxn.commit()
        return coordinator

    def test_global_csn_for_each_local_commit(self):
        coordinator = self.build()
        for commit in coordinator.aligned_log:
            for store, local_csn in commit.local_csns.items():
                assert (
                    coordinator.global_csn_for(store, local_csn)
                    == commit.global_csn
                )

    def test_global_csn_for_unknown_local(self):
        coordinator = self.build()
        assert coordinator.global_csn_for("a", 999) is None

    def test_commits_between_windows(self):
        coordinator = self.build()
        assert [c.global_csn for c in coordinator.commits_between(0, 4)] == [
            1, 2, 3, 4,
        ]
        window = coordinator.commits_between(1, 3)
        assert [c.global_csn for c in window] == [2, 3]
        assert coordinator.commits_between(4, 4) == []

    def test_partial_participation_is_visible(self):
        coordinator = self.build()
        participants = [sorted(c.local_csns) for c in coordinator.aligned_log]
        assert participants == [["a"], ["a", "b"], ["b"], ["a", "b"]]

    def test_local_csns_at_translation(self):
        coordinator = self.build()
        # After G1 only 'a' has committed; 'b' is still empty.
        assert coordinator.local_csns_at(1) == {"a": 1, "b": 0}
        at2 = coordinator.local_csns_at(2)
        assert at2["a"] == 2 and at2["b"] == 1
        # G3 advanced only 'b'; 'a' stays at its G2 position.
        at3 = coordinator.local_csns_at(3)
        assert at3["a"] == 2 and at3["b"] == 2
        assert coordinator.local_csns_at(0) == {"a": 0, "b": 0}

    def test_local_csns_at_out_of_range(self):
        coordinator = self.build()
        with pytest.raises(TransactionError):
            coordinator.local_csns_at(5)
        with pytest.raises(TransactionError):
            coordinator.local_csns_at(-1)


class TestCoordinatorGuards:
    def test_unknown_store(self, coordinator):
        gtxn = coordinator.begin()
        with pytest.raises(TransactionError, match="unknown store"):
            gtxn.execute("mongo", "SELECT 1")

    def test_empty_coordinator_rejected(self):
        with pytest.raises(TransactionError):
            MultiStoreCoordinator({})

    def test_isolation_propagates_to_branches(self, coordinator):
        gtxn = coordinator.begin(IsolationLevel.SNAPSHOT)
        branch = gtxn.on("kv")
        assert branch.isolation is IsolationLevel.SNAPSHOT
        gtxn.abort()

    def test_info_propagates_to_branches(self, coordinator):
        gtxn = coordinator.begin(info={"req_id": "R7"})
        branch = gtxn.on("relational")
        assert branch.info["req_id"] == "R7"
        assert branch.info["global_txn"] == gtxn.name
        gtxn.abort()


class TestPreparedStateMachine:
    def test_prepare_then_commit(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        txn = db.begin()
        db.execute("INSERT INTO t VALUES (1)", txn=txn)
        db.txn_manager.prepare(txn)
        from repro.db import TransactionStatus

        assert txn.status is TransactionStatus.PREPARED
        txn.commit()
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_prepared_txn_rejects_new_writes(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        txn = db.begin()
        db.execute("INSERT INTO t VALUES (1)", txn=txn)
        db.txn_manager.prepare(txn)
        from repro.errors import TransactionAborted

        with pytest.raises(TransactionAborted):
            db.execute("INSERT INTO t VALUES (2)", txn=txn)

    def test_prepared_txn_can_abort(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        txn = db.begin()
        db.execute("INSERT INTO t VALUES (1)", txn=txn)
        db.txn_manager.prepare(txn)
        txn.abort()
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_prepare_validation_failure_aborts(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER UNIQUE)")
        db.execute("INSERT INTO t VALUES (1)")
        from repro.db import IsolationLevel

        txn = db.begin(IsolationLevel.SNAPSHOT)
        # Another committed writer creates the conflict.
        other = db.begin(IsolationLevel.SNAPSHOT)
        db.execute("INSERT INTO t VALUES (2)", txn=other)
        other.commit()
        db.execute("INSERT INTO t VALUES (2)", txn=txn)
        with pytest.raises(IntegrityError):
            db.txn_manager.prepare(txn)
        from repro.db import TransactionStatus

        assert txn.status is TransactionStatus.ABORTED
