"""End-to-end SELECT execution tests (single table)."""

import pytest

from repro.db import Database
from repro.errors import ExecutionError, PlanningError


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE people (name TEXT, age INTEGER, city TEXT)"
    )
    rows = [
        ("alice", 30, "paris"),
        ("bob", 25, "london"),
        ("carol", 35, "paris"),
        ("dave", None, "berlin"),
    ]
    for name, age, city in rows:
        database.execute(
            "INSERT INTO people (name, age, city) VALUES (?, ?, ?)",
            (name, age, city),
        )
    return database


class TestProjection:
    def test_star(self, db):
        rs = db.execute("SELECT * FROM people")
        assert rs.columns == ["name", "age", "city"]
        assert len(rs) == 4

    def test_column_subset_and_alias(self, db):
        rs = db.execute("SELECT name AS who, age FROM people WHERE name = 'bob'")
        assert rs.columns == ["who", "age"]
        assert rs.rows == [("bob", 25)]

    def test_expression_projection(self, db):
        rs = db.execute("SELECT age + 1 FROM people WHERE name = 'bob'")
        assert rs.rows == [(26,)]

    def test_scalar_function_in_projection(self, db):
        rs = db.execute("SELECT UPPER(name) FROM people WHERE age = 30")
        assert rs.rows == [("ALICE",)]

    def test_case_in_projection(self, db):
        rs = db.execute(
            "SELECT name, CASE WHEN age >= 30 THEN 'old' ELSE 'young' END AS bucket"
            " FROM people WHERE age IS NOT NULL ORDER BY name"
        )
        assert rs.rows == [
            ("alice", "old"), ("bob", "young"), ("carol", "old"),
        ]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 2 + 3").scalar() == 5


class TestFiltering:
    def test_where_equality(self, db):
        rs = db.execute("SELECT name FROM people WHERE city = 'paris' ORDER BY name")
        assert rs.column("name") == ["alice", "carol"]

    def test_where_with_params(self, db):
        rs = db.execute("SELECT name FROM people WHERE age > ?", (26,))
        assert sorted(rs.column("name")) == ["alice", "carol"]

    def test_null_never_matches_comparison(self, db):
        rs = db.execute("SELECT name FROM people WHERE age > 0")
        assert "dave" not in rs.column("name")
        rs = db.execute("SELECT name FROM people WHERE age IS NULL")
        assert rs.column("name") == ["dave"]

    def test_in_and_between(self, db):
        rs = db.execute(
            "SELECT name FROM people WHERE city IN ('paris', 'berlin')"
            " AND (age BETWEEN 30 AND 40 OR age IS NULL) ORDER BY name"
        )
        assert rs.column("name") == ["alice", "carol", "dave"]

    def test_like(self, db):
        rs = db.execute("SELECT name FROM people WHERE name LIKE '%a%' ORDER BY name")
        assert rs.column("name") == ["alice", "carol", "dave"]

    def test_wrong_param_count(self, db):
        with pytest.raises(ExecutionError, match="parameter"):
            db.execute("SELECT * FROM people WHERE age = ?")

    def test_unknown_column(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT nope FROM people")


class TestOrdering:
    def test_order_by_asc_desc(self, db):
        rs = db.execute(
            "SELECT name FROM people WHERE age IS NOT NULL ORDER BY age DESC"
        )
        assert rs.column("name") == ["carol", "alice", "bob"]

    def test_nulls_sort_first(self, db):
        rs = db.execute("SELECT name FROM people ORDER BY age ASC")
        assert rs.column("name")[0] == "dave"

    def test_multi_key_sort_is_stable(self, db):
        db.execute("INSERT INTO people (name, age, city) VALUES ('erin', 25, 'paris')")
        rs = db.execute("SELECT name FROM people ORDER BY city ASC, age DESC")
        assert rs.column("name") == ["dave", "bob", "carol", "alice", "erin"]

    def test_order_by_output_alias(self, db):
        rs = db.execute(
            "SELECT name, age * 2 AS doubled FROM people"
            " WHERE age IS NOT NULL ORDER BY doubled"
        )
        assert rs.column("name") == ["bob", "alice", "carol"]

    def test_order_by_non_projected_column(self, db):
        rs = db.execute(
            "SELECT name FROM people WHERE age IS NOT NULL ORDER BY age"
        )
        assert rs.column("name") == ["bob", "alice", "carol"]


class TestLimitDistinct:
    def test_limit_offset(self, db):
        rs = db.execute("SELECT name FROM people ORDER BY name LIMIT 2")
        assert rs.column("name") == ["alice", "bob"]
        rs = db.execute("SELECT name FROM people ORDER BY name LIMIT 2 OFFSET 2")
        assert rs.column("name") == ["carol", "dave"]

    def test_limit_param(self, db):
        rs = db.execute("SELECT name FROM people ORDER BY name LIMIT ?", (1,))
        assert rs.column("name") == ["alice"]

    def test_limit_validation(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT name FROM people LIMIT ?", (-1,))

    def test_distinct(self, db):
        rs = db.execute("SELECT DISTINCT city FROM people ORDER BY city")
        assert rs.column("city") == ["berlin", "london", "paris"]

    def test_distinct_with_order_by_projected(self, db):
        rs = db.execute("SELECT DISTINCT city FROM people ORDER BY city DESC")
        assert rs.column("city") == ["paris", "london", "berlin"]


class TestResultSet:
    def test_scalar_guard(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT * FROM people").scalar()

    def test_as_dicts(self, db):
        rows = db.execute(
            "SELECT name, age FROM people WHERE name = 'bob'"
        ).as_dicts()
        assert rows == [{"name": "bob", "age": 25}]

    def test_unknown_output_column(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT name FROM people").column("nope")

    def test_pretty_renders(self, db):
        text = db.execute("SELECT name, age FROM people ORDER BY name").pretty(max_rows=2)
        assert "alice" in text and "more rows" in text
