"""Time travel: historical reads and dev-database restores."""

import pytest

from repro.db import Database
from repro.errors import TimeTravelError


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE t (k TEXT NOT NULL, v INTEGER)")
    database.execute("INSERT INTO t VALUES ('a', 1)")  # csn 1
    database.execute("INSERT INTO t VALUES ('b', 2)")  # csn 2
    database.execute("UPDATE t SET v = 10 WHERE k = 'a'")  # csn 3
    database.execute("DELETE FROM t WHERE k = 'b'")  # csn 4
    return database


class TestHistoricalReads:
    def test_state_as_of_each_csn(self, db):
        tt = db.time_travel
        assert [v for _r, v in tt.rows_as_of("t", 1)] == [("a", 1)]
        assert [v for _r, v in tt.rows_as_of("t", 2)] == [("a", 1), ("b", 2)]
        assert [v for _r, v in tt.rows_as_of("t", 3)] == [("a", 10), ("b", 2)]
        assert [v for _r, v in tt.rows_as_of("t", 4)] == [("a", 10)]

    def test_state_as_of_zero_is_empty(self, db):
        assert db.time_travel.rows_as_of("t", 0) == []

    def test_future_csn_rejected(self, db):
        with pytest.raises(TimeTravelError):
            db.time_travel.rows_as_of("t", 99)

    def test_state_as_of_returns_dicts(self, db):
        state = db.time_travel.state_as_of(2)
        assert state == {"t": [{"k": "a", "v": 1}, {"k": "b", "v": 2}]}

    def test_csn_before_txn(self, db):
        # The UPDATE was the 3rd commit.
        txn_id = db.txn_manager.txn_at_csn(3)
        assert db.time_travel.csn_before_txn(txn_id) == 2

    def test_csn_before_uncommitted_txn_rejected(self, db):
        txn = db.begin()
        with pytest.raises(TimeTravelError):
            db.time_travel.csn_before_txn(txn.txn_id)
        txn.abort()


class TestRestore:
    def test_restore_into_fresh_database(self, db):
        dev = Database(name="dev")
        counts = db.time_travel.restore_into(dev, 2)
        assert counts == {"t": 2}
        assert dev.execute("SELECT k, v FROM t ORDER BY k").rows == [
            ("a", 1), ("b", 2),
        ]

    def test_restore_preserves_row_ids(self, db):
        dev = Database(name="dev")
        db.time_travel.restore_into(dev, 2)
        src = dict(db.store("t").scan(2))
        dst = dict(dev.store("t").scan(None))
        assert src == dst

    def test_restore_selected_tables(self, db):
        db.execute("CREATE TABLE other (x INTEGER)")
        db.execute("INSERT INTO other VALUES (1)")
        dev = Database(name="dev")
        db.time_travel.restore_into(dev, 2, tables=["t"])
        assert dev.catalog.has_table("t")
        assert not dev.catalog.has_table("other")

    def test_restored_db_continues_independently(self, db):
        dev = Database(name="dev")
        db.time_travel.restore_into(dev, 2)
        dev.execute("INSERT INTO t VALUES ('c', 3)")
        assert dev.execute("SELECT COUNT(*) FROM t").scalar() == 3
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1


class TestVacuumHorizon:
    def test_vacuum_blocks_older_time_travel(self, db):
        removed = db.vacuum(keep_after_csn=3)
        assert removed > 0
        with pytest.raises(TimeTravelError):
            db.time_travel.rows_as_of("t", 1)
        # Newer history still works.
        assert [v for _r, v in db.time_travel.rows_as_of("t", 4)] == [("a", 10)]

    def test_latest_reads_unaffected_by_vacuum(self, db):
        db.vacuum(keep_after_csn=4)
        assert db.execute("SELECT k, v FROM t").rows == [("a", 10)]
