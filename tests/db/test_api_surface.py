"""The public API surface stays importable and the examples stay runnable.

CI runs the same checks as a workflow step; this test keeps them honest
in the tier-1 suite too.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent

MIGRATED_EXAMPLES = [
    "examples/quickstart.py",
    "examples/sharded_cluster.py",
    "examples/replicated_reads.py",
]


class TestApiSurface:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
        assert callable(repro.connect)

    def test_db_all_resolves(self):
        import repro.db

        missing = [
            name for name in repro.db.__all__
            if not hasattr(repro.db, name)
        ]
        assert not missing, f"repro.db.__all__ dangles: {missing}"

    def test_engine_protocol_documents_the_contract(self):
        from repro.db import (
            Database,
            ReplicatedDatabase,
            ShardedDatabase,
        )
        from repro.db.connection import _ENGINE_SURFACE

        sharded = ShardedDatabase(1)
        engines = [Database(), sharded, ReplicatedDatabase(n_replicas=0)]
        for engine in engines:
            for attr in _ENGINE_SURFACE:
                assert hasattr(engine, attr), (type(engine).__name__, attr)


@pytest.mark.parametrize("example", MIGRATED_EXAMPLES)
def test_migrated_example_runs(example):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(REPO / example)],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=str(REPO),
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()  # the examples narrate what they show
