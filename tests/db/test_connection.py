"""The unified Connection/Cursor facade (repro.connect)."""

import pytest

import repro
from repro.db import (
    Database,
    IsolationLevel,
    ReplicaSet,
    ReplicatedDatabase,
    Row,
    Session,
    ShardedDatabase,
    connect,
)
from repro.errors import ExecutionError, InterfaceError


def seeded_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER, v TEXT)")
    for i in range(5):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
    return db


class TestConnect:
    def test_connect_is_exported_at_top_level(self):
        assert repro.connect is connect
        assert isinstance(repro.connect(Database()), repro.Connection)

    def test_rejects_non_engines(self):
        with pytest.raises(InterfaceError, match="Engine"):
            connect(object())

    def test_rejects_unknown_read_preference(self):
        with pytest.raises(InterfaceError, match="read_preference"):
            connect(Database(), read_preference="nearest")

    def test_wraps_a_bare_replica_set(self):
        rs = ReplicaSet(seeded_db(), n_replicas=1, mode="sync")
        conn = connect(rs)
        assert isinstance(conn.engine, ReplicatedDatabase)
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 5

    def test_closed_connection_refuses_work(self):
        conn = connect(seeded_db())
        conn.close()
        assert conn.closed
        with pytest.raises(InterfaceError, match="closed"):
            conn.execute("SELECT * FROM t")
        with pytest.raises(InterfaceError, match="closed"):
            conn.cursor()

    def test_context_manager_closes(self):
        with connect(seeded_db()) as conn:
            assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 5
        assert conn.closed

    def test_custom_engine_with_only_the_documented_surface(self):
        """An Engine needs nothing beyond the documented contract."""

        class MinimalEngine:
            def __init__(self):
                self._db = seeded_db()
                self.name = "minimal"

            @property
            def catalog(self):
                return self._db.catalog

            @property
            def last_commit_csn(self):
                return self._db.last_commit_csn

            def execute(self, sql, params=(), txn=None):
                return self._db.execute(sql, params, txn=txn)

            def begin(self, isolation=None, info=None):
                return self._db.begin(info=info)

            def add_observer(self, observer):
                self._db.add_observer(observer)

            def remove_observer(self, observer):
                self._db.remove_observer(observer)

            def snapshot_rows(self, table):
                return self._db.snapshot_rows(table)

            def table_rows(self, table):
                return self._db.table_rows(table)

        conn = connect(MinimalEngine())
        conn.execute("INSERT INTO t VALUES (?, ?)", (9, "v9"))
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 6
        assert conn.session.last_write_csn > 0


class TestConnectionExecution:
    def test_select_dml_ddl_route_and_count(self):
        conn = connect(Database())
        conn.execute("CREATE TABLE kv (k INTEGER, val INTEGER)")
        conn.execute("INSERT INTO kv VALUES (?, ?)", (1, 10))
        conn.execute("SELECT * FROM kv")
        assert conn.stats == {
            "reads": 1, "writes": 1, "ddl": 1, "transactions": 0,
            "failover_retries": 0,
        }

    def test_reads_consume_no_csns_on_any_engine(self):
        engines = [
            seeded_db(),
            ReplicatedDatabase(seeded_db(), n_replicas=1),
        ]
        sharded = ShardedDatabase(2, shard_keys={"t": "id"})
        sharded.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        engines.append(sharded)
        for engine in engines:
            conn = connect(engine)
            before = conn.last_commit_csn
            for _ in range(3):
                conn.execute("SELECT COUNT(*) FROM t")
            assert conn.last_commit_csn == before, type(engine).__name__

    def test_writes_advance_the_session_token(self):
        conn = connect(seeded_db())
        assert conn.session.last_write_csn == 0
        conn.execute("UPDATE t SET v = ? WHERE id = ?", ("x", 1))
        assert conn.session.last_write_csn == conn.engine.last_csn

    def test_sharded_writes_note_the_global_csn(self):
        sharded = ShardedDatabase(2, shard_keys={"t": "id"})
        conn = connect(sharded)
        conn.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        conn.execute("INSERT INTO t VALUES (?, ?)", (1, "a"))
        assert conn.session.last_global_csn == sharded.last_global_csn == 1

    def test_shared_session_across_connections(self):
        session = Session("shared")
        db = seeded_db()
        c1 = connect(db, session=session)
        c2 = connect(db, session=session)
        c1.execute("UPDATE t SET v = ? WHERE id = ?", ("w", 2))
        assert c2.session.last_write_csn == db.last_csn

    def test_explain_passes_through(self):
        conn = connect(seeded_db())
        assert any("Scan" in line for line in conn.explain("SELECT * FROM t"))
        sharded = ShardedDatabase(2, shard_keys={"t": "id"})
        sharded.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        lines = connect(sharded).explain("SELECT * FROM t WHERE id = ?", (1,))
        assert any("ShardedScatterGather" in line for line in lines)


class TestConnectionTransactions:
    def test_commits_on_clean_exit_and_sets_csn(self):
        conn = connect(seeded_db())
        with conn.transaction() as txn:
            txn.execute("UPDATE t SET v = ? WHERE id = ?", ("a", 0))
            txn.execute("UPDATE t SET v = ? WHERE id = ?", ("b", 1))
        assert txn.csn == conn.engine.last_csn
        assert conn.session.last_write_csn == txn.csn
        assert conn.execute("SELECT v FROM t WHERE id = 0").scalar() == "a"

    def test_aborts_on_exception(self):
        conn = connect(seeded_db())
        with pytest.raises(RuntimeError):
            with conn.transaction() as txn:
                txn.execute("UPDATE t SET v = ? WHERE id = ?", ("zz", 0))
                raise RuntimeError("boom")
        assert conn.execute("SELECT v FROM t WHERE id = 0").scalar() == "v0"

    def test_explicit_commit_inside_block_wins(self):
        conn = connect(seeded_db())
        with conn.transaction() as txn:
            txn.execute("UPDATE t SET v = ? WHERE id = ?", ("c", 0))
            csn = txn.commit()
        assert txn.csn == csn

    def test_explicit_abort_inside_block(self):
        conn = connect(seeded_db())
        with conn.transaction() as txn:
            txn.execute("UPDATE t SET v = ? WHERE id = ?", ("d", 0))
            txn.abort()
        assert conn.execute("SELECT v FROM t WHERE id = 0").scalar() == "v0"

    def test_isolation_and_label_reach_the_engine(self):
        conn = connect(seeded_db())
        with conn.transaction(
            isolation=IsolationLevel.SNAPSHOT, label="audit"
        ) as txn:
            assert txn.raw.isolation is IsolationLevel.SNAPSHOT
            assert txn.raw.info["label"] == "audit"

    def test_sharded_transaction_is_global_2pc(self):
        sharded = ShardedDatabase(3, shard_keys={"t": "id"})
        conn = connect(sharded)
        conn.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        with conn.transaction() as txn:
            for i in range(6):
                txn.execute("INSERT INTO t VALUES (?, ?)", (i, "x"))
        assert txn.csn == 1  # one atomic global commit
        assert conn.session.last_global_csn == 1
        assert len(txn.raw.stores_joined()) > 1


class TestCursor:
    def test_dbapi_shape(self):
        conn = connect(seeded_db())
        cur = conn.cursor()
        assert cur.execute("SELECT id, v FROM t ORDER BY id") is cur
        assert [d[0] for d in cur.description] == ["id", "v"]
        row = cur.fetchone()
        assert isinstance(row, Row)
        assert (row.id, row.v) == (0, "v0")
        assert row["v"] == "v0" and row[1] == "v0"
        assert len(cur.fetchmany(2)) == 2
        assert len(cur.fetchall()) == 2
        assert cur.fetchone() is None

    def test_iteration_and_tuple_compat(self):
        conn = connect(seeded_db())
        rows = list(conn.cursor().execute("SELECT id FROM t ORDER BY id"))
        assert rows == [(0,), (1,), (2,), (3,), (4,)]

    def test_dml_sets_rowcount_and_lastrowid(self):
        conn = connect(seeded_db())
        cur = conn.cursor().execute("INSERT INTO t VALUES (?, ?)", (9, "n"))
        assert cur.description is None
        assert cur.rowcount == 1
        assert cur.lastrowid is not None

    def test_executemany_accumulates_rowcount(self):
        conn = connect(seeded_db())
        cur = conn.cursor().executemany(
            "INSERT INTO t VALUES (?, ?)", [(10, "a"), (11, "b"), (12, "c")]
        )
        assert cur.rowcount == 3
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 8

    def test_closed_cursor_refuses_work(self):
        conn = connect(seeded_db())
        with conn.cursor() as cur:
            cur.execute("SELECT * FROM t")
        with pytest.raises(InterfaceError, match="cursor is closed"):
            cur.fetchall()


class TestReadPreferences:
    def make_cluster(self) -> ReplicatedDatabase:
        cluster = ReplicatedDatabase(seeded_db(), n_replicas=2, mode="async")
        cluster.catch_up()
        return cluster

    def test_replica_preference_serves_from_replicas(self):
        cluster = self.make_cluster()
        conn = connect(cluster)
        for _ in range(4):
            conn.execute("SELECT COUNT(*) FROM t")
        assert cluster.stats["replica_reads"] == 4

    def test_primary_preference_pins_reads(self):
        cluster = self.make_cluster()
        conn = connect(cluster, read_preference="primary")
        for _ in range(4):
            conn.execute("SELECT COUNT(*) FROM t")
        assert cluster.stats["replica_reads"] == 0
        assert cluster.stats["primary_reads"] == 4

    def test_read_your_writes_under_lag(self):
        cluster = self.make_cluster()
        conn = connect(cluster)
        conn.execute("UPDATE t SET v = ? WHERE id = ?", ("fresh", 1))
        # Replicas have not applied the update; the session floor must
        # force the read to the primary.
        assert (
            conn.execute("SELECT v FROM t WHERE id = 1").scalar() == "fresh"
        )
        assert cluster.stats["stale_fallbacks"] == 1

    def test_wait_preference_catches_up_instead(self):
        cluster = self.make_cluster()
        conn = connect(cluster, read_preference="wait")
        conn.execute("UPDATE t SET v = ? WHERE id = ?", ("w", 1))
        assert conn.execute("SELECT v FROM t WHERE id = 1").scalar() == "w"
        assert cluster.stats["catch_up_waits"] == 1
        assert cluster.stats["stale_fallbacks"] == 0

    def test_read_preference_reassignment_reaches_sharded_routing(self):
        sharded = ShardedDatabase(2, shard_keys={"t": "id"})
        conn = connect(sharded, read_preference="replica")
        conn.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        conn.execute("INSERT INTO t VALUES (?, ?)", (1, "a"))
        sharded.attach_replicas(1)
        conn.execute("SELECT COUNT(*) FROM t")
        assert conn._router().on_stale == "primary"
        conn.read_preference = "wait"
        conn.execute("UPDATE t SET v = ? WHERE id = ?", ("b", 1))
        conn.execute("SELECT v FROM t WHERE id = 1")
        assert conn._router().on_stale == "wait"
        assert conn._router().stats["catch_up_waits"] >= 1

    def test_sharded_replica_routing(self):
        sharded = ShardedDatabase(2, shard_keys={"t": "id"})
        conn = connect(sharded)
        conn.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        for i in range(6):
            conn.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
        sharded.attach_replicas(1)
        sharded.catch_up_replicas()
        # Same connection: reads now route through the per-shard replica
        # sets, and read-your-writes still holds under lag.
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 6
        conn.execute("UPDATE t SET v = ? WHERE id = ?", ("fresh", 3))
        assert (
            conn.execute("SELECT v FROM t WHERE id = 3").scalar() == "fresh"
        )


class TestResultSetErgonomics:
    def test_one_returns_attribute_row(self):
        conn = connect(seeded_db())
        row = conn.execute("SELECT id, v FROM t WHERE id = 3").one()
        assert row.v == "v3" and row == (3, "v3")
        assert row.as_dict() == {"id": 3, "v": "v3"}

    def test_one_rejects_zero_and_many(self):
        conn = connect(seeded_db())
        with pytest.raises(ExecutionError, match="exactly one row"):
            conn.execute("SELECT * FROM t WHERE id = 99").one()
        with pytest.raises(ExecutionError, match="exactly one row"):
            conn.execute("SELECT * FROM t").one()

    def test_as_rows(self):
        conn = connect(seeded_db())
        rows = conn.execute("SELECT id, v FROM t ORDER BY id").as_rows()
        assert [r.id for r in rows] == [0, 1, 2, 3, 4]

    def test_row_unknown_column(self):
        conn = connect(seeded_db())
        row = conn.execute("SELECT id FROM t WHERE id = 1").one()
        with pytest.raises(AttributeError, match="nope"):
            row.nope
        with pytest.raises(ExecutionError, match="nope"):
            row["nope"]

    def test_duplicate_output_names_keep_first_slot(self):
        conn = connect(seeded_db())
        row = conn.execute("SELECT id, id + 10 AS id FROM t WHERE id = 2").one()
        assert row == (2, 12)
        assert row.id == 2  # first occurrence wins, positions still work
