"""Plan cache: cached plans must be invisible except for speed.

Differential tests: every query is answered once through a warm cache and
once with the cache disabled (fresh planning); results must be identical,
including across DDL (CREATE INDEX / DROP INDEX / DROP TABLE), which bumps
the catalog epoch and invalidates cached plans.
"""

import pytest

from repro.db import Database
from repro.db.txn.manager import IsolationLevel
from repro.errors import SchemaError


def fresh_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE items (id INTEGER, grp TEXT, val FLOAT)")
    txn = db.begin()
    for i in range(200):
        db.execute(
            "INSERT INTO items VALUES (?, ?, ?)",
            (i, f"g{i % 10}", float(i % 7)),
            txn=txn,
        )
    txn.commit()
    return db


QUERIES = [
    ("SELECT * FROM items WHERE id = ?", (17,)),
    ("SELECT grp, COUNT(*) FROM items GROUP BY grp ORDER BY grp", ()),
    ("SELECT val FROM items WHERE id > ? AND id <= ? ORDER BY id", (20, 40)),
    ("SELECT DISTINCT grp FROM items WHERE val = ? ORDER BY grp", (3.0,)),
]


def differential(db: Database, sql: str, params=()):
    """Execute with the plan cache on and off; assert identical results."""
    cached = db.execute(sql, params)
    cached_again = db.execute(sql, params)
    db.plan_cache_enabled = False
    try:
        fresh = db.execute(sql, params)
    finally:
        db.plan_cache_enabled = True
    assert cached.rows == fresh.rows == cached_again.rows
    assert cached.columns == fresh.columns
    return cached.rows


class TestPlanCacheDifferential:
    def test_repeated_queries_hit_the_cache(self):
        db = fresh_db()
        for sql, params in QUERIES:
            differential(db, sql, params)
        assert db.plan_cache_stats["hits"] >= len(QUERIES)

    def test_create_index_bumps_epoch_and_replans(self):
        db = fresh_db()
        sql, params = "SELECT val FROM items WHERE id = ?", (42,)
        before = differential(db, sql, params)
        epoch = db.catalog_epoch
        db.execute("CREATE INDEX ix_id ON items (id)")
        assert db.catalog_epoch > epoch
        assert any("probe=ix_id" in line for line in db.explain(sql))
        assert differential(db, sql, params) == before

    def test_drop_index_bumps_epoch_and_replans(self):
        db = fresh_db()
        db.execute("CREATE INDEX ix_id ON items (id)")
        sql, params = "SELECT val FROM items WHERE id = ?", (42,)
        before = differential(db, sql, params)
        assert any("probe=ix_id" in line for line in db.explain(sql))
        epoch = db.catalog_epoch
        db.execute("DROP INDEX ix_id ON items")
        assert db.catalog_epoch > epoch
        assert not any("probe" in line for line in db.explain(sql))
        assert differential(db, sql, params) == before

    def test_drop_and_recreate_table_invalidates_plans(self):
        db = fresh_db()
        sql = "SELECT COUNT(*) FROM items"
        assert db.execute(sql).scalar() == 200
        db.execute("DROP TABLE items")
        db.execute("CREATE TABLE items (id INTEGER, grp TEXT, val FLOAT)")
        db.execute("INSERT INTO items VALUES (1, 'g', 0.0)")
        # A stale plan would still reference the dropped table's store.
        assert db.execute(sql).scalar() == 1

    def test_sorted_index_ddl_invalidates_range_plans(self):
        db = fresh_db()
        sql, params = "SELECT id FROM items WHERE id > ? AND id < ?", (5, 9)
        before = differential(db, sql, params)
        db.execute("CREATE SORTED INDEX sx_id ON items (id)")
        assert any("range=sx_id" in line for line in db.explain(sql))
        assert differential(db, sql, params) == before

    def test_isolation_level_is_part_of_the_key(self):
        db = fresh_db()
        db.execute("CREATE INDEX ix_id ON items (id)")
        sql, params = "SELECT val FROM items WHERE id = ?", (11,)
        serializable = db.execute(sql, params)
        txn = db.begin(isolation=IsolationLevel.SNAPSHOT)
        snapshot = db.execute(sql, params, txn=txn)
        txn.commit()
        assert serializable.rows == snapshot.rows
        # Distinct cache entries: probes apply only under SERIALIZABLE.
        keys = {key[2] for key in db._plan_cache}
        assert IsolationLevel.SERIALIZABLE in keys
        assert IsolationLevel.SNAPSHOT in keys


class TestDmlPlanCache:
    """UPDATE/DELETE predicates compile once per (sql, catalog epoch)."""

    def test_repeated_update_hits_cache(self):
        db = fresh_db()
        sql = "UPDATE items SET val = val + 1 WHERE id = ?"
        for i in range(5):
            db.execute(sql, (i,))
        assert db.plan_cache_stats["dml_misses"] == 1
        assert db.plan_cache_stats["dml_hits"] == 4

    def test_repeated_delete_hits_cache(self):
        db = fresh_db()
        sql = "DELETE FROM items WHERE id = ?"
        for i in range(3):
            db.execute(sql, (i,))
        assert db.plan_cache_stats["dml_misses"] == 1
        assert db.plan_cache_stats["dml_hits"] == 2
        assert db.execute("SELECT COUNT(*) FROM items").scalar() == 197

    def test_cached_dml_matches_fresh_compilation(self):
        db = fresh_db()
        sql = "UPDATE items SET val = ? WHERE grp = ?"
        assert db.execute(sql, (50.0, "g3")).rowcount == 20
        db.plan_cache_enabled = False
        try:
            fresh_count = db.execute(sql, (50.0, "g3")).rowcount
        finally:
            db.plan_cache_enabled = True
        assert fresh_count == 20
        assert db.execute(sql, (50.0, "g3")).rowcount == 20
        assert (
            db.execute("SELECT COUNT(*) FROM items WHERE val = 50.0").scalar()
            == 20
        )

    def test_ddl_invalidates_dml_plans(self):
        db = fresh_db()
        sql = "DELETE FROM items WHERE id = ?"
        db.execute(sql, (0,))
        db.execute("DROP TABLE items")
        db.execute("CREATE TABLE items (id INTEGER, extra TEXT, grp TEXT, val FLOAT)")
        db.execute("INSERT INTO items VALUES (7, 'x', 'g', 1.0)")
        # A stale compiled plan would index the old column layout.
        assert db.execute(sql, (7,)).rowcount == 1
        assert db.plan_cache_stats["dml_misses"] == 2

    def test_delete_without_where_caches(self):
        db = fresh_db()
        sql = "DELETE FROM items"
        db.execute(sql)
        db.execute(sql)
        assert db.plan_cache_stats["dml_hits"] == 1
        assert db.execute("SELECT COUNT(*) FROM items").scalar() == 0

    def test_txn_scoped_dml_shares_cache(self):
        db = fresh_db()
        sql = "UPDATE items SET val = 0.0 WHERE id = ?"
        txn = db.begin()
        db.execute(sql, (1,), txn=txn)
        db.execute(sql, (2,), txn=txn)
        txn.commit()
        db.execute(sql, (3,))
        assert db.plan_cache_stats["dml_misses"] == 1
        assert db.plan_cache_stats["dml_hits"] == 2


class TestDropIndexDdl:
    def test_drop_missing_index_raises(self):
        db = fresh_db()
        with pytest.raises(SchemaError):
            db.execute("DROP INDEX nope ON items")

    def test_drop_index_if_exists_is_silent(self):
        db = fresh_db()
        db.execute("DROP INDEX IF EXISTS nope ON items")

    def test_dropped_unique_index_stops_enforcing(self):
        db = fresh_db()
        db.execute("CREATE UNIQUE INDEX ux ON items (id)")
        db.execute("DROP INDEX ux ON items")
        db.execute("INSERT INTO items VALUES (1, 'dup', 0.0)")
        assert (
            db.execute("SELECT COUNT(*) FROM items WHERE id = 1").scalar() == 2
        )

    def test_constraint_backing_index_cannot_be_dropped(self):
        db = Database()
        db.execute(
            "CREATE TABLE users (id INTEGER, email TEXT, UNIQUE (email))"
        )
        [uq_name] = db.index_set("users").indexes
        with pytest.raises(SchemaError, match="UNIQUE constraint"):
            db.execute(f"DROP INDEX {uq_name} ON users")
        # Enforcement survives the attempt.
        db.execute("INSERT INTO users VALUES (1, 'a@x')")
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO users VALUES (2, 'a@x')")

    def test_drop_index_if_exists_on_missing_table_is_silent(self):
        db = fresh_db()
        db.execute("CREATE INDEX ix_id ON items (id)")
        db.execute("DROP TABLE items")
        # DROP TABLE removed the index implicitly; idempotent cleanup
        # scripts must not crash.
        db.execute("DROP INDEX IF EXISTS ix_id ON items")
        with pytest.raises(SchemaError):
            db.execute("DROP INDEX ix_id ON items")


class TestShardedMergePlanCache:
    """Coordinator-side merge-plan cache: hit/miss accounting and reuse."""

    def build(self):
        from repro.db import ShardedDatabase

        sharded = ShardedDatabase(3, shard_keys={"items": "id"})
        sharded.execute("CREATE TABLE items (id INTEGER, grp TEXT, val FLOAT)")
        gtxn = sharded.begin()
        for i in range(60):
            sharded.execute(
                "INSERT INTO items VALUES (?, ?, ?)",
                (i, f"g{i % 5}", float(i % 7)),
                txn=gtxn,
            )
        gtxn.commit()
        return sharded

    def test_scatter_plan_hits_and_misses(self):
        sharded = self.build()
        sql = "SELECT id, val FROM items WHERE val > ? ORDER BY id"
        first = sharded.execute(sql, (3.0,))
        assert sharded.stats["select_cache_misses"] == 1
        assert sharded.stats["select_cache_hits"] == 0
        again = sharded.execute(sql, (3.0,))
        assert sharded.stats["select_cache_hits"] == 1
        assert again.rows == first.rows

    def test_aggregate_decomposition_hits_and_misses(self):
        sharded = self.build()
        sql = "SELECT grp, COUNT(*), SUM(val) FROM items GROUP BY grp ORDER BY grp"
        first = sharded.execute(sql)
        assert sharded.stats["agg_cache_misses"] == 1
        again = sharded.execute(sql)
        assert sharded.stats["agg_cache_hits"] == 1
        assert again.rows == first.rows

    def test_ddl_invalidates_merged_plans(self):
        sharded = self.build()
        sql = "SELECT id, val FROM items WHERE val > ? ORDER BY id"
        before = sharded.execute(sql, (3.0,)).rows
        sharded.execute("CREATE INDEX ix_val ON items (val)")
        after = sharded.execute(sql, (3.0,))
        # The epoch moved: a fresh compile, not a stale hit.
        assert sharded.stats["select_cache_misses"] == 2
        assert after.rows == before

    def test_cached_plan_results_stable_across_writes(self):
        sharded = self.build()
        sql = "SELECT COUNT(*) FROM items WHERE id < ?"
        assert sharded.execute(sql, (30,)).scalar() == 30
        sharded.execute("DELETE FROM items WHERE id = 5")
        assert sharded.execute(sql, (30,)).scalar() == 29
        assert sharded.stats["agg_cache_hits"] >= 1

    def test_replica_served_reads_share_the_merge_plan(self):
        sharded = self.build()
        sharded.attach_replicas(1, mode="sync")
        from repro.db.replication import ShardedReadRouter

        router = ShardedReadRouter(sharded)
        sql = "SELECT id, val FROM items WHERE val > ? ORDER BY id"
        via_primary = sharded.execute(sql, (3.0,))
        misses = sharded.stats["select_cache_misses"]
        via_replica = router.execute(sql, (3.0,))
        # Same merged plan entry: per-database scan nodes differ, but the
        # coordinator plan is shared (a hit, not a recompile).
        assert sharded.stats["select_cache_misses"] == misses
        assert sharded.stats["select_cache_hits"] >= 1
        assert via_replica.rows == via_primary.rows
