"""Isolation level semantics: SERIALIZABLE (2PL), SNAPSHOT, READ_COMMITTED."""

import pytest

from repro.db import Database, IsolationLevel
from repro.errors import IntegrityError, LockTimeoutError, SerializationError


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE t (k TEXT NOT NULL, v INTEGER)")
    database.execute("INSERT INTO t VALUES ('a', 1)")
    return database


class TestSnapshotIsolation:
    def test_repeatable_reads_within_snapshot(self, db):
        reader = db.begin(IsolationLevel.SNAPSHOT)
        assert db.execute("SELECT v FROM t", txn=reader).scalar() == 1
        db.execute("UPDATE t SET v = 2")  # concurrent committed update
        # The snapshot still sees the old value.
        assert db.execute("SELECT v FROM t", txn=reader).scalar() == 1
        reader.commit()
        assert db.execute("SELECT v FROM t").scalar() == 2

    def test_snapshot_does_not_see_later_inserts(self, db):
        reader = db.begin(IsolationLevel.SNAPSHOT)
        db.execute("INSERT INTO t VALUES ('b', 2)")
        assert db.execute("SELECT COUNT(*) FROM t", txn=reader).scalar() == 1
        reader.commit()

    def test_first_committer_wins(self, db):
        t1 = db.begin(IsolationLevel.SNAPSHOT)
        t2 = db.begin(IsolationLevel.SNAPSHOT)
        db.execute("UPDATE t SET v = 10 WHERE k = 'a'", txn=t1)
        db.execute("UPDATE t SET v = 20 WHERE k = 'a'", txn=t2)
        t1.commit()
        with pytest.raises(SerializationError):
            t2.commit()
        assert db.execute("SELECT v FROM t").scalar() == 10

    def test_delete_delete_conflict(self, db):
        t1 = db.begin(IsolationLevel.SNAPSHOT)
        t2 = db.begin(IsolationLevel.SNAPSHOT)
        db.execute("DELETE FROM t WHERE k = 'a'", txn=t1)
        db.execute("DELETE FROM t WHERE k = 'a'", txn=t2)
        t1.commit()
        with pytest.raises(SerializationError):
            t2.commit()

    def test_disjoint_writes_both_commit(self, db):
        db.execute("INSERT INTO t VALUES ('b', 2)")
        t1 = db.begin(IsolationLevel.SNAPSHOT)
        t2 = db.begin(IsolationLevel.SNAPSHOT)
        db.execute("UPDATE t SET v = 10 WHERE k = 'a'", txn=t1)
        db.execute("UPDATE t SET v = 20 WHERE k = 'b'", txn=t2)
        t1.commit()
        t2.commit()
        assert sorted(db.execute("SELECT v FROM t").column("v")) == [10, 20]

    def test_write_skew_is_allowed_under_si(self, db):
        """The classic SI anomaly — present by design (not serializable)."""
        db.execute("INSERT INTO t VALUES ('b', 1)")
        t1 = db.begin(IsolationLevel.SNAPSHOT)
        t2 = db.begin(IsolationLevel.SNAPSHOT)
        # Each txn reads the OTHER row's value and writes its own row.
        v_b = db.execute("SELECT v FROM t WHERE k = 'b'", txn=t1).scalar()
        v_a = db.execute("SELECT v FROM t WHERE k = 'a'", txn=t2).scalar()
        db.execute("UPDATE t SET v = ? WHERE k = 'a'", (v_b * 10,), txn=t1)
        db.execute("UPDATE t SET v = ? WHERE k = 'b'", (v_a * 10,), txn=t2)
        t1.commit()
        t2.commit()  # no conflict: disjoint write sets
        assert sorted(db.execute("SELECT v FROM t").column("v")) == [10, 10]

    def test_si_insert_unique_conflict_caught_at_commit(self):
        db = Database()
        db.execute("CREATE TABLE u (k TEXT UNIQUE)")
        t1 = db.begin(IsolationLevel.SNAPSHOT)
        t2 = db.begin(IsolationLevel.SNAPSHOT)
        db.execute("INSERT INTO u VALUES ('x')", txn=t1)
        db.execute("INSERT INTO u VALUES ('x')", txn=t2)  # invisible to t1
        t1.commit()
        with pytest.raises(IntegrityError):
            t2.commit()

    def test_toctou_duplicates_possible_without_constraint(self):
        """The MDL-59854 anatomy at the isolation level: two SI check+insert
        transactions on an unconstrained table both insert."""
        db = Database()
        db.execute("CREATE TABLE sub (u TEXT, f TEXT)")
        t1 = db.begin(IsolationLevel.SNAPSHOT)
        t2 = db.begin(IsolationLevel.SNAPSHOT)
        n1 = db.execute("SELECT COUNT(*) FROM sub", txn=t1).scalar()
        n2 = db.execute("SELECT COUNT(*) FROM sub", txn=t2).scalar()
        assert n1 == n2 == 0
        db.execute("INSERT INTO sub VALUES ('U1', 'F2')", txn=t1)
        db.execute("INSERT INTO sub VALUES ('U1', 'F2')", txn=t2)
        t1.commit()
        t2.commit()
        assert db.execute("SELECT COUNT(*) FROM sub").scalar() == 2


class TestReadCommitted:
    def test_sees_commits_between_statements(self, db):
        reader = db.begin(IsolationLevel.READ_COMMITTED)
        assert db.execute("SELECT v FROM t", txn=reader).scalar() == 1
        db.execute("UPDATE t SET v = 2")
        # Unlike SNAPSHOT, the next statement sees the new value.
        assert db.execute("SELECT v FROM t", txn=reader).scalar() == 2
        reader.commit()

    def test_lost_update_possible(self, db):
        """READ_COMMITTED permits last-writer-wins lost updates."""
        t1 = db.begin(IsolationLevel.READ_COMMITTED)
        t2 = db.begin(IsolationLevel.READ_COMMITTED)
        db.execute("UPDATE t SET v = 10 WHERE k = 'a'", txn=t1)
        t1.commit()
        db.execute("UPDATE t SET v = 20 WHERE k = 'a'", txn=t2)
        t2.commit()  # no SerializationError: RC does not check
        assert db.execute("SELECT v FROM t").scalar() == 20


class TestSerializable2PL:
    def test_writers_block_writers(self, db):
        t1 = db.begin(IsolationLevel.SERIALIZABLE)
        db.execute("UPDATE t SET v = 10 WHERE k = 'a'", txn=t1)
        t2 = db.begin(IsolationLevel.SERIALIZABLE)
        with pytest.raises(LockTimeoutError):
            db.execute("UPDATE t SET v = 20 WHERE k = 'a'", txn=t2)

    def test_readers_block_writers(self, db):
        t1 = db.begin(IsolationLevel.SERIALIZABLE)
        db.execute("SELECT * FROM t", txn=t1)
        t2 = db.begin(IsolationLevel.SERIALIZABLE)
        with pytest.raises(LockTimeoutError):
            db.execute("INSERT INTO t VALUES ('b', 2)", txn=t2)

    def test_readers_share(self, db):
        t1 = db.begin(IsolationLevel.SERIALIZABLE)
        t2 = db.begin(IsolationLevel.SERIALIZABLE)
        db.execute("SELECT * FROM t", txn=t1)
        db.execute("SELECT * FROM t", txn=t2)
        t1.commit()
        t2.commit()

    def test_locks_released_on_commit(self, db):
        t1 = db.begin(IsolationLevel.SERIALIZABLE)
        db.execute("UPDATE t SET v = 10 WHERE k = 'a'", txn=t1)
        t1.commit()
        db.execute("UPDATE t SET v = 20 WHERE k = 'a'")  # no conflict now
        assert db.execute("SELECT v FROM t").scalar() == 20

    def test_locks_released_on_abort(self, db):
        t1 = db.begin(IsolationLevel.SERIALIZABLE)
        db.execute("UPDATE t SET v = 10 WHERE k = 'a'", txn=t1)
        t1.abort()
        db.execute("UPDATE t SET v = 20 WHERE k = 'a'")
        assert db.execute("SELECT v FROM t").scalar() == 20
