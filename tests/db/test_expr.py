"""Unit tests for expression evaluation (interpreter path) and helpers."""

import pytest

from repro.db.expr import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Param,
    Scope,
    UnaryOp,
    assign_param_indexes,
    conjoin,
    contains_aggregate,
    split_conjuncts,
    truthy,
)
from repro.errors import ExecutionError


def scope(**bindings) -> Scope:
    s = Scope()
    for name, value in bindings.items():
        s.bind("t", name, value)
    return s


class TestScope:
    def test_qualified_and_unqualified(self):
        s = scope(a=1)
        assert s.lookup("t", "a") == 1
        assert s.lookup(None, "a") == 1

    def test_case_insensitive(self):
        s = scope(UserId="U1")
        assert s.lookup(None, "userid") == "U1"
        assert s.lookup("T", "USERID") == "U1"

    def test_ambiguous_unqualified(self):
        s = Scope()
        s.bind("a", "x", 1)
        s.bind("b", "x", 2)
        with pytest.raises(ExecutionError, match="ambiguous"):
            s.lookup(None, "x")
        assert s.lookup("a", "x") == 1
        assert s.lookup("b", "x") == 2

    def test_unknown_column(self):
        with pytest.raises(ExecutionError):
            scope(a=1).lookup(None, "zzz")


class TestThreeValuedLogic:
    def test_comparison_with_null_is_null(self):
        expr = BinaryOp("=", Literal(None), Literal(1))
        assert expr.eval(Scope()) is None

    def test_and_kleene(self):
        cases = [
            (True, True, True),
            (True, False, False),
            (False, None, False),
            (None, True, None),
            (None, None, None),
        ]
        for a, b, expected in cases:
            expr = BinaryOp("AND", Literal(a), Literal(b))
            assert expr.eval(Scope()) is expected

    def test_or_kleene(self):
        cases = [
            (False, False, False),
            (True, None, True),
            (None, True, True),
            (False, None, None),
            (None, None, None),
        ]
        for a, b, expected in cases:
            expr = BinaryOp("OR", Literal(a), Literal(b))
            assert expr.eval(Scope()) is expected

    def test_not_null_is_null(self):
        assert UnaryOp("NOT", Literal(None)).eval(Scope()) is None

    def test_truthy_only_on_true(self):
        assert truthy(True)
        assert not truthy(None)
        assert not truthy(False)
        assert not truthy(1)


class TestOperators:
    def test_arithmetic(self):
        s = Scope()
        assert BinaryOp("+", Literal(2), Literal(3)).eval(s) == 5
        assert BinaryOp("-", Literal(2), Literal(3)).eval(s) == -1
        assert BinaryOp("*", Literal(2), Literal(3)).eval(s) == 6
        assert BinaryOp("%", Literal(7), Literal(3)).eval(s) == 1

    def test_integer_division_stays_integer_when_exact(self):
        assert BinaryOp("/", Literal(6), Literal(3)).eval(Scope()) == 2
        assert isinstance(BinaryOp("/", Literal(6), Literal(3)).eval(Scope()), int)
        assert BinaryOp("/", Literal(7), Literal(2)).eval(Scope()) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            BinaryOp("/", Literal(1), Literal(0)).eval(Scope())

    def test_arithmetic_with_null(self):
        assert BinaryOp("+", Literal(None), Literal(1)).eval(Scope()) is None

    def test_concat(self):
        assert BinaryOp("||", Literal("a"), Literal("b")).eval(Scope()) == "ab"

    def test_comparisons(self):
        s = Scope()
        assert BinaryOp("<", Literal(1), Literal(2)).eval(s) is True
        assert BinaryOp(">=", Literal(2), Literal(2)).eval(s) is True
        assert BinaryOp("!=", Literal(1), Literal(2)).eval(s) is True
        assert BinaryOp("<>", Literal(1), Literal(1)).eval(s) is False

    def test_unary_minus(self):
        assert UnaryOp("-", Literal(5)).eval(Scope()) == -5
        assert UnaryOp("-", Literal(None)).eval(Scope()) is None


class TestPredicates:
    def test_is_null(self):
        assert IsNull(Literal(None)).eval(Scope()) is True
        assert IsNull(Literal(1)).eval(Scope()) is False
        assert IsNull(Literal(1), negated=True).eval(Scope()) is True

    def test_in_list(self):
        expr = InList(Literal(2), [Literal(1), Literal(2)])
        assert expr.eval(Scope()) is True
        expr = InList(Literal(3), [Literal(1), Literal(2)])
        assert expr.eval(Scope()) is False

    def test_in_list_null_semantics(self):
        # 3 IN (1, NULL) is NULL (unknown), not FALSE.
        expr = InList(Literal(3), [Literal(1), Literal(None)])
        assert expr.eval(Scope()) is None
        # 1 IN (1, NULL) is TRUE.
        expr = InList(Literal(1), [Literal(1), Literal(None)])
        assert expr.eval(Scope()) is True

    def test_not_in(self):
        expr = InList(Literal(3), [Literal(1)], negated=True)
        assert expr.eval(Scope()) is True

    def test_between(self):
        assert Between(Literal(2), Literal(1), Literal(3)).eval(Scope()) is True
        assert Between(Literal(0), Literal(1), Literal(3)).eval(Scope()) is False
        assert (
            Between(Literal(0), Literal(1), Literal(3), negated=True).eval(Scope())
            is True
        )

    def test_like_patterns(self):
        def like(value, pattern):
            return Like(Literal(value), Literal(pattern)).eval(Scope())

        assert like("hello", "h%") is True
        assert like("hello", "%llo") is True
        assert like("hello", "h_llo") is True
        assert like("hello", "x%") is False
        assert like("h.llo", "h.llo") is True  # dot is literal
        assert like("hxllo", "h.llo") is False

    def test_case(self):
        expr = Case(
            [(BinaryOp("=", Param(0), Literal(1)), Literal("one"))],
            Literal("other"),
        )
        s = Scope(params=(1,))
        assert expr.eval(s) == "one"
        s = Scope(params=(2,))
        assert expr.eval(s) == "other"

    def test_case_without_else_yields_null(self):
        expr = Case([(Literal(False), Literal("x"))], None)
        assert expr.eval(Scope()) is None


class TestHelpers:
    def test_split_and_conjoin(self):
        a, b, c = Literal(1), Literal(2), Literal(3)
        tree = BinaryOp("AND", BinaryOp("AND", a, b), c)
        assert split_conjuncts(tree) == [a, b, c]
        rebuilt = conjoin([a, b, c])
        assert split_conjuncts(rebuilt) == [a, b, c]
        assert conjoin([]) is None
        assert split_conjuncts(None) == []

    def test_contains_aggregate(self):
        assert contains_aggregate(FuncCall("COUNT", [], star=True))
        assert contains_aggregate(
            BinaryOp("+", FuncCall("SUM", [ColumnRef("a")]), Literal(1))
        )
        assert not contains_aggregate(FuncCall("UPPER", [ColumnRef("a")]))

    def test_assign_param_indexes(self):
        p1, p2 = Param(-1), Param(-1)
        expr = BinaryOp("AND", p1, p2)
        count = assign_param_indexes([expr])
        assert count == 2
        assert (p1.index, p2.index) == (0, 1)

    def test_param_out_of_range(self):
        with pytest.raises(ExecutionError):
            Param(2).eval(Scope(params=(1,)))

    def test_sql_rendering_roundtrip_shapes(self):
        expr = BinaryOp(
            "AND",
            BinaryOp("=", ColumnRef("a", "t"), Literal("x")),
            IsNull(ColumnRef("b"), negated=True),
        )
        text = expr.sql()
        assert "t.a" in text and "'x'" in text and "IS NOT NULL" in text
