"""Unit tests for the paged storage tier's building blocks.

Slotted pages (checksums, slot directory, in-place patches, overflow
chains), page files (dual-slot atomic headers, free list, recovery
scan), and the LRU buffer pool (pinning, eviction, dirty write-back).
"""

import os
import struct

import pytest

from repro.db.pages.buffer import BufferPool
from repro.db.pages.file_manager import (
    HEADER_AREA,
    HEADER_SLOT_SIZE,
    PageFile,
    PageFileManager,
    table_file_name,
)
from repro.db.pages.page import (
    KIND_DATA,
    KIND_FREE,
    KIND_OVERFLOW,
    RECORD_END_OFFSET,
    Page,
    decode_record,
    encode_record,
    encode_values,
)
from repro.errors import BufferPoolError, PageCorruptError, StorageError


class TestPage:
    def test_insert_and_read_roundtrip(self):
        page = Page(0, 512)
        record = encode_record(7, 3, None, 0, encode_values(("a", 1)))
        slot = page.insert_record(record)
        assert slot == 0
        row_id, begin, end, flags, payload = decode_record(page.read_record(slot))
        assert (row_id, begin, end, flags) == (7, 3, None, 0)
        assert payload == encode_values(("a", 1))

    def test_fills_up_and_rejects_when_full(self):
        page = Page(0, 512)
        record = encode_record(1, 1, None, 0, b"x" * 40)
        slots = []
        while True:
            slot = page.insert_record(record)
            if slot is None:
                break
            slots.append(slot)
        assert len(slots) > 1
        assert page.free_space() < len(record)
        # Every inserted record is still intact.
        for slot in slots:
            assert decode_record(page.read_record(slot))[4] == b"x" * 40

    def test_patch_record_seals_end_in_place(self):
        page = Page(0, 512)
        slot = page.insert_record(encode_record(1, 5, None, 0, b"p"))
        page.patch_record(slot, RECORD_END_OFFSET, struct.pack("<q", 9))
        assert decode_record(page.read_record(slot))[2] == 9

    def test_patch_beyond_record_rejected(self):
        page = Page(0, 512)
        slot = page.insert_record(encode_record(1, 1, None, 0, b""))
        with pytest.raises(StorageError):
            page.patch_record(slot, 24, b"x" * 64)

    def test_disk_roundtrip_verifies_checksum(self):
        page = Page(3, 512)
        page.insert_record(encode_record(1, 1, None, 0, b"hello"))
        raw = page.to_disk()
        restored = Page.from_disk(3, raw, 512)
        assert restored.slot_count == 1
        corrupted = bytearray(raw)
        corrupted[100] ^= 0xFF
        with pytest.raises(PageCorruptError):
            Page.from_disk(3, bytes(corrupted), 512)

    def test_from_disk_rejects_wrong_id_and_short_read(self):
        page = Page(2, 512)
        raw = page.to_disk()
        with pytest.raises(PageCorruptError):
            Page.from_disk(5, raw, 512)  # header claims page 2
        with pytest.raises(PageCorruptError):
            Page.from_disk(2, raw[:100], 512)

    def test_overflow_chain_fields(self):
        page = Page(0, 512, kind=KIND_OVERFLOW)
        page.set_overflow(9, b"chunk")
        assert page.read_overflow() == (9, b"chunk")
        page.set_overflow(None, b"tail")
        assert page.read_overflow() == (None, b"tail")

    def test_free_page_next_pointer(self):
        page = Page(0, 512, kind=KIND_FREE)
        page.set_free_next(4)
        assert page.free_next() == 4
        page.set_free_next(None)
        assert page.free_next() is None

    def test_kind_specific_accessors_guarded(self):
        data = Page(0, 512, kind=KIND_DATA)
        with pytest.raises(StorageError):
            data.set_overflow(None, b"")
        with pytest.raises(StorageError):
            data.free_next()

    def test_page_size_bounds(self):
        with pytest.raises(StorageError):
            Page(0, 128)
        with pytest.raises(StorageError):
            Page(0, 1 << 20)


class TestPageFile:
    def test_create_write_reopen(self, tmp_path):
        path = str(tmp_path / "t.pages")
        pf = PageFile.create(path, 512)
        pid = pf.allocate()
        page = Page(pid, 512)
        page.insert_record(encode_record(1, 1, None, 0, b"v"))
        pf.write_page(page)
        pf.write_header(flushed_csn=1)
        pf.close()

        reopened = PageFile.open(path)
        assert reopened.page_size == 512
        assert reopened.npages == 1
        assert reopened.meta["flushed_csn"] == 1
        back = reopened.read_page(pid)
        assert decode_record(back.read_record(0))[4] == b"v"
        reopened.close()

    def test_header_survives_torn_slot(self, tmp_path):
        """A crash mid-header-write corrupts one slot; open falls back to
        the other valid slot instead of failing."""
        path = str(tmp_path / "t.pages")
        pf = PageFile.create(path, 512)
        pf.write_header(flushed_csn=10)  # version 2 -> slot 0
        pf.write_header(flushed_csn=20)  # version 3 -> slot 1
        version = pf._header_version
        pf.close()
        # Tear the most recent slot (the one version 3 landed in).
        with open(path, "r+b") as fh:
            fh.seek((version % 2) * HEADER_SLOT_SIZE)
            fh.write(b"\x00" * 64)
        reopened = PageFile.open(path)
        assert reopened.meta["flushed_csn"] == 10
        reopened.close()

    def test_open_without_any_valid_header_fails(self, tmp_path):
        path = str(tmp_path / "t.pages")
        with open(path, "wb") as fh:
            fh.write(b"\x00" * HEADER_AREA)
        with pytest.raises(PageCorruptError):
            PageFile.open(path)

    def test_freelist_reuse(self, tmp_path):
        pf = PageFile.create(str(tmp_path / "t.pages"), 512)
        pids = [pf.allocate() for _ in range(3)]
        for pid in pids:
            pf.write_page(Page(pid, 512))
        pf.free(pids[1])
        pf.free(pids[2])
        # LIFO pop order; no file growth while the list is non-empty.
        assert pf.allocate() == pids[2]
        assert pf.allocate() == pids[1]
        assert pf.allocate() == 3
        assert pf.stats["freelist_reuses"] == 2
        pf.close()

    def test_freelist_persists_via_header(self, tmp_path):
        path = str(tmp_path / "t.pages")
        pf = PageFile.create(path, 512)
        pid = pf.allocate()
        pf.write_page(Page(pid, 512))
        pf.free(pid)
        pf.write_header()
        pf.close()
        reopened = PageFile.open(path)
        assert reopened.free_head == pid
        assert reopened.allocate() == pid
        reopened.close()

    def test_scan_pages_skips_free_and_unflushed(self, tmp_path):
        pf = PageFile.create(str(tmp_path / "t.pages"), 512)
        kept = pf.allocate()
        freed = pf.allocate()
        pf.write_page(Page(kept, 512))
        pf.write_page(Page(freed, 512))
        pf.free(freed)
        pf.allocate()  # allocated but never written: short tail
        assert [p.page_id for p in pf.scan_pages()] == [kept]
        pf.close()

    def test_npages_trusts_file_size_over_stale_header(self, tmp_path):
        """Pages flushed after the last checkpoint are real data even
        though the durable header predates them."""
        path = str(tmp_path / "t.pages")
        pf = PageFile.create(path, 512)
        pf.allocate()
        pf.write_header()  # header says npages=1
        pid = pf.allocate()  # grows the file past the header's count
        pf.write_page(Page(pid, 512))
        pf.flush()
        pf.close()
        reopened = PageFile.open(path)
        assert reopened.npages == 2
        reopened.close()

    def test_crash_hook_fires_before_writes(self, tmp_path):
        pf = PageFile.create(str(tmp_path / "t.pages"), 512)
        seen = []
        pf.crash_hook = lambda kind, pid: seen.append((kind, pid))
        pid = pf.allocate()
        pf.write_page(Page(pid, 512))
        pf.write_header()
        assert ("page", pid) in seen and ("header", None) in seen
        pf.close()


class TestPageFileManager:
    def test_create_get_drop(self, tmp_path):
        manager = PageFileManager(str(tmp_path), 512)
        pf = manager.create("t")
        assert manager.get("t") is pf
        assert os.path.exists(os.path.join(str(tmp_path), table_file_name("t")))
        manager.drop("t")
        assert pf.defunct
        assert not os.path.exists(
            os.path.join(str(tmp_path), table_file_name("t"))
        )

    def test_double_create_rejected(self, tmp_path):
        manager = PageFileManager(str(tmp_path), 512)
        manager.create("t")
        with pytest.raises(StorageError):
            manager.create("t")

    def test_rewrite_swaps_file_and_defuncts_old(self, tmp_path):
        manager = PageFileManager(str(tmp_path), 512)
        old = manager.create("t")
        new = manager.start_rewrite("t")
        assert new.path.endswith(".rewrite")
        manager.commit_rewrite("t", new)
        assert old.defunct and not new.defunct
        assert manager.get("t") is new
        assert new.path == os.path.join(str(tmp_path), table_file_name("t"))

    def test_table_file_name_escapes(self):
        assert "/" not in table_file_name("weird/名前")
        assert table_file_name("t") == "t.pages"

    def test_stats_aggregate(self, tmp_path):
        manager = PageFileManager(str(tmp_path), 512)
        for key in ("a", "b"):
            pf = manager.create(key)
            pf.write_page(Page(pf.allocate(), 512))
        stats = manager.stats()
        assert stats["files"] == 2
        assert stats["pages_allocated"] == 2
        assert stats["page_writes"] == 2


class TestBufferPool:
    def _file(self, tmp_path, name="t.pages"):
        return PageFile.create(str(tmp_path / name), 512)

    def test_hit_miss_accounting(self, tmp_path):
        pf = self._file(tmp_path)
        pid = pf.allocate()
        pf.write_page(Page(pid, 512))
        pool = BufferPool(4)
        frame = pool.fetch(pf, pid)
        pool.release(frame)
        again = pool.fetch(pf, pid)
        pool.release(again)
        assert again is frame
        assert pool.stats["misses"] == 1 and pool.stats["hits"] == 1
        pf.close()

    def test_eviction_writes_back_dirty_lru(self, tmp_path):
        pf = self._file(tmp_path)
        pool = BufferPool(2)
        pids = []
        for i in range(3):
            pid = pf.allocate()
            page = Page(pid, 512)
            page.insert_record(encode_record(i, 1, None, 0, b"d"))
            frame = pool.adopt(pf, page)
            pool.release(frame, dirty=True)
            pids.append(pid)
        # Capacity 2: admitting the third evicted (and wrote back) the first.
        assert pool.stats["evictions"] == 1
        assert pool.stats["writebacks"] == 1
        assert pool.cached_pages() == 2
        # The evicted page's data really reached disk.
        back = pool.fetch(pf, pids[0])
        assert decode_record(back.page.read_record(0))[0] == 0
        pool.release(back)
        pf.close()

    def test_pinned_frames_never_evicted(self, tmp_path):
        pf = self._file(tmp_path)
        pool = BufferPool(2)
        first = pool.adopt(pf, Page(pf.allocate(), 512))  # stays pinned
        second = pool.adopt(pf, Page(pf.allocate(), 512))
        pool.release(second)
        pool.adopt(pf, Page(pf.allocate(), 512))  # evicts `second`, not `first`
        assert (pf.space_id, first.page.page_id) in pool._frames
        # With everything pinned, admission must fail loudly.
        with pytest.raises(BufferPoolError):
            pool.adopt(pf, Page(pf.allocate(), 512))
        pf.close()

    def test_release_unpinned_rejected(self, tmp_path):
        pf = self._file(tmp_path)
        pool = BufferPool(2)
        frame = pool.adopt(pf, Page(pf.allocate(), 512))
        pool.release(frame)
        with pytest.raises(BufferPoolError):
            pool.release(frame)
        pf.close()

    def test_flush_file_clears_dirty(self, tmp_path):
        pf = self._file(tmp_path)
        pool = BufferPool(4)
        frame = pool.adopt(pf, Page(pf.allocate(), 512))
        pool.release(frame, dirty=True)
        assert pool.flush_file(pf) == 1
        assert not frame.dirty
        assert pool.flush_file(pf) == 0  # idempotent
        pf.close()

    def test_drop_file_discards_without_writeback(self, tmp_path):
        pf = self._file(tmp_path)
        other = self._file(tmp_path, "o.pages")
        pool = BufferPool(8)
        doomed = pool.adopt(pf, Page(pf.allocate(), 512))
        pool.release(doomed, dirty=True)
        keeper = pool.adopt(other, Page(other.allocate(), 512))
        pool.release(keeper)
        writes_before = pf.stats["page_writes"]
        pool.drop_file(pf)
        assert pf.stats["page_writes"] == writes_before
        assert pool.cached_pages() == 1  # the other file's frame survives
        pf.close()
        other.close()

    def test_defunct_file_not_written_on_eviction(self, tmp_path):
        pf = self._file(tmp_path)
        pool = BufferPool(1)
        frame = pool.adopt(pf, Page(pf.allocate(), 512))
        pool.release(frame, dirty=True)
        pf.defunct = True
        pool.adopt(pf, Page(pf.allocate(), 512))  # evicts the dirty frame
        assert pool.stats["writebacks"] == 0
        pf.close()

    def test_snapshot_stats_shape(self, tmp_path):
        pf = self._file(tmp_path)
        pool = BufferPool(4)
        frame = pool.adopt(pf, Page(pf.allocate(), 512))
        stats = pool.snapshot_stats()
        assert stats["capacity"] == 4
        assert stats["cached"] == 1
        assert stats["pinned"] == 1
        assert stats["dirty"] == 1
        pool.release(frame)
        pf.close()
