"""End-to-end cursor streaming and LIMIT/EXISTS short-circuiting.

Covers the streamed ResultSet contract (lazy rows, snapshot pinning,
rowcount semantics), the cursor's O(fetch)-memory behavior, early scan
termination for LIMIT and one(), per-shard LIMIT pushdown with
coordinator early-stop on ShardedDatabase, and the per-statement
read_preference override.
"""

import pytest

from repro.db import (
    Database,
    ReplicatedDatabase,
    ResultSet,
    Row,
    ShardedDatabase,
    connect,
)
from repro.errors import ExecutionError, InterfaceError


def seeded_db(n: int = 100) -> Database:
    db = Database()
    db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
    txn = db.begin()
    for i in range(n):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"), txn=txn)
    txn.commit()
    return db


def count_scanned_rows(db: Database, table: str) -> dict:
    """Instrument a table's store so every scanned row is counted."""
    store = db.store(table)
    counter = {"rows": 0}
    original = store.scan

    def counting_scan(csn=None):
        inner = original(csn)

        def gen():
            for item in inner:
                counter["rows"] += 1
                yield item

        return gen()

    store.scan = counting_scan  # instance attribute shadows the method
    return counter


class TestStreamedResultSet:
    def test_source_rows_flow_lazily(self):
        pulled = {"n": 0}

        def gen():
            for i in range(10):
                pulled["n"] += 1
                yield (i,)

        rs = ResultSet(columns=["k"], kind="select", source=gen())
        assert rs.streaming
        assert rs.rowcount == -1  # DB-API "unknown" until drained
        assert rs.next_row() == (0,)
        assert pulled["n"] == 1
        assert rs.take(3) == [(1,), (2,), (3,)]
        assert pulled["n"] == 4

    def test_exhaustion_sets_rowcount(self):
        rs = ResultSet(columns=["k"], kind="select", source=iter([(1,), (2,)]))
        assert list(rs) == [(1,), (2,)]
        assert rs.rowcount == 2
        assert not rs.streaming
        assert rs.next_row() is None

    def test_rows_materializes_untouched_stream(self):
        rs = ResultSet(columns=["k"], kind="select", source=iter([(1,), (2,)]))
        assert rs.rows == [(1,), (2,)]
        assert rs.rowcount == 2
        assert rs.rows == [(1,), (2,)]  # second access hits the buffer

    def test_rows_after_partial_stream_raises(self):
        rs = ResultSet(
            columns=["k"], kind="select", source=iter([(1,), (2,), (3,)])
        )
        assert rs.next_row() == (1,)
        with pytest.raises(ExecutionError, match="was streamed"):
            rs.rows

    def test_whole_result_access_after_exhaustion_stays_loud(self):
        """A drained stream must not quietly impersonate an empty result."""
        rs = ResultSet(columns=["k"], kind="select", source=iter([(1,), (2,)]))
        drained = []
        for row in rs:  # true streaming consumption (no len() hint)
            drained.append(row)
        assert drained == [(1,), (2,)]
        assert rs.rowcount == 2 and bool(rs)
        with pytest.raises(ExecutionError, match="was streamed"):
            rs.rows
        with pytest.raises(TypeError, match="unknowable"):
            len(rs)
        with pytest.raises(ExecutionError, match="one-shot"):
            iter(rs)

    def test_list_materializes_via_length_hint_benignly(self):
        """list(result) probes len() first, which materializes the whole
        stream — afterwards the result behaves exactly like a
        materialized one (no silent emptiness, no raising)."""
        rs = ResultSet(columns=["k"], kind="select", source=iter([(1,), (2,)]))
        assert list(rs) == [(1,), (2,)]
        assert rs.rows == [(1,), (2,)] and len(rs) == 2

    def test_prime_holds_the_first_row(self):
        rs = ResultSet(columns=["k"], kind="select", source=iter([(7,), (8,)]))
        rs.prime()
        assert rs.streaming
        assert rs.next_row() == (7,)
        assert rs.next_row() == (8,)
        assert rs.next_row() is None

    def test_close_abandons_the_tail(self):
        rs = ResultSet(
            columns=["k"], kind="select", source=iter([(1,), (2,), (3,)])
        )
        assert rs.next_row() == (1,)
        rs.close()
        assert rs.next_row() is None
        assert not rs.streaming

    def test_bool_on_partially_streamed_result(self):
        rs = ResultSet(columns=["k"], kind="select", source=iter([(1,)]))
        assert rs.next_row() == (1,)
        assert bool(rs)

    def test_materialized_results_are_unchanged(self):
        rs = ResultSet(columns=["k"], rows=[(1,), (2,)])
        assert not rs.streaming
        assert rs.rowcount == 2 and len(rs) == 2 and rs.first() == (1,)


class TestCursorStreaming:
    def test_fetchone_pulls_one_row_at_a_time(self):
        db = seeded_db(50)
        counter = count_scanned_rows(db, "t")
        cur = connect(db).cursor().execute("SELECT k, v FROM t")
        row = cur.fetchone()
        assert isinstance(row, Row) and (row.k, row.v) == (0, "v0")
        # Priming plus the fetch touched the first row only — nothing
        # near the table's 50 rows was materialized.
        assert counter["rows"] <= 2
        assert cur._rows == []  # O(fetch) buffering, not O(result)
        assert cur.rowcount == -1  # unknown until the stream ends

    def test_fetch_surface_matches_materialized_semantics(self):
        db = seeded_db(10)
        cur = connect(db).cursor().execute("SELECT k FROM t")
        assert cur.fetchone() == (0,)
        assert cur.fetchmany(3) == [(1,), (2,), (3,)]
        assert cur.fetchall() == [(i,) for i in range(4, 10)]
        assert cur.fetchone() is None
        assert cur.rowcount == 10  # known once exhausted

    def test_iteration_streams(self):
        db = seeded_db(10)
        rows = list(connect(db).cursor().execute("SELECT k FROM t"))
        assert rows == [(i,) for i in range(10)]

    def test_stream_is_pinned_across_concurrent_commits(self):
        db = seeded_db(20)
        conn = connect(db)
        cur = conn.cursor().execute("SELECT k FROM t")
        first = [cur.fetchone(), cur.fetchone()]
        # A write lands while the cursor is mid-stream.
        conn.execute("INSERT INTO t VALUES (?, ?)", (999, "new"))
        conn.execute("DELETE FROM t WHERE k = ?", (5,))
        rest = cur.fetchall()
        # The stream serves its snapshot: all 20 original rows, no new
        # row, the deleted row still present.
        assert first + rest == [(i,) for i in range(20)]
        # A fresh statement sees the new state.
        fresh = [r[0] for r in conn.execute("SELECT k FROM t").rows]
        assert 999 in fresh and 5 not in fresh

    def test_stream_pinned_when_backing_txn_aborts(self):
        db = seeded_db(12)
        txn = db.begin()
        result = db.execute("SELECT k FROM t", txn=txn, stream=True)
        assert result.streaming
        txn.abort()  # the ephemeral reader is long gone by fetch time
        assert [r[0] for r in result] == list(range(12))

    def test_streaming_disabled_under_read_tracking(self):
        db = seeded_db(5)
        db.track_reads = True
        txn = db.begin()
        result = db.execute("SELECT k FROM t", txn=txn, stream=True)
        assert not result.streaming  # provenance requires the full drain
        assert len(result.rows) == 5
        txn.abort()

    def test_streaming_disabled_with_observers(self):
        db = seeded_db(5)

        class Observer:
            def statement_executed(self, txn, trace):
                self.trace = trace

        observer = Observer()
        db.add_observer(observer)
        result = connect(db).execute("SELECT k FROM t")
        assert not result.streaming
        assert observer.trace.rowcount == 5  # trace parity preserved

    def test_new_statement_abandons_previous_stream(self):
        db = seeded_db(10)
        cur = connect(db).cursor()
        cur.execute("SELECT k FROM t")
        cur.fetchone()
        cur.execute("SELECT v FROM t WHERE k = ?", (3,))
        assert cur.fetchone() == ("v3",)

    def test_closed_cursor_drops_stream(self):
        db = seeded_db(10)
        conn = connect(db)
        with conn.cursor() as cur:
            cur.execute("SELECT k FROM t")
            cur.fetchone()
        with pytest.raises(InterfaceError, match="closed"):
            cur.fetchone()

    def test_replicated_reads_stream_too(self):
        cluster = ReplicatedDatabase(seeded_db(15), n_replicas=1, mode="sync")
        conn = connect(cluster)
        result = conn.execute("SELECT k FROM t")
        assert result.streaming
        assert sorted(r[0] for r in result) == list(range(15))
        assert cluster.stats["replica_reads"] == 1


class TestShortCircuit:
    def test_limit_terminates_the_scan_early(self):
        db = seeded_db(200)
        counter = count_scanned_rows(db, "t")
        result = db.execute("SELECT k FROM t LIMIT 5")
        assert result.rows == [(i,) for i in range(5)]
        assert counter["rows"] == 5

    def test_limit_offset_scans_exactly_the_window(self):
        db = seeded_db(200)
        counter = count_scanned_rows(db, "t")
        result = db.execute("SELECT k FROM t LIMIT 5 OFFSET 10")
        assert result.rows == [(i,) for i in range(10, 15)]
        assert counter["rows"] == 15

    def test_limit_zero_scans_nothing(self):
        db = seeded_db(50)
        counter = count_scanned_rows(db, "t")
        assert db.execute("SELECT k FROM t LIMIT 0").rows == []
        assert counter["rows"] == 0

    def test_one_stops_after_disproving_uniqueness(self):
        db = seeded_db(500)
        counter = count_scanned_rows(db, "t")
        conn = connect(db)
        with pytest.raises(ExecutionError, match="exactly one row"):
            conn.execute("SELECT k FROM t").one()
        # Two rows disprove uniqueness; the other 498 were never scanned.
        assert counter["rows"] <= 3

    def test_one_still_returns_the_single_row(self):
        db = seeded_db(50)
        row = connect(db).execute("SELECT k, v FROM t WHERE k = ?", (7,)).one()
        assert (row.k, row.v) == (7, "v7")

    def test_first_pulls_a_single_row(self):
        db = seeded_db(300)
        counter = count_scanned_rows(db, "t")
        assert connect(db).execute("SELECT k FROM t").first() == (0,)
        assert counter["rows"] <= 2


def seeded_sharded(n: int = 400, shards: int = 4) -> ShardedDatabase:
    sdb = ShardedDatabase(shards, shard_keys={"t": "k"})
    sdb.execute("CREATE TABLE t (k INTEGER, v TEXT)")
    gtxn = sdb.begin()
    for i in range(n):
        sdb.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"), txn=gtxn)
    gtxn.commit()
    return sdb


class TestShardedLimitPushdown:
    @pytest.mark.parametrize(
        "sql,params",
        [
            ("SELECT * FROM t LIMIT 7", ()),
            ("SELECT * FROM t LIMIT 7 OFFSET 3", ()),
            ("SELECT k FROM t WHERE k < 50 LIMIT 5", ()),
            ("SELECT k FROM t LIMIT ?", (9,)),
            ("SELECT * FROM t LIMIT 0", ()),
            ("SELECT * FROM t ORDER BY k LIMIT 4", ()),
            ("SELECT * FROM t ORDER BY k DESC LIMIT 4 OFFSET 2", ()),
            ("SELECT DISTINCT v FROM t LIMIT 3", ()),
            ("SELECT COUNT(*) FROM t LIMIT 1", ()),
            ("SELECT k FROM t WHERE k IN (1, 2, 3) LIMIT 2", ()),
        ],
    )
    def test_pushdown_is_row_identical_to_gather_all(self, sql, params):
        sdb = seeded_sharded()
        with_pushdown = sdb.execute(sql, params).rows
        sdb.limit_pushdown_enabled = False
        without = sdb.execute(sql, params).rows
        assert with_pushdown == without

    def test_coordinator_stops_draining_satisfied_shards(self):
        sdb = seeded_sharded()
        begun_before = [s.txn_manager.stats["begun"] for s in sdb.shards]
        result = sdb.execute("SELECT k FROM t LIMIT 3")
        assert len(result.rows) == 3
        begun_after = [s.txn_manager.stats["begun"] for s in sdb.shards]
        # At least one shard was never visited: no read transaction begun.
        untouched = sum(
            1 for b, a in zip(begun_before, begun_after) if b == a
        )
        assert untouched >= 1
        assert sdb.stats["limit_pushdown_queries"] == 1
        assert sdb.stats["limit_shards_skipped"] >= untouched

    def test_order_by_and_aggregates_do_not_push_down(self):
        sdb = seeded_sharded(80)
        sdb.execute("SELECT * FROM t ORDER BY k LIMIT 5")
        sdb.execute("SELECT COUNT(*) FROM t LIMIT 1")
        sdb.execute("SELECT DISTINCT v FROM t LIMIT 5")
        sdb.execute("SELECT v, COUNT(*) FROM t GROUP BY v LIMIT 5")
        assert sdb.stats["limit_pushdown_queries"] == 0

    def test_pushdown_respects_key_routing(self):
        sdb = seeded_sharded()
        result = sdb.execute("SELECT v FROM t WHERE k = ? LIMIT 1", (42,))
        assert result.rows == [("v42",)]
        assert sdb.stats["routed_statements"] >= 1

    def test_pushdown_skipped_when_observed(self):
        """A TROD-observed cluster drains fully — traces stay intact."""
        sdb = seeded_sharded(80)
        traces = []

        class Observer:
            def statement_executed(self, txn, trace):
                traces.append(trace)

        sdb.add_observer(Observer())
        result = sdb.execute("SELECT k FROM t LIMIT 3")
        assert len(result.rows) == 3
        # Every shard that was scanned reported its full per-shard trace.
        assert sum(t.rowcount for t in traces) >= 3

    def test_limit_pushdown_through_connection_and_replicas(self):
        sdb = seeded_sharded(200)
        sdb.attach_replicas(1, mode="sync")
        conn = connect(sdb)
        rows = conn.execute("SELECT k FROM t LIMIT 6").rows
        sdb.limit_pushdown_enabled = False
        assert conn.execute("SELECT k FROM t LIMIT 6").rows == rows


class TestPerStatementReadPreference:
    def make_cluster(self) -> ReplicatedDatabase:
        cluster = ReplicatedDatabase(seeded_db(10), n_replicas=2, mode="async")
        cluster.catch_up()
        return cluster

    def test_primary_override_on_replica_connection(self):
        cluster = self.make_cluster()
        conn = connect(cluster)  # default: replica
        conn.execute("SELECT COUNT(*) FROM t")
        assert cluster.stats["replica_reads"] == 1
        conn.execute("SELECT COUNT(*) FROM t", read_preference="primary")
        assert cluster.stats["primary_reads"] == 1
        # The connection default is untouched.
        conn.execute("SELECT COUNT(*) FROM t")
        assert cluster.stats["replica_reads"] == 2

    def test_wait_override_forces_catch_up(self):
        cluster = self.make_cluster()
        conn = connect(cluster)
        conn.execute("UPDATE t SET v = ? WHERE k = ?", ("fresh", 1))
        value = conn.execute(
            "SELECT v FROM t WHERE k = ?", (1,), read_preference="wait"
        ).scalar()
        assert value == "fresh"
        assert cluster.stats["catch_up_waits"] == 1
        assert cluster.stats["stale_fallbacks"] == 0

    def test_cursor_passes_the_override_through(self):
        cluster = self.make_cluster()
        cur = connect(cluster).cursor()
        cur.execute("SELECT COUNT(*) FROM t", read_preference="primary")
        assert cur.fetchone() == (10,)
        assert cluster.stats["primary_reads"] == 1

    def test_unknown_override_rejected(self):
        conn = connect(seeded_db(3))
        with pytest.raises(InterfaceError, match="read_preference"):
            conn.execute("SELECT * FROM t", read_preference="nearest")
        # Validated on writes too — a typo must not wait for a SELECT.
        with pytest.raises(InterfaceError, match="read_preference"):
            conn.execute(
                "INSERT INTO t VALUES (9, 'x')", read_preference="nearest"
            )

    def test_sharded_override_reuses_router_rebuild_path(self):
        sdb = seeded_sharded(40, shards=2)
        sdb.attach_replicas(1)
        sdb.catch_up_replicas()
        conn = connect(sdb)  # default replica
        conn.execute("SELECT COUNT(*) FROM t")
        assert conn._router().on_stale == "primary"
        conn.execute("UPDATE t SET v = ? WHERE k = ?", ("x", 1))
        # The override rebuilds the cached router in wait mode for this
        # statement; the replicas lag, so the wait mode must catch them
        # up rather than fall back.
        value = conn.execute(
            "SELECT v FROM t WHERE k = ?", (1,), read_preference="wait"
        ).scalar()
        assert value == "x"
        assert conn._sharded_router.on_stale == "wait"
        assert conn._sharded_router.stats["catch_up_waits"] >= 1
        # Primary override bypasses the router entirely.
        before = conn._sharded_router.stats["replica_reads"]
        conn.execute("SELECT COUNT(*) FROM t", read_preference="primary")
        assert conn._sharded_router.stats["replica_reads"] == before
