"""FaultInjector and BackoffPolicy: the deterministic-failure substrate."""

import pytest

import repro
from repro.db import Database
from repro.db.txn.wal import WriteAheadLog, WalChange, WalCommit
from repro.errors import CrashPoint, FaultInjected, UnavailableError, WalError
from repro.faults import (
    FAULT_POINTS,
    BackoffPolicy,
    FaultInjector,
    active,
    fault_point,
    injected,
    install,
    uninstall,
)


class TestInjectorScheduling:
    def test_unknown_point_rejected_at_arm_time(self):
        injector = FaultInjector()
        with pytest.raises(FaultInjected, match="unknown fault point"):
            injector.fail("wal.flsh")  # typo must not silently no-op

    def test_fail_fires_on_the_armed_hit_only(self):
        injector = FaultInjector()
        injector.fail("wal.flush", at=3)
        injector.fire("wal.flush")
        injector.fire("wal.flush")
        with pytest.raises(CrashPoint) as exc:
            injector.fire("wal.flush")
        assert exc.value.point == "wal.flush" and exc.value.hit == 3
        injector.fire("wal.flush")  # past the arm: quiet again
        assert injector.stats == {"hits": 4, "fired": 1}

    def test_fail_default_arms_the_next_hit(self):
        injector = FaultInjector()
        injector.fire("2pc.prepare")
        injector.fail("2pc.prepare")  # next hit is #2
        with pytest.raises(CrashPoint):
            injector.fire("2pc.prepare")

    def test_count_fires_consecutive_hits(self):
        injector = FaultInjector()
        injector.fail("repl.apply", at=1, count=2, exc=UnavailableError)
        for _ in range(2):
            with pytest.raises(UnavailableError):
                injector.fire("repl.apply")
        injector.fire("repl.apply")

    def test_exception_class_instance_and_factory(self):
        injector = FaultInjector()
        injector.fail("page.fsync", at=1, exc=WalError)
        with pytest.raises(WalError, match="injected fault"):
            injector.fire("page.fsync")
        sentinel = WalError("exact instance")
        injector.fail("page.fsync", at=2, exc=sentinel)
        with pytest.raises(WalError) as exc:
            injector.fire("page.fsync")
        assert exc.value is sentinel

    def test_fail_every_is_seed_deterministic(self):
        def firings(seed: int) -> list[int]:
            injector = FaultInjector(seed=seed)
            injector.fail_every("repl.ship", 0.3, exc=UnavailableError)
            out = []
            for i in range(50):
                try:
                    injector.fire("repl.ship")
                except UnavailableError:
                    out.append(i)
            return out

        assert firings(7) == firings(7)
        assert firings(7) != firings(8)

    def test_trace_records_every_firing_with_context(self):
        injector = FaultInjector()
        injector.fail("2pc.decision", at=1)
        with pytest.raises(CrashPoint):
            injector.fire("2pc.decision", gtxn=42)
        assert injector.trace == [("2pc.decision", 1, {"gtxn": 42})]

    def test_clear_disarms(self):
        injector = FaultInjector()
        injector.fail("wal.flush").fail_every("repl.ship", 1.0)
        injector.clear("repl.ship")
        injector.fire("repl.ship")
        injector.clear()
        injector.fire("wal.flush")


class TestAmbientInstallation:
    def test_fault_point_is_noop_without_injector(self):
        assert active() is None
        fault_point("wal.flush")  # must not raise, must not count

    def test_injected_context_installs_and_uninstalls(self):
        injector = FaultInjector()
        with injected(injector):
            assert active() is injector
            fault_point("detector.probe", target="x")
        assert active() is None
        assert injector.hits == {"detector.probe": 1}

    def test_install_uninstall(self):
        injector = FaultInjector()
        install(injector)
        try:
            assert active() is injector
        finally:
            uninstall()
        assert active() is None

    def test_exported_at_top_level(self):
        assert repro.FaultInjector is FaultInjector
        assert repro.BackoffPolicy is BackoffPolicy
        assert repro.injected is injected

    def test_registry_covers_the_substrate(self):
        for expected in (
            "page.write", "page.fsync", "wal.flush", "repl.ship",
            "repl.apply", "detector.probe", "2pc.prepare", "2pc.decision",
            "2pc.branch_commit", "2pc.end",
        ):
            assert expected in FAULT_POINTS


class TestFaultPointsAreThreaded:
    def test_wal_flush_point_fires(self):
        wal = WriteAheadLog()  # in-memory: flush() is a no-op, no hit
        injector = FaultInjector()
        with injected(injector):
            wal.append(
                WalCommit(
                    csn=1,
                    txn_id=1,
                    changes=(
                        WalChange("insert", "t", 1, (1, "v"), None),
                    ),
                )
            )
        assert injector.hits.get("wal.flush") is None

    def test_injected_wal_fault_surfaces_through_commit(self, tmp_path):
        """A wal.flush fault escapes mid-commit — after the store apply,
        before the lock release — exactly where a real fsync failure
        would strand the process. No cleanup is attempted: the crash
        model says this process is done; recovery happens on reopen."""
        db = Database(wal_path=str(tmp_path / "wal.jsonl"))
        db.execute("CREATE TABLE t (k INTEGER)")
        injector = FaultInjector()
        injector.fail("wal.flush", exc=WalError)
        with injected(injector):
            with pytest.raises(WalError, match="injected fault"):
                db.execute("INSERT INTO t VALUES (1)")
        assert injector.stats["fired"] == 1
        assert injector.trace[0][0] == "wal.flush"

    def test_paged_write_points_fire_on_checkpoint(self, tmp_path):
        db = Database(storage="paged", data_dir=str(tmp_path / "d"))
        db.execute("CREATE TABLE t (k INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        injector = FaultInjector()
        with injected(injector):
            db.checkpoint()
        assert injector.hits.get("page.write", 0) >= 1
        assert injector.hits.get("page.header", 0) >= 1
        assert injector.hits.get("page.fsync", 0) >= 1
        db.close()


class TestBackoffPolicy:
    def test_exponential_growth_and_cap(self):
        policy = BackoffPolicy(base=1, factor=2, cap=8)
        assert [policy.delay(a) for a in range(5)] == [1, 2, 4, 8, 8]

    def test_ticks_round_and_floor_at_one(self):
        policy = BackoffPolicy(base=0.2, factor=2, cap=4)
        assert policy.ticks(0) == 1
        assert policy.ticks(4) == 3  # 0.2 * 16 = 3.2 -> 3

    def test_jitter_is_deterministic_per_attempt(self):
        a = BackoffPolicy(base=1, factor=2, cap=64, jitter=0.5, seed=9)
        b = BackoffPolicy(base=1, factor=2, cap=64, jitter=0.5, seed=9)
        assert [a.delay(k) for k in range(6)] == [b.delay(k) for k in range(6)]
        other = BackoffPolicy(base=1, factor=2, cap=64, jitter=0.5, seed=10)
        assert [a.delay(k) for k in range(6)] != [
            other.delay(k) for k in range(6)
        ]
        # Jitter only ever shortens, never lengthens, the raw delay.
        raw = BackoffPolicy(base=1, factor=2, cap=64)
        assert all(a.delay(k) <= raw.delay(k) for k in range(6))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(cap=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
