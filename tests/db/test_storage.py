"""Unit tests for multi-version row storage."""

import pytest

from repro.db.schema import Column, TableSchema
from repro.db.storage import RowVersion, TableStore
from repro.db.types import ColumnType
from repro.errors import DatabaseError


def make_store() -> TableStore:
    schema = TableSchema(
        "t", [Column("k", ColumnType.TEXT), Column("v", ColumnType.INTEGER)]
    )
    return TableStore(schema)


class TestVisibility:
    def test_insert_visible_from_its_csn(self):
        store = make_store()
        rid = store.apply_insert(("a", 1), csn=5)
        assert store.get(rid, 4) is None
        assert store.get(rid, 5) == ("a", 1)
        assert store.get(rid, 100) == ("a", 1)
        assert store.get(rid, None) == ("a", 1)

    def test_update_creates_new_version(self):
        store = make_store()
        rid = store.apply_insert(("a", 1), csn=1)
        old = store.apply_update(rid, ("a", 2), csn=3)
        assert old == ("a", 1)
        assert store.get(rid, 2) == ("a", 1)
        assert store.get(rid, 3) == ("a", 2)
        assert store.get(rid, None) == ("a", 2)

    def test_delete_ends_visibility(self):
        store = make_store()
        rid = store.apply_insert(("a", 1), csn=1)
        deleted = store.apply_delete(rid, csn=4)
        assert deleted == ("a", 1)
        assert store.get(rid, 3) == ("a", 1)
        assert store.get(rid, 4) is None
        assert store.get(rid, None) is None

    def test_version_boundary_is_inclusive_begin_exclusive_end(self):
        version = RowVersion(row_id=1, begin=5, end=9, values=("x",))
        assert not version.visible_at(4)
        assert version.visible_at(5)
        assert version.visible_at(8)
        assert not version.visible_at(9)

    def test_scan_orders_by_row_id(self):
        store = make_store()
        store.apply_insert(("b", 2), csn=1)
        store.apply_insert(("a", 1), csn=1)
        rows = list(store.scan(None))
        assert [rid for rid, _ in rows] == sorted(rid for rid, _ in rows)

    def test_scan_as_of_past_csn(self):
        store = make_store()
        r1 = store.apply_insert(("a", 1), csn=1)
        store.apply_insert(("b", 2), csn=2)
        store.apply_update(r1, ("a", 9), csn=3)
        assert list(store.scan(1)) == [(r1, ("a", 1))]
        assert [v for _rid, v in store.scan(2)] == [("a", 1), ("b", 2)]
        assert [v for _rid, v in store.scan(3)] == [("a", 9), ("b", 2)]


class TestWriteRules:
    def test_explicit_row_id_preserved(self):
        store = make_store()
        rid = store.apply_insert(("a", 1), csn=1, row_id=42)
        assert rid == 42
        # Subsequent auto ids go past the explicit one.
        assert store.apply_insert(("b", 2), csn=1) == 43

    def test_insert_over_live_row_rejected(self):
        store = make_store()
        store.apply_insert(("a", 1), csn=1, row_id=7)
        with pytest.raises(DatabaseError):
            store.apply_insert(("b", 2), csn=2, row_id=7)

    def test_reinsert_after_delete_allowed(self):
        store = make_store()
        store.apply_insert(("a", 1), csn=1, row_id=7)
        store.apply_delete(7, csn=2)
        store.apply_insert(("a", 2), csn=3, row_id=7)
        assert store.get(7, None) == ("a", 2)
        assert store.get(7, 1) == ("a", 1)

    def test_update_missing_row_rejected(self):
        store = make_store()
        with pytest.raises(DatabaseError):
            store.apply_update(1, ("a", 1), csn=1)

    def test_delete_twice_rejected(self):
        store = make_store()
        rid = store.apply_insert(("a", 1), csn=1)
        store.apply_delete(rid, csn=2)
        with pytest.raises(DatabaseError):
            store.apply_delete(rid, csn=3)


class TestMaintenance:
    def test_last_change_csn(self):
        store = make_store()
        rid = store.apply_insert(("a", 1), csn=3)
        assert store.last_change_csn(rid) == 3
        store.apply_update(rid, ("a", 2), csn=7)
        assert store.last_change_csn(rid) == 7
        store.apply_delete(rid, csn=9)
        assert store.last_change_csn(rid) == 9
        assert store.last_change_csn(999) is None

    def test_vacuum_drops_dead_versions(self):
        store = make_store()
        rid = store.apply_insert(("a", 1), csn=1)
        store.apply_update(rid, ("a", 2), csn=2)
        store.apply_update(rid, ("a", 3), csn=3)
        assert store.version_count() == 3
        removed = store.vacuum(keep_after_csn=2)
        assert removed == 1
        assert store.get(rid, None) == ("a", 3)
        assert store.get(rid, 2) == ("a", 2)

    def test_vacuum_removes_fully_deleted_rows(self):
        store = make_store()
        rid = store.apply_insert(("a", 1), csn=1)
        store.apply_delete(rid, csn=2)
        removed = store.vacuum(keep_after_csn=5)
        assert removed == 1
        assert store.version_count() == 0

    def test_row_count_live_vs_historical(self):
        store = make_store()
        r1 = store.apply_insert(("a", 1), csn=1)
        store.apply_insert(("b", 2), csn=2)
        store.apply_delete(r1, csn=3)
        assert store.row_count(2) == 2
        assert store.row_count(None) == 1

    def test_stats(self):
        store = make_store()
        store.apply_insert(("a", 1), csn=1)
        stats = store.stats()
        assert stats["live_rows"] == 1
        assert stats["versions"] == 1


class TestLiveCaches:
    """The live-row map and sorted-id caches behind latest-state reads."""

    def test_scan_after_vacuum_stays_consistent(self):
        # Regression: vacuum rebuilds the caches; a stale live map would
        # yield dropped rows or miss surviving ones.
        store = make_store()
        r1 = store.apply_insert(("a", 1), csn=1)
        r2 = store.apply_insert(("b", 2), csn=2)
        store.apply_update(r2, ("b", 3), csn=3)
        r3 = store.apply_insert(("c", 4), csn=4)
        store.apply_delete(r3, csn=5)
        store.vacuum(keep_after_csn=5)
        assert list(store.scan(None)) == [(r1, ("a", 1)), (r2, ("b", 3))]
        assert store.live_row_ids() == [r1, r2]
        assert store.row_count(None) == 2
        assert store.get(r3, None) is None

    def test_writes_after_vacuum_keep_caches_fresh(self):
        store = make_store()
        r1 = store.apply_insert(("a", 1), csn=1)
        store.apply_delete(r1, csn=2)
        store.vacuum(keep_after_csn=3)
        r2 = store.apply_insert(("b", 2), csn=4)
        store.apply_update(r2, ("b", 5), csn=5)
        assert list(store.scan(None)) == [(r2, ("b", 5))]
        assert store.row_count(None) == 1

    def test_reinserted_row_id_reappears_in_order(self):
        store = make_store()
        r1 = store.apply_insert(("a", 1), csn=1)
        r2 = store.apply_insert(("b", 2), csn=2)
        store.apply_delete(r1, csn=3)
        store.apply_insert(("a", 9), csn=4, row_id=r1)
        assert store.live_row_ids() == [r1, r2]
        assert [rid for rid, _ in store.scan(None)] == [r1, r2]
        assert store.get(r1, None) == ("a", 9)
        assert store.get(r1, 3) is None

    def test_out_of_order_explicit_row_ids_scan_sorted(self):
        # Replay's injector preserves provenance row ids, which may arrive
        # out of order; scans must still be row-id ordered.
        store = make_store()
        store.apply_insert(("z", 1), csn=1, row_id=50)
        store.apply_insert(("a", 2), csn=2, row_id=10)
        store.apply_insert(("m", 3), csn=3, row_id=30)
        assert [rid for rid, _ in store.scan(None)] == [10, 30, 50]
        assert [rid for rid, _ in store.scan(3)] == [10, 30, 50]

    def test_snapshot_get_bisects_long_chains(self):
        store = make_store()
        rid = store.apply_insert(("a", 0), csn=1)
        for csn in range(2, 40):
            store.apply_update(rid, ("a", csn), csn=csn)
        assert store.get(rid, 1) == ("a", 0)
        assert store.get(rid, 25) == ("a", 25)
        assert store.get(rid, 100) == ("a", 39)
        assert store.get(rid, 0) is None
