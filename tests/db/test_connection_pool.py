"""ConnectionPool: checkout/checkin reuse and pooled workload parity."""

import pytest

import repro
from repro.db import (
    Connection,
    ConnectionPool,
    Database,
    ReplicatedDatabase,
    Session,
    ShardedDatabase,
)
from repro.errors import InterfaceError
from repro.workload.generators import ConnectionWorkload
from repro.workload.harness import checked_out


def seeded_db(n: int = 10) -> Database:
    db = Database()
    db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
    for i in range(n):
        db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}"))
    return db


class TestPoolBasics:
    def test_exported_at_top_level(self):
        assert repro.ConnectionPool is ConnectionPool

    def test_checkout_creates_then_reuses(self):
        pool = ConnectionPool(seeded_db(), size=2)
        conn = pool.checkout()
        assert isinstance(conn, Connection)
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 10
        pool.checkin(conn)
        again = pool.checkout()
        assert again is conn  # same object came back
        pool.checkin(again)
        assert pool.stats == {
            "checkouts": 2, "creates": 1, "reuses": 1, "discarded": 0,
            "retired_dead": 0,
        }

    def test_burst_grows_then_caps_idle_retention(self):
        pool = ConnectionPool(seeded_db(), size=2)
        borrowed = [pool.checkout() for _ in range(4)]
        assert pool.stats["creates"] == 4
        assert pool.in_use == 4
        for conn in borrowed:
            pool.checkin(conn)
        # Only `size` idle connections are retained; the rest are closed.
        assert pool.idle == 2
        assert pool.stats["discarded"] == 2
        assert borrowed[-1].closed

    def test_context_manager_checkout(self):
        pool = ConnectionPool(seeded_db(), size=1)
        with pool.connection() as conn:
            assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 10
        assert pool.idle == 1 and pool.in_use == 0

    def test_closed_connection_is_not_pooled(self):
        pool = ConnectionPool(seeded_db(), size=2)
        conn = pool.checkout()
        conn.close()
        pool.checkin(conn)
        assert pool.idle == 0
        assert pool.stats["discarded"] == 1
        fresh = pool.checkout()
        assert not fresh.closed

    def test_idle_connection_closed_behind_pools_back_is_counted(self):
        pool = ConnectionPool(seeded_db(), size=2)
        conn = pool.checkout()
        pool.checkin(conn)
        conn.close()  # retired while sitting idle in the pool
        fresh = pool.checkout()
        assert not fresh.closed and fresh is not conn
        assert pool.stats["discarded"] == 1
        assert pool.stats["creates"] == 2 and pool.stats["reuses"] == 0

    def test_checkin_retires_connection_to_fenced_engine(self):
        """A failover fences the node behind a checked-out connection;
        checkin must retire it, not recycle a handle to a demoted node."""
        db = seeded_db()
        pool = ConnectionPool(db, size=2)
        conn = pool.checkout()
        db.fenced = True  # demoted behind the pool's back
        pool.checkin(conn)
        assert conn.closed
        assert pool.idle == 0
        assert pool.stats["retired_dead"] == 1
        assert pool.stats["discarded"] == 1

    def test_checkin_retires_connection_to_killed_engine(self):
        db = seeded_db()
        pool = ConnectionPool(db, size=2)
        conn = pool.checkout()
        db.crashed = True
        pool.checkin(conn)
        assert conn.closed and pool.idle == 0
        assert pool.stats["retired_dead"] == 1

    def test_close_refuses_further_checkouts(self):
        pool = ConnectionPool(seeded_db(), size=2)
        conn = pool.checkout()
        pool.checkin(conn)
        pool.close()
        assert conn.closed
        with pytest.raises(InterfaceError, match="closed"):
            pool.checkout()

    def test_size_validation(self):
        with pytest.raises(InterfaceError, match="size"):
            ConnectionPool(seeded_db(), size=0)

    def test_double_checkin_rejected(self):
        pool = ConnectionPool(seeded_db(), size=2)
        conn = pool.checkout()
        pool.checkin(conn)
        with pytest.raises(InterfaceError, match="already checked in"):
            pool.checkin(conn)
        # The pool still hands out distinct connections.
        a, b = pool.checkout(), pool.checkout()
        assert a is not b

    def test_checked_out_helper_returns_on_error(self):
        pool = ConnectionPool(seeded_db(), size=1)
        with pytest.raises(RuntimeError):
            with checked_out(pool):
                raise RuntimeError("boom")
        assert pool.idle == 1 and pool.in_use == 0


class TestPooledSessionGuarantees:
    def test_pooled_connections_share_one_session(self):
        pool = ConnectionPool(seeded_db(), size=3)
        a = pool.checkout()
        b = pool.checkout()
        assert a.session is b.session is pool.session
        pool.checkin(a)
        pool.checkin(b)

    def test_read_your_writes_across_pooled_connections(self):
        cluster = ReplicatedDatabase(seeded_db(), n_replicas=2, mode="async")
        cluster.catch_up()
        pool = ConnectionPool(cluster, size=2)
        writer = pool.checkout()
        writer.execute("UPDATE t SET v = ? WHERE k = ?", ("fresh", 1))
        pool.checkin(writer)
        # The replicas lag; a *different* pooled connection must still
        # see the write because the session token is pool-wide.
        reader = pool.checkout()
        assert (
            reader.execute("SELECT v FROM t WHERE k = ?", (1,)).scalar()
            == "fresh"
        )
        pool.checkin(reader)
        assert cluster.stats["stale_fallbacks"] == 1

    def test_explicit_session_is_shared_outside_the_pool(self):
        session = Session("external")
        db = seeded_db()
        pool = ConnectionPool(db, session=session)
        with pool.connection() as conn:
            conn.execute("UPDATE t SET v = ? WHERE k = ?", ("w", 2))
        assert session.last_write_csn == db.last_csn


class TestPooledWorkload:
    def test_pooled_run_matches_dedicated_connection(self):
        """The pooled driver produces byte-identical fingerprints."""
        dedicated_db = seeded_db(0)
        pooled_db = seeded_db(0)

        workload = ConnectionWorkload(n_keys=24, seed=3)
        conn = repro.connect(dedicated_db)
        workload.seed(conn)
        direct = workload.run(conn, 120)

        workload = ConnectionWorkload(n_keys=24, seed=3)
        pool = ConnectionPool(pooled_db, size=3)
        workload.seed(pool)
        pooled = workload.run(pool, 120)

        assert pooled == direct
        assert pool.stats["creates"] <= pool.size
        assert pool.stats["reuses"] > 100  # no per-statement construction

    def test_pooled_run_on_sharded_engine(self):
        sdb = ShardedDatabase(2, shard_keys={"ledger": "acct"})
        workload = ConnectionWorkload(n_keys=16, seed=1)
        pool = ConnectionPool(sdb, size=2)
        workload.seed(pool)
        out = workload.run(pool, 60)
        assert len(out) == 60
