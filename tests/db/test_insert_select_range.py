"""INSERT INTO ... SELECT and sorted-index range probe tests."""

import pytest

from repro.db import Database
from repro.errors import ExecutionError, IntegrityError


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE src (name TEXT, score INTEGER)")
    database.execute(
        "INSERT INTO src VALUES ('a', 10), ('b', 20), ('c', 30), ('d', NULL)"
    )
    database.execute("CREATE TABLE dst (who TEXT, points INTEGER)")
    return database


class TestInsertSelect:
    def test_copy_all(self, db):
        result = db.execute("INSERT INTO dst SELECT name, score FROM src")
        assert result.rowcount == 4
        assert len(db.execute("SELECT * FROM dst").rows) == 4

    def test_copy_filtered_and_transformed(self, db):
        db.execute(
            "INSERT INTO dst (who, points)"
            " SELECT UPPER(name), score * 2 FROM src WHERE score >= 20"
        )
        rows = db.execute("SELECT who, points FROM dst ORDER BY who").rows
        assert rows == [("B", 40), ("C", 60)]

    def test_copy_with_aggregation(self, db):
        db.execute(
            "INSERT INTO dst (who, points)"
            " SELECT 'total', SUM(score) FROM src"
        )
        assert db.execute("SELECT points FROM dst").scalar() == 60

    def test_self_insert_does_not_loop(self, db):
        db.execute("INSERT INTO src SELECT name, score + 1 FROM src")
        assert db.execute("SELECT COUNT(*) FROM src").scalar() == 8

    def test_column_count_mismatch(self, db):
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO dst (who) SELECT name, score FROM src")

    def test_constraints_enforced(self, db):
        db.execute("CREATE TABLE uniq (who TEXT UNIQUE)")
        db.execute("INSERT INTO uniq VALUES ('a')")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO uniq SELECT name FROM src")

    def test_atomic_under_autocommit_failure(self, db):
        db.execute("CREATE TABLE uniq (who TEXT UNIQUE)")
        db.execute("INSERT INTO src VALUES ('a', 99)")  # duplicate source name
        with pytest.raises(IntegrityError):
            # The second 'a' violates mid-statement: everything aborts.
            db.execute("INSERT INTO uniq SELECT name FROM src WHERE name = 'a'")
        assert db.execute("SELECT COUNT(*) FROM uniq").scalar() == 0

    def test_insert_select_with_params(self, db):
        db.execute(
            "INSERT INTO dst SELECT name, score FROM src WHERE score > ?",
            (15,),
        )
        assert db.execute("SELECT COUNT(*) FROM dst").scalar() == 2


class TestSortedRangeProbe:
    @pytest.fixture
    def indexed(self, db) -> Database:
        db.execute("CREATE SORTED INDEX ix_score ON src (score)")
        return db

    def test_range_probe_chosen_in_plan(self, indexed):
        plan = "\n".join(indexed.explain("SELECT name FROM src WHERE score > 15"))
        assert "range=ix_score[score]" in plan

    def test_between_uses_range_probe(self, indexed):
        plan = "\n".join(
            indexed.explain("SELECT name FROM src WHERE score BETWEEN 10 AND 20")
        )
        assert "range=ix_score[score]" in plan

    def test_equality_prefers_hash_over_range(self, indexed):
        indexed.execute("CREATE INDEX ix_name ON src (name)")
        plan = "\n".join(
            indexed.explain("SELECT * FROM src WHERE name = 'a' AND score > 5")
        )
        assert "probe=ix_name[name]" in plan

    @pytest.mark.parametrize(
        "where,expected",
        [
            ("score > 15", ["b", "c"]),
            ("score >= 20", ["b", "c"]),
            ("score < 20", ["a"]),
            ("score <= 20", ["a", "b"]),
            ("score BETWEEN 10 AND 20", ["a", "b"]),
            ("15 < score", ["b", "c"]),  # column on the right
            ("30 >= score", ["a", "b", "c"]),
            ("score > 100", []),
        ],
    )
    def test_range_results_match_semantics(self, indexed, where, expected):
        rows = indexed.execute(
            f"SELECT name FROM src WHERE {where} ORDER BY name"
        ).column("name")
        assert rows == expected

    def test_results_identical_with_and_without_index(self, db):
        queries = [
            "SELECT name FROM src WHERE score > 15 ORDER BY name",
            "SELECT name FROM src WHERE score BETWEEN 5 AND 25 ORDER BY name",
            "SELECT COUNT(*) FROM src WHERE score < 30",
        ]
        before = [db.execute(q).rows for q in queries]
        db.execute("CREATE SORTED INDEX ix_score ON src (score)")
        after = [db.execute(q).rows for q in queries]
        assert before == after

    def test_probe_sees_uncommitted_rows(self, indexed):
        txn = indexed.begin()
        indexed.execute("INSERT INTO src VALUES ('e', 25)", txn=txn)
        rows = indexed.execute(
            "SELECT name FROM src WHERE score > 20 ORDER BY name", txn=txn
        ).column("name")
        assert rows == ["c", "e"]
        txn.abort()

    def test_probe_reflects_updates(self, indexed):
        indexed.execute("UPDATE src SET score = 99 WHERE name = 'a'")
        rows = indexed.execute(
            "SELECT name FROM src WHERE score > 50"
        ).column("name")
        assert rows == ["a"]

    def test_null_bound_param_matches_nothing(self, indexed):
        rows = indexed.execute(
            "SELECT name FROM src WHERE score > ?", (None,)
        ).rows
        assert rows == []

    def test_si_transactions_do_not_probe(self, indexed):
        from repro.db import IsolationLevel

        txn = indexed.begin(IsolationLevel.SNAPSHOT)
        rows = indexed.execute(
            "SELECT name FROM src WHERE score > 15 ORDER BY name", txn=txn
        ).column("name")
        assert rows == ["b", "c"]
        txn.commit()
