"""Unit tests for scalar and aggregate SQL functions."""

import pytest

from repro.db.sql.functions import (
    AGGREGATE_NAMES,
    call_scalar,
    is_scalar_function,
    make_accumulator,
)
from repro.errors import ExecutionError


class TestScalars:
    def test_upper_lower(self):
        assert call_scalar("UPPER", ["abc"]) == "ABC"
        assert call_scalar("lower", ["ABC"]) == "abc"
        assert call_scalar("UPPER", [None]) is None

    def test_length(self):
        assert call_scalar("LENGTH", ["abcd"]) == 4
        assert call_scalar("LENGTH", [None]) is None

    def test_abs_round(self):
        assert call_scalar("ABS", [-5]) == 5
        assert call_scalar("ROUND", [2.567, 1]) == 2.6
        assert call_scalar("ROUND", [2.4]) == 2
        assert isinstance(call_scalar("ROUND", [2.4]), int)

    def test_coalesce(self):
        assert call_scalar("COALESCE", [None, None, 3]) == 3
        assert call_scalar("COALESCE", [None]) is None

    def test_nullif_ifnull(self):
        assert call_scalar("NULLIF", [1, 1]) is None
        assert call_scalar("NULLIF", [1, 2]) == 1
        assert call_scalar("IFNULL", [None, "d"]) == "d"
        assert call_scalar("IFNULL", ["v", "d"]) == "v"

    def test_substr_is_one_based(self):
        assert call_scalar("SUBSTR", ["hello", 2]) == "ello"
        assert call_scalar("SUBSTR", ["hello", 2, 3]) == "ell"
        assert call_scalar("SUBSTR", ["hello", 1, 1]) == "h"
        assert call_scalar("SUBSTRING", ["hello", 1, 2]) == "he"

    def test_trim_replace_concat(self):
        assert call_scalar("TRIM", ["  x "]) == "x"
        assert call_scalar("REPLACE", ["a-b", "-", "+"]) == "a+b"
        assert call_scalar("CONCAT", ["a", None, 1]) == "a1"

    def test_typeof(self):
        assert call_scalar("TYPEOF", [None]) == "NULL"
        assert call_scalar("TYPEOF", [True]) == "BOOLEAN"
        assert call_scalar("TYPEOF", [1]) == "INTEGER"
        assert call_scalar("TYPEOF", [1.5]) == "FLOAT"
        assert call_scalar("TYPEOF", ["s"]) == "TEXT"

    def test_unknown_function(self):
        assert not is_scalar_function("FROBNICATE")
        with pytest.raises(ExecutionError):
            call_scalar("FROBNICATE", [1])

    def test_arity_errors(self):
        with pytest.raises(ExecutionError):
            call_scalar("UPPER", [])
        with pytest.raises(ExecutionError):
            call_scalar("UPPER", ["a", "b"])
        with pytest.raises(ExecutionError):
            call_scalar("NULLIF", [1])


class TestAggregates:
    def feed(self, name, values, star=False, distinct=False):
        acc = make_accumulator(name, star=star, distinct=distinct)
        for value in values:
            acc.add(value)
        return acc.result()

    def test_aggregate_name_set(self):
        assert AGGREGATE_NAMES == {"COUNT", "SUM", "AVG", "MIN", "MAX"}

    def test_count_star_counts_everything(self):
        assert self.feed("COUNT", [1, None, "x"], star=True) == 3

    def test_count_value_skips_nulls(self):
        assert self.feed("COUNT", [1, None, 2]) == 2

    def test_count_distinct(self):
        assert self.feed("COUNT", [1, 1, 2, None, 2], distinct=True) == 2

    def test_sum(self):
        assert self.feed("SUM", [1, 2, 3]) == 6
        assert self.feed("SUM", [None, None]) is None
        assert self.feed("SUM", []) is None

    def test_sum_distinct(self):
        assert self.feed("SUM", [1, 1, 2], distinct=True) == 3

    def test_avg(self):
        assert self.feed("AVG", [1, 2, 3]) == 2.0
        assert self.feed("AVG", [None]) is None

    def test_min_max(self):
        assert self.feed("MIN", [3, 1, 2]) == 1
        assert self.feed("MAX", [3, 1, 2]) == 3
        assert self.feed("MIN", ["b", "a"]) == "a"
        assert self.feed("MIN", [None]) is None

    def test_min_max_ignore_nulls(self):
        assert self.feed("MAX", [None, 5, None]) == 5
