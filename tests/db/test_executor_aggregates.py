"""Aggregation execution tests: GROUP BY, HAVING, global aggregates."""

import pytest

from repro.db import Database
from repro.errors import PlanningError


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE sales (region TEXT, rep TEXT, amount INTEGER)")
    rows = [
        ("east", "a", 10),
        ("east", "b", 20),
        ("west", "a", 30),
        ("west", "a", 40),
        ("north", "c", None),
    ]
    for row in rows:
        database.execute("INSERT INTO sales VALUES (?, ?, ?)", row)
    return database


class TestGlobalAggregates:
    def test_count_star(self, db):
        assert db.execute("SELECT COUNT(*) FROM sales").scalar() == 5

    def test_count_column_skips_null(self, db):
        assert db.execute("SELECT COUNT(amount) FROM sales").scalar() == 4

    def test_sum_avg_min_max(self, db):
        rs = db.execute(
            "SELECT SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM sales"
        )
        assert rs.rows == [(100, 25.0, 10, 40)]

    def test_count_distinct(self, db):
        assert db.execute("SELECT COUNT(DISTINCT rep) FROM sales").scalar() == 3

    def test_global_aggregate_on_empty_table(self, db):
        db.execute("CREATE TABLE empty (x INTEGER)")
        rs = db.execute("SELECT COUNT(*), SUM(x) FROM empty")
        assert rs.rows == [(0, None)]

    def test_aggregate_with_filter(self, db):
        assert (
            db.execute("SELECT COUNT(*) FROM sales WHERE region = 'east'").scalar()
            == 2
        )

    def test_expression_over_aggregates(self, db):
        rs = db.execute("SELECT MAX(amount) - MIN(amount) FROM sales")
        assert rs.scalar() == 30


class TestGroupBy:
    def test_group_counts(self, db):
        rs = db.execute(
            "SELECT region, COUNT(*) AS n FROM sales GROUP BY region ORDER BY region"
        )
        assert rs.rows == [("east", 2), ("north", 1), ("west", 2)]

    def test_group_sum(self, db):
        rs = db.execute(
            "SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY region"
        )
        assert rs.rows == [("east", 30), ("north", None), ("west", 70)]

    def test_group_by_expression(self, db):
        rs = db.execute(
            "SELECT UPPER(region), COUNT(*) FROM sales"
            " GROUP BY UPPER(region) ORDER BY UPPER(region)"
        )
        assert rs.rows == [("EAST", 2), ("NORTH", 1), ("WEST", 2)]

    def test_multi_column_group(self, db):
        rs = db.execute(
            "SELECT region, rep, COUNT(*) FROM sales"
            " GROUP BY region, rep ORDER BY region, rep"
        )
        assert ("west", "a", 2) in rs.rows
        assert len(rs) == 4

    def test_having(self, db):
        rs = db.execute(
            "SELECT region FROM sales GROUP BY region"
            " HAVING COUNT(*) > 1 ORDER BY region"
        )
        assert rs.column("region") == ["east", "west"]

    def test_having_on_aggregate_not_projected(self, db):
        rs = db.execute(
            "SELECT region FROM sales GROUP BY region"
            " HAVING SUM(amount) > 50"
        )
        assert rs.column("region") == ["west"]

    def test_order_by_aggregate(self, db):
        rs = db.execute(
            "SELECT region, COUNT(*) AS n FROM sales GROUP BY region"
            " ORDER BY n DESC, region ASC"
        )
        assert rs.rows == [("east", 2), ("west", 2), ("north", 1)]

    def test_order_by_unprojected_aggregate(self, db):
        rs = db.execute(
            "SELECT region FROM sales GROUP BY region ORDER BY SUM(amount) DESC"
        )
        # NULL sum sorts first ascending, so DESC puts it last.
        assert rs.column("region") == ["west", "east", "north"]

    def test_paper_duplicate_detection_shape(self, db):
        db.execute("CREATE TABLE forum_sub (userId TEXT, forum TEXT)")
        for pair in [("U1", "F2"), ("U1", "F2"), ("U2", "F2")]:
            db.execute("INSERT INTO forum_sub VALUES (?, ?)", pair)
        rs = db.execute(
            "SELECT userId, forum, COUNT(*) FROM forum_sub"
            " GROUP BY userId, forum HAVING COUNT(*) > 1"
        )
        assert rs.rows == [("U1", "F2", 2)]

    def test_bare_column_outside_group_rejected(self, db):
        with pytest.raises(PlanningError, match="GROUP BY"):
            db.execute("SELECT rep, COUNT(*) FROM sales GROUP BY region")

    def test_aggregate_over_join(self, db):
        db.execute("CREATE TABLE quotas (region TEXT, quota INTEGER)")
        db.execute("INSERT INTO quotas VALUES ('east', 25), ('west', 80)")
        rs = db.execute(
            "SELECT s.region, SUM(s.amount), MAX(q.quota) FROM sales s"
            " JOIN quotas q ON s.region = q.region"
            " GROUP BY s.region ORDER BY s.region"
        )
        assert rs.rows == [("east", 30, 25), ("west", 70, 80)]

    def test_group_key_with_nulls(self, db):
        db.execute("INSERT INTO sales VALUES (NULL, 'z', 5)")
        rs = db.execute(
            "SELECT region, COUNT(*) FROM sales GROUP BY region ORDER BY region"
        )
        assert (None, 1) in rs.rows
