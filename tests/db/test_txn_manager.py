"""Transaction lifecycle tests: buffering, commit, abort, visibility."""

import pytest

from repro.db import Database, IsolationLevel, TransactionStatus
from repro.errors import (
    IntegrityError,
    TransactionAborted,
    TransactionError,
)


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE t (k TEXT NOT NULL, v INTEGER)")
    return database


class TestLifecycle:
    def test_commit_assigns_increasing_csns(self, db):
        t1 = db.begin()
        db.execute("INSERT INTO t VALUES ('a', 1)", txn=t1)
        csn1 = t1.commit()
        t2 = db.begin()
        db.execute("INSERT INTO t VALUES ('b', 2)", txn=t2)
        csn2 = t2.commit()
        assert csn2 == csn1 + 1
        assert db.txn_manager.csn_of(t1.txn_id) == csn1

    def test_txn_names(self, db):
        txn = db.begin()
        assert txn.name == f"TXN{txn.txn_id}"
        txn.abort()

    def test_operations_after_commit_rejected(self, db):
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionAborted):
            db.execute("INSERT INTO t VALUES ('a', 1)", txn=txn)

    def test_double_commit_rejected(self, db):
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_abort_discards_writes(self, db):
        txn = db.begin()
        db.execute("INSERT INTO t VALUES ('a', 1)", txn=txn)
        txn.abort()
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0
        assert txn.status is TransactionStatus.ABORTED

    def test_abort_is_idempotent(self, db):
        txn = db.begin()
        txn.abort()
        txn.abort()

    def test_stats(self, db):
        before = dict(db.txn_manager.stats)
        txn = db.begin()
        txn.commit()
        txn2 = db.begin()
        txn2.abort()
        assert db.txn_manager.stats["committed"] == before["committed"] + 1
        assert db.txn_manager.stats["aborted"] == before["aborted"] + 1


class TestReadYourOwnWrites:
    def test_uncommitted_insert_visible_to_self_only(self, db):
        txn = db.begin()
        db.execute("INSERT INTO t VALUES ('a', 1)", txn=txn)
        assert db.execute("SELECT COUNT(*) FROM t", txn=txn).scalar() == 1
        # A concurrent snapshot reader sees nothing (a SERIALIZABLE reader
        # would block on the 2PL table lock instead).
        reader = db.begin(IsolationLevel.SNAPSHOT)
        assert db.execute("SELECT COUNT(*) FROM t", txn=reader).scalar() == 0
        reader.commit()
        txn.commit()
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_update_own_insert(self, db):
        txn = db.begin()
        db.execute("INSERT INTO t VALUES ('a', 1)", txn=txn)
        db.execute("UPDATE t SET v = 2 WHERE k = 'a'", txn=txn)
        assert db.execute("SELECT v FROM t", txn=txn).scalar() == 2
        txn.commit()
        assert db.execute("SELECT v FROM t").scalar() == 2

    def test_delete_own_insert(self, db):
        txn = db.begin()
        db.execute("INSERT INTO t VALUES ('a', 1)", txn=txn)
        db.execute("DELETE FROM t WHERE k = 'a'", txn=txn)
        assert db.execute("SELECT COUNT(*) FROM t", txn=txn).scalar() == 0
        txn.commit()
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_update_then_delete_committed_row(self, db):
        db.execute("INSERT INTO t VALUES ('a', 1)")
        txn = db.begin()
        db.execute("UPDATE t SET v = 9 WHERE k = 'a'", txn=txn)
        db.execute("DELETE FROM t WHERE k = 'a'", txn=txn)
        txn.commit()
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0


class TestConstraints:
    def test_unique_checked_within_txn(self):
        db = Database()
        db.execute("CREATE TABLE u (k TEXT UNIQUE)")
        txn = db.begin()
        db.execute("INSERT INTO u VALUES ('x')", txn=txn)
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO u VALUES ('x')", txn=txn)

    def test_unique_check_allows_replacing_own_update(self):
        db = Database()
        db.execute("CREATE TABLE u (k TEXT UNIQUE, v INTEGER)")
        db.execute("INSERT INTO u VALUES ('x', 1)")
        txn = db.begin()
        db.execute("UPDATE u SET v = 2 WHERE k = 'x'", txn=txn)  # same key OK
        txn.commit()

    def test_direct_api_update_missing_row(self, db):
        txn = db.begin()
        with pytest.raises(TransactionError):
            txn.update("t", 999, ("a", 1))

    def test_direct_api_delete_missing_row(self, db):
        txn = db.begin()
        with pytest.raises(TransactionError):
            txn.delete("t", 999)

    def test_insert_with_id_conflict(self, db):
        db.execute("INSERT INTO t VALUES ('a', 1)")
        txn = db.begin()
        with pytest.raises(TransactionError):
            txn.insert_with_id("t", ("b", 2), row_id=1)

    def test_insert_with_id_preserves_identity(self, db):
        txn = db.begin()
        txn.insert_with_id("t", ("a", 1), row_id=77)
        txn.commit()
        assert db.store("t").get(77, None) == ("a", 1)


class TestInfoAndFootprints:
    def test_info_propagates(self, db):
        txn = db.begin(info={"req_id": "R1", "handler": "h"})
        assert txn.info["req_id"] == "R1"
        txn.abort()

    def test_tables_written(self, db):
        db.execute("CREATE TABLE other (x INTEGER)")
        txn = db.begin()
        db.execute("INSERT INTO t VALUES ('a', 1)", txn=txn)
        db.execute("INSERT INTO other VALUES (5)", txn=txn)
        assert txn.tables_written == {"t", "other"}
        txn.commit()

    def test_tables_read_tracks_scans(self, db):
        db.track_reads = True
        db.execute("INSERT INTO t VALUES ('a', 1)")
        txn = db.begin()
        db.execute("SELECT * FROM t", txn=txn)
        assert txn.tables_read == {"t"}
        txn.commit()

    def test_pending_rows(self, db):
        txn = db.begin()
        rid = txn.insert("t", ("a", 1))
        assert txn.pending_rows("t") == [(rid, ("a", 1))]
        txn.commit()
