"""Unit tests for the SQL parser."""

import pytest

from repro.db.expr import BinaryOp, ColumnRef, FuncCall, Literal, Param
from repro.db.sql.nodes import (
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
    UpdateStmt,
)
from repro.db.sql.parser import parse_sql
from repro.errors import SqlSyntaxError


class TestSelect:
    def test_minimal(self):
        stmt = parse_sql("SELECT a FROM t")
        assert isinstance(stmt, SelectStmt)
        assert stmt.from_table.table == "t"
        assert len(stmt.items) == 1

    def test_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert stmt.items[0].star

    def test_qualified_star(self):
        stmt = parse_sql("SELECT e.* FROM t AS e")
        assert stmt.items[0].star
        assert stmt.items[0].star_qualifier == "e"

    def test_aliases_with_and_without_as(self):
        stmt = parse_sql("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_table_alias_forms(self):
        assert parse_sql("SELECT a FROM t AS e").from_table.alias == "e"
        assert parse_sql("SELECT a FROM t e").from_table.alias == "e"

    def test_where_and_order(self):
        stmt = parse_sql("SELECT a FROM t WHERE a > 1 ORDER BY a DESC, b ASC")
        assert stmt.where is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True

    def test_group_by_having(self):
        stmt = parse_sql(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_limit_offset(self):
        stmt = parse_sql("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert isinstance(stmt.limit, Literal)
        assert stmt.limit.value == 10
        assert stmt.offset.value == 5

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_explicit_join(self):
        stmt = parse_sql("SELECT * FROM a JOIN b ON a.x = b.x")
        assert stmt.joins[0].kind == "inner"
        assert stmt.joins[0].on is not None

    def test_left_join(self):
        stmt = parse_sql("SELECT * FROM a LEFT JOIN b ON a.x = b.x")
        assert stmt.joins[0].kind == "left"
        stmt = parse_sql("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert stmt.joins[0].kind == "left"

    def test_cross_join(self):
        stmt = parse_sql("SELECT * FROM a CROSS JOIN b")
        assert stmt.joins[0].kind == "cross"
        assert stmt.joins[0].on is None

    def test_comma_join_without_on_is_cross(self):
        stmt = parse_sql("SELECT * FROM a, b")
        assert stmt.joins[0].kind == "cross"

    def test_paper_comma_join_with_on(self):
        """The paper's idiom: FROM Executions as E, ForumEvents as F ON ..."""
        stmt = parse_sql(
            "SELECT Timestamp, ReqId, HandlerName "
            "FROM Executions as E, ForumEvents as F "
            "ON E.TxnId = F.TxnId "
            "WHERE F.UserId = 'U1' AND F.Type = 'Insert' "
            "ORDER BY Timestamp ASC"
        )
        assert stmt.joins[0].kind == "inner"
        assert isinstance(stmt.joins[0].on, BinaryOp)

    def test_select_without_from(self):
        stmt = parse_sql("SELECT 1 + 1")
        assert stmt.from_table is None

    def test_params_numbered_in_order(self):
        stmt = parse_sql("SELECT a FROM t WHERE a = ? AND b = ? LIMIT ?")
        assert stmt.param_count == 3
        params = [
            node
            for node in stmt.where.walk()
            if isinstance(node, Param)
        ]
        assert [p.index for p in params] == [0, 1]
        assert stmt.limit.index == 2


class TestExpressions:
    def where(self, text: str):
        return parse_sql(f"SELECT a FROM t WHERE {text}").where

    def test_precedence_or_and(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "AND"

    def test_precedence_arithmetic(self):
        expr = self.where("a + b * c = 7")
        left = expr.left
        assert isinstance(left, BinaryOp) and left.op == "+"
        assert isinstance(left.right, BinaryOp) and left.right.op == "*"

    def test_parentheses_override(self):
        expr = self.where("(a = 1 OR b = 2) AND c = 3")
        assert expr.op == "AND"

    def test_in_list(self):
        expr = self.where("a IN (1, 2, 3)")
        assert type(expr).__name__ == "InList"
        assert len(expr.items) == 3

    def test_not_in(self):
        expr = self.where("a NOT IN (1)")
        assert expr.negated

    def test_between(self):
        expr = self.where("a BETWEEN 1 AND 5")
        assert type(expr).__name__ == "Between"

    def test_is_null_and_is_not_null(self):
        assert self.where("a IS NULL").negated is False
        assert self.where("a IS NOT NULL").negated is True

    def test_like(self):
        expr = self.where("a LIKE 'x%'")
        assert type(expr).__name__ == "Like"

    def test_case_expression(self):
        stmt = parse_sql(
            "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t"
        )
        expr = stmt.items[0].expr
        assert type(expr).__name__ == "Case"
        assert len(expr.branches) == 1

    def test_function_calls(self):
        stmt = parse_sql("SELECT COUNT(*), COUNT(DISTINCT a), UPPER(b) FROM t")
        count_star = stmt.items[0].expr
        assert isinstance(count_star, FuncCall) and count_star.star
        count_distinct = stmt.items[1].expr
        assert count_distinct.distinct

    def test_string_concat(self):
        expr = self.where("a || b = 'xy'")
        assert expr.left.op == "||"

    def test_boolean_literals(self):
        expr = self.where("a = TRUE OR b = false")
        assert expr.left.right.value is True
        assert expr.right.right.value is False

    def test_null_literal(self):
        stmt = parse_sql("SELECT NULL FROM t")
        assert stmt.items[0].expr.value is None


class TestDml:
    def test_insert(self):
        stmt = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(stmt, InsertStmt)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 1

    def test_insert_multi_row(self):
        stmt = parse_sql("INSERT INTO t VALUES (1), (2), (3)")
        assert stmt.columns is None
        assert len(stmt.rows) == 3

    def test_update(self):
        stmt = parse_sql("UPDATE t SET a = 1, b = b + 1 WHERE c = ?")
        assert isinstance(stmt, UpdateStmt)
        assert len(stmt.assignments) == 2
        assert stmt.param_count == 1

    def test_delete(self):
        stmt = parse_sql("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, DeleteStmt)
        assert stmt.where is not None

    def test_delete_all(self):
        assert parse_sql("DELETE FROM t").where is None


class TestDdl:
    def test_create_table(self):
        stmt = parse_sql(
            "CREATE TABLE t (id INT PRIMARY KEY, name TEXT NOT NULL,"
            " tag TEXT UNIQUE, score FLOAT DEFAULT 0.0, UNIQUE (name, tag))"
        )
        assert isinstance(stmt, CreateTableStmt)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].unique
        assert stmt.columns[3].default is not None
        assert stmt.unique_constraints == [["name", "tag"]]

    def test_create_table_if_not_exists(self):
        stmt = parse_sql("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert stmt.if_not_exists

    def test_table_level_primary_key(self):
        stmt = parse_sql("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert stmt.primary_key == ["a", "b"]

    def test_drop_table(self):
        stmt = parse_sql("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, DropTableStmt)
        assert stmt.if_exists

    def test_create_index(self):
        stmt = parse_sql("CREATE UNIQUE INDEX ix ON t (a, b)")
        assert isinstance(stmt, CreateIndexStmt)
        assert stmt.unique
        assert stmt.columns == ["a", "b"]

    def test_create_sorted_index(self):
        stmt = parse_sql("CREATE SORTED INDEX ix ON t (a)")
        assert stmt.sorted_index


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELEC a FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "INSERT INTO t",
            "INSERT t VALUES (1)",
            "UPDATE t a = 1",
            "DELETE t",
            "CREATE t (a INT)",
            "SELECT a FROM t GROUP a",
            "SELECT a FROM t trailing junk (",
            "SELECT CASE END FROM t",
            "SELECT a FROM t JOIN b",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_sql(bad)

    def test_trailing_semicolon_ok(self):
        parse_sql("SELECT a FROM t;")

    def test_double_statement_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t; SELECT b FROM t")
