"""Unit tests for the SQL tokenizer."""

import pytest

from repro.db.sql.lexer import tokenize
from repro.errors import SqlSyntaxError


def kinds(sql: str) -> list[str]:
    return [t.kind for t in tokenize(sql)]


def values(sql: str) -> list:
    return [t.value for t in tokenize(sql)][:-1]  # drop EOF


class TestBasics:
    def test_idents_and_ops(self):
        assert values("SELECT a FROM t") == ["SELECT", "a", "FROM", "t"]

    def test_eof_always_last(self):
        assert kinds("")[-1] == "EOF"
        assert kinds("x")[-1] == "EOF"

    def test_punctuation(self):
        assert values("(a, b.c);") == ["(", "a", ",", "b", ".", "c", ")", ";"]

    def test_param(self):
        tokens = tokenize("? + ?")
        assert [t.kind for t in tokens[:-1]] == ["PARAM", "OP", "PARAM"]


class TestStrings:
    def test_simple_string(self):
        assert values("'hello'") == ["hello"]

    def test_quote_escape(self):
        assert values("'O''Brien'") == ["O'Brien"]

    def test_empty_string(self):
        assert values("''") == [""]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].kind == "IDENT"
        assert tokens[0].value == "Weird Name"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')


class TestNumbers:
    def test_integer(self):
        assert values("42") == [42]

    def test_float(self):
        assert values("4.25") == [4.25]

    def test_leading_dot(self):
        assert values(".5") == [0.5]

    def test_exponent(self):
        assert values("1e3") == [1000.0]
        assert values("2.5E-1") == [0.25]

    def test_number_then_dot_ident_not_confused(self):
        # "1e" with no digits is a number then an identifier start? No:
        # our lexer stops the exponent when no digit follows.
        assert values("1e") == [1, "e"]


class TestComments:
    def test_line_comment(self):
        assert values("a -- comment\n b") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert values("a -- trailing") == ["a"]

    def test_block_comment(self):
        assert values("a /* x */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a /* oops")


class TestOperators:
    def test_multichar_operators_are_greedy(self):
        assert values("a <= b >= c <> d != e || f") == [
            "a", "<=", "b", ">=", "c", "<>", "d", "!=", "e", "||", "f",
        ]

    def test_unknown_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a @ b")

    def test_error_carries_position(self):
        try:
            tokenize("ab @")
        except SqlSyntaxError as exc:
            assert exc.position == 3
        else:  # pragma: no cover
            pytest.fail("expected SqlSyntaxError")
