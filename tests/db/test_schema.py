"""Unit tests for table schemas and the catalog."""

import pytest

from repro.db.schema import Catalog, Column, TableSchema
from repro.db.types import ColumnType
from repro.errors import IntegrityError, SchemaError, TypeCoercionError


def make_schema() -> TableSchema:
    return TableSchema(
        "forum_sub",
        [
            Column("userId", ColumnType.TEXT, nullable=False),
            Column("forum", ColumnType.TEXT, nullable=False),
            Column("rank", ColumnType.INTEGER, default=0),
        ],
    )


class TestTableSchema:
    def test_column_lookup_is_case_insensitive(self):
        schema = make_schema()
        assert schema.index_of("USERID") == 0
        assert schema.column("Forum").name == "forum"

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_schema().index_of("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", ColumnType.TEXT), Column("A", ColumnType.TEXT)],
            )

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_coerce_row_from_mapping_applies_defaults(self):
        schema = make_schema()
        row = schema.coerce_row({"userId": "U1", "forum": "F1"})
        assert row == ("U1", "F1", 0)

    def test_coerce_row_from_sequence(self):
        schema = make_schema()
        assert schema.coerce_row(("U1", "F1", 3)) == ("U1", "F1", 3)

    def test_coerce_row_wrong_arity(self):
        with pytest.raises(SchemaError):
            make_schema().coerce_row(("U1",))

    def test_coerce_row_unknown_column(self):
        with pytest.raises(SchemaError):
            make_schema().coerce_row({"userId": "U1", "nope": 1})

    def test_not_null_enforced(self):
        with pytest.raises(IntegrityError):
            make_schema().coerce_row({"forum": "F1"})

    def test_type_errors_name_the_column(self):
        with pytest.raises(TypeCoercionError, match="forum_sub.rank"):
            make_schema().coerce_row({"userId": "U1", "forum": "F1", "rank": "x"})

    def test_row_dict_roundtrip(self):
        schema = make_schema()
        row = schema.coerce_row({"userId": "U1", "forum": "F1", "rank": 2})
        assert schema.row_dict(row) == {"userId": "U1", "forum": "F1", "rank": 2}

    def test_primary_key_becomes_unique_constraint(self):
        schema = TableSchema(
            "t",
            [
                Column("id", ColumnType.INTEGER, primary_key=True),
                Column("v", ColumnType.TEXT),
            ],
        )
        assert ("id",) in schema.unique_constraints

    def test_unique_column_constraint(self):
        schema = TableSchema(
            "t",
            [Column("a", ColumnType.TEXT, unique=True), Column("b", ColumnType.TEXT)],
        )
        assert ("a",) in schema.unique_constraints

    def test_composite_unique_constraint(self):
        schema = TableSchema(
            "t",
            [Column("a", ColumnType.TEXT), Column("b", ColumnType.TEXT)],
            unique_constraints=[("a", "b")],
        )
        assert ("a", "b") in schema.unique_constraints

    def test_key_for_extracts_constraint_values(self):
        schema = make_schema()
        row = ("U1", "F1", 0)
        assert schema.key_for(("forum", "userId"), row) == ("F1", "U1")

    def test_ddl_roundtrips_through_parser(self):
        from repro.db.database import Database

        schema = TableSchema(
            "t",
            [
                Column("id", ColumnType.INTEGER, primary_key=True),
                Column("name", ColumnType.TEXT, nullable=False),
                Column("tag", ColumnType.TEXT, unique=True),
            ],
            unique_constraints=[("name", "tag")],
        )
        db = Database()
        db.execute(schema.ddl())
        restored = db.catalog.get("t")
        assert restored.column_names == schema.column_names
        assert restored.primary_key == schema.primary_key
        assert ("name", "tag") in restored.unique_constraints


class TestCatalog:
    def test_create_and_resolve_case_insensitive(self):
        catalog = Catalog()
        catalog.create_table(make_schema())
        assert catalog.get("FORUM_SUB").name == "forum_sub"
        assert catalog.has_table("Forum_Sub")

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table(make_schema())
        with pytest.raises(SchemaError):
            catalog.create_table(make_schema())

    def test_missing_table_raises(self):
        with pytest.raises(SchemaError):
            Catalog().get("nope")

    def test_alias_resolves_to_target(self):
        catalog = Catalog()
        catalog.create_table(make_schema())
        catalog.add_alias("Invocations", "forum_sub")
        assert catalog.get("invocations").name == "forum_sub"

    def test_alias_cannot_shadow_table(self):
        catalog = Catalog()
        catalog.create_table(make_schema())
        with pytest.raises(SchemaError):
            catalog.add_alias("forum_sub", "forum_sub")

    def test_drop_removes_aliases(self):
        catalog = Catalog()
        catalog.create_table(make_schema())
        catalog.add_alias("alias1", "forum_sub")
        catalog.drop_table("forum_sub")
        assert not catalog.has_table("alias1")

    def test_table_names_in_creation_order(self):
        catalog = Catalog()
        catalog.create_table(TableSchema("b", [Column("x", ColumnType.INTEGER)]))
        catalog.create_table(TableSchema("a", [Column("x", ColumnType.INTEGER)]))
        assert catalog.table_names() == ["b", "a"]
