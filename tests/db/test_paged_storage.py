"""End-to-end tests of ``Database(storage="paged")``.

The paged tier must be contract-identical to the in-memory store: same
SQL results, same MVCC/AS-OF semantics, same stats surfaces — plus
durability (reopen from disk without full WAL replay) and a working set
that can exceed the buffer pool.
"""

import os
import random

import pytest

from repro.db import Database
from repro.db.database import STORAGE_ENV_VAR
from repro.db.pages import PAGE_FILE_SUFFIX, PagedTableStore
from repro.db.sharding import ShardedDatabase
from repro.errors import StorageError


def make_paged(tmp_path, **kwargs):
    return Database(storage="paged", data_dir=str(tmp_path / "data"), **kwargs)


class TestBasicContract:
    def test_sql_roundtrip(self, tmp_path):
        db = make_paged(tmp_path)
        db.execute("CREATE TABLE t (k TEXT, v INTEGER)")
        db.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
        db.execute("UPDATE t SET v = 10 WHERE k = 'a'")
        db.execute("DELETE FROM t WHERE k = 'b'")
        assert db.execute("SELECT k, v FROM t").rows == [("a", 10)]
        assert isinstance(db.store("t"), PagedTableStore)
        db.close()

    def test_as_of_reads_history_from_pages(self, tmp_path):
        db = make_paged(tmp_path)
        db.execute("CREATE TABLE t (k TEXT, v INTEGER)")
        db.execute("INSERT INTO t VALUES ('a', 1)")
        before = db.last_csn
        db.execute("UPDATE t SET v = 2 WHERE k = 'a'")
        assert db.execute(f"SELECT v FROM t AS OF {before}").scalar() == 1
        assert db.execute("SELECT v FROM t").scalar() == 2
        db.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(StorageError):
            Database(storage="flash")

    def test_env_knob_selects_backend(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORAGE_ENV_VAR, "paged")
        db = Database()
        assert db.storage == "paged"
        db.close()
        monkeypatch.delenv(STORAGE_ENV_VAR)
        assert Database().storage == "memory"

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(STORAGE_ENV_VAR, "paged")
        assert Database(storage="memory").storage == "memory"

    def test_ephemeral_data_dir_cleaned_on_close(self):
        db = Database(storage="paged")
        data_dir = db.data_dir
        db.execute("CREATE TABLE t (k TEXT)")
        assert os.path.isdir(data_dir)
        db.close()
        assert not os.path.exists(data_dir)

    def test_drop_table_removes_page_file(self, tmp_path):
        db = make_paged(tmp_path)
        db.execute("CREATE TABLE t (k TEXT)")
        db.execute("INSERT INTO t VALUES ('a')")
        [page_file] = [
            f for f in os.listdir(db.data_dir) if f.endswith(PAGE_FILE_SUFFIX)
        ]
        db.execute("DROP TABLE t")
        assert not os.path.exists(os.path.join(db.data_dir, page_file))
        db.execute("CREATE TABLE t (k TEXT)")  # name is reusable
        db.close()


class TestWorkingSetExceedsPool:
    def test_scans_lookups_asof_with_tiny_pool(self, tmp_path):
        """Acceptance: a table much larger than the buffer pool completes
        full scans, point lookups, and AS-OF reads, with eviction stats
        proving the working set exceeded the pool."""
        db = make_paged(tmp_path, buffer_pool_pages=4, page_size=512)
        db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        history = {}
        for i in range(300):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, f"v{i}" * 8))
            history[i] = db.last_csn
        for i in range(0, 300, 3):
            db.execute("UPDATE t SET v = ? WHERE k = ?", (f"u{i}", i))

        stats = db.storage_stats
        assert stats["file_pages_allocated"] > stats["pool_capacity"]
        assert stats["pool_evictions"] > 0

        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 300
        assert db.execute("SELECT v FROM t WHERE k = 150").scalar() == "u150"
        assert db.execute("SELECT v FROM t WHERE k = 151").scalar() == "v151" * 8
        # Historical read far behind the current working set.
        csn = history[10]
        assert (
            db.execute(f"SELECT COUNT(*) FROM t AS OF {csn}").scalar() == 11
        )
        db.close()


class TestDurability:
    def test_reopen_after_close_replays_nothing(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = Database(storage="paged", data_dir=data_dir)
        db.execute("CREATE TABLE t (k TEXT, v INTEGER)")
        db.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
        db.execute("UPDATE t SET v = 9 WHERE k = 'a'")
        # Captured before any SELECT: read-only autocommits consume CSNs
        # but are not durable (no WAL record), so recovery lands on the
        # last *written* CSN.
        last = db.last_csn
        expected = db.execute("SELECT k, v FROM t ORDER BY k").rows
        db.close()  # checkpoints: pages alone carry the state

        db2 = Database(storage="paged", data_dir=data_dir)
        assert db2.recovery_stats["mode"] == "paged"
        assert db2.recovery_stats["changes_reconciled"] == 0
        assert db2.last_csn == last
        assert db2.execute("SELECT k, v FROM t ORDER BY k").rows == expected
        # CSNs keep advancing from where they stopped.
        db2.execute("INSERT INTO t VALUES ('c', 3)")
        assert db2.last_csn > last
        db2.close()

    def test_reopen_without_checkpoint_replays_tail(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = Database(storage="paged", data_dir=data_dir)
        db.execute("CREATE TABLE t (k TEXT, v INTEGER)")
        db.execute("INSERT INTO t VALUES ('a', 1)")
        db.execute("UPDATE t SET v = 2 WHERE k = 'a'")
        expected = db.execute("SELECT k, v FROM t").rows
        # Simulate a crash: WAL rows are flushed (group_size=1 default)
        # but neither checkpoint() nor close() ran.
        db.wal._file.flush()
        db._page_manager.close_all()

        db2 = Database(storage="paged", data_dir=data_dir)
        assert db2.recovery_stats["tail_commits"] > 0
        assert db2.recovery_stats["changes_reconciled"] > 0
        assert db2.execute("SELECT k, v FROM t").rows == expected
        db2.close()

    def test_secondary_indexes_rebuilt_on_reopen(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = Database(storage="paged", data_dir=data_dir)
        db.execute("CREATE TABLE t (k TEXT, v INTEGER)")
        db.create_index("ix_t_k", "t", ["k"])
        db.execute("INSERT INTO t VALUES ('a', 1)")
        db.close()
        db2 = Database(storage="paged", data_dir=data_dir)
        assert "ix_t_k" in db2.index_set("t").indexes
        assert db2.execute("SELECT v FROM t WHERE k = 'a'").scalar() == 1
        db2.close()

    def test_aliases_and_horizon_survive_reopen(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = Database(storage="paged", data_dir=data_dir)
        db.execute("CREATE TABLE t (k TEXT)")
        db.add_table_alias("alias_t", "t")
        db.execute("INSERT INTO t VALUES ('a')")
        db.execute("UPDATE t SET k = 'b'")
        db.vacuum(db.last_csn)
        horizon = db.history_horizon
        db.close()
        db2 = Database(storage="paged", data_dir=data_dir)
        assert db2.execute("SELECT k FROM alias_t").scalar() == "b"
        assert db2.history_horizon == horizon
        db2.close()

    def test_vacuum_compacts_file_and_preserves_reads(self, tmp_path):
        db = make_paged(tmp_path, page_size=512)
        db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        for i in range(50):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, "x" * 64))
        for _ in range(5):
            db.execute("UPDATE t SET v = 'y' WHERE k < 25")
        pages_before = db.store("t")._file.npages
        removed = db.vacuum(db.last_csn)
        assert removed > 0
        assert db.store("t")._file.npages < pages_before
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 50
        assert (
            db.execute("SELECT COUNT(*) FROM t WHERE v = 'y'").scalar() == 25
        )
        db.close()


class TestOverflowReclamation:
    def test_crash_orphaned_chain_is_reclaimed_on_recovery(self, tmp_path):
        """A crash can strand a flushed overflow chain with no durable
        record pointing at it: the chain pages get evicted to disk while
        the data page holding the referencing record stays dirty in the
        pool. Replay then writes a *fresh* chain, and before the recovery
        sweep the old pages leaked forever."""
        data_dir = str(tmp_path / "data")
        db = Database(
            storage="paged",
            data_dir=data_dir,
            page_size=512,
            buffer_pool_pages=4,
        )
        db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'small')")
        db.checkpoint()
        # ~25 chain pages stream through the 4-frame pool: the early
        # ones are evicted (written) long before the record lands on its
        # data page, which is still dirty when the "process" dies.
        big = "x" * 12_000
        db.execute("INSERT INTO t VALUES (?, ?)", (2, big))
        db.wal._file.flush()
        db._page_manager.close_all()
        del db

        db2 = Database(storage="paged", data_dir=data_dir)
        store = db2.store("t")
        assert store.orphan_pages_reclaimed > 0
        # Replay's fresh chain reused the reclaimed pages instead of
        # growing the file past one chain's worth.
        assert store._file.stats["freelist_reuses"] > 0
        assert db2.execute("SELECT v FROM t WHERE k = 1").scalar() == "small"
        assert db2.execute("SELECT v FROM t WHERE k = 2").scalar() == big
        assert store._file.npages <= 30  # ~1 chain + data, not 2 chains
        assert db2.storage_stats["orphan_pages_reclaimed"] > 0
        db2.close()

        # A clean close leaves nothing to reclaim.
        db3 = Database(storage="paged", data_dir=data_dir)
        assert db3.store("t").orphan_pages_reclaimed == 0
        assert db3.execute("SELECT v FROM t WHERE k = 2").scalar() == big
        db3.close()

    def test_large_record_churn_vacuums_dead_chains(self, tmp_path):
        """Repeatedly updating a large row retires one overflow chain per
        version; vacuum's compact rewrite must reclaim all of them."""
        db = make_paged(tmp_path, page_size=512)
        db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        db.execute("INSERT INTO t VALUES (?, ?)", (1, "a" * 4_000))
        for i in range(10):
            db.execute("UPDATE t SET v = ? WHERE k = 1", (f"{i}" * 4_000,))
        churned = db.store("t")._file.npages
        db.vacuum(db.last_csn)
        compacted = db.store("t")._file.npages
        assert compacted < churned / 2  # ten dead chains gone
        assert db.execute("SELECT v FROM t").scalar() == "9" * 4_000
        db.close()


class TestDifferential:
    def test_randomized_workload_matches_memory_twin(self, tmp_path):
        """The acceptance differential: an identical randomized workload
        driven into a paged database and an in-memory twin must leave
        byte-identical state at every captured CSN."""
        rng = random.Random(20230427)
        paged = make_paged(tmp_path, buffer_pool_pages=8, page_size=512)
        twin = Database(storage="memory")
        for db in (paged, twin):
            db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        live = []
        checkpoints = []
        for step in range(250):
            op = rng.random()
            if op < 0.5 or not live:
                key = rng.randrange(10_000)
                sql, params = "INSERT INTO t VALUES (?, ?)", (key, f"v{step}")
                live.append(key)
            elif op < 0.8:
                key = rng.choice(live)
                sql, params = (
                    "UPDATE t SET v = ? WHERE k = ?",
                    (f"u{step}", key),
                )
            else:
                key = live.pop(rng.randrange(len(live)))
                sql, params = "DELETE FROM t WHERE k = ?", (key,)
            paged.execute(sql, params)
            twin.execute(sql, params)
            if step % 50 == 0:
                checkpoints.append(paged.last_csn)
        assert paged.last_csn == twin.last_csn
        latest = "SELECT k, v FROM t ORDER BY k, v"
        assert paged.execute(latest).rows == twin.execute(latest).rows
        for csn in checkpoints:
            historical = f"SELECT k, v FROM t AS OF {csn} ORDER BY k, v"
            assert paged.execute(historical).rows == twin.execute(historical).rows
        paged.close()


class TestStorageStats:
    def test_single_node_shape(self, tmp_path):
        db = make_paged(tmp_path)
        db.execute("CREATE TABLE t (k TEXT)")
        db.execute("INSERT INTO t VALUES ('a')")
        stats = db.storage_stats
        assert stats["storage"] == "paged"
        assert stats["tables"] == 1
        assert stats["live_rows"] == 1
        assert stats["pool_capacity"] > 0
        assert stats["file_files"] == 1
        db.close()

    def test_memory_backend_has_no_pool_counters(self):
        # Explicit: under REPRO_STORAGE=paged a bare Database() is paged.
        stats = Database(storage="memory").storage_stats
        assert stats["storage"] == "memory"
        assert not any(k.startswith("pool_") for k in stats)

    def test_sharded_sums_numeric_counters(self, tmp_path):
        shards = [
            Database(
                name=f"s{i}",
                storage="paged",
                data_dir=str(tmp_path / f"shard{i}"),
            )
            for i in range(2)
        ]
        db = ShardedDatabase(databases=shards, shard_keys={"t": "k"})
        db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        for i in range(20):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, "x"))
        stats = db.storage_stats
        assert stats["storage"] == "paged"
        assert stats["tables"] == 2  # one per shard
        assert stats["live_rows"] == 20
        assert stats["file_files"] == 2
        assert stats["live_rows"] == sum(
            s.storage_stats["live_rows"] for s in shards
        )
        for shard in shards:
            shard.close()
