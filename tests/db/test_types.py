"""Unit tests for column types, coercion, and value comparison."""

import pytest

from repro.db.types import (
    ColumnType,
    SortKey,
    compare_values,
    coerce,
    infer_type,
    render_value,
    row_sort_key,
    sql_literal,
    type_from_sql_name,
)
from repro.errors import TypeCoercionError


class TestTypeNames:
    def test_common_spellings(self):
        assert type_from_sql_name("INT") is ColumnType.INTEGER
        assert type_from_sql_name("integer") is ColumnType.INTEGER
        assert type_from_sql_name("BIGINT") is ColumnType.INTEGER
        assert type_from_sql_name("varchar") is ColumnType.TEXT
        assert type_from_sql_name("TEXT") is ColumnType.TEXT
        assert type_from_sql_name("DOUBLE") is ColumnType.FLOAT
        assert type_from_sql_name("bool") is ColumnType.BOOLEAN
        assert type_from_sql_name("TIMESTAMP") is ColumnType.TIMESTAMP

    def test_unknown_name_raises(self):
        with pytest.raises(TypeCoercionError):
            type_from_sql_name("BLOB")


class TestInference:
    def test_infer_each_kind(self):
        assert infer_type(5) is ColumnType.INTEGER
        assert infer_type(5.5) is ColumnType.FLOAT
        assert infer_type("x") is ColumnType.TEXT
        assert infer_type(True) is ColumnType.BOOLEAN

    def test_bool_checked_before_int(self):
        # bool is an int subclass; inference must not call it INTEGER.
        assert infer_type(False) is ColumnType.BOOLEAN

    def test_none_has_no_type(self):
        with pytest.raises(TypeCoercionError):
            infer_type(None)

    def test_unsupported_python_type(self):
        with pytest.raises(TypeCoercionError):
            infer_type([1, 2])


class TestCoercion:
    def test_null_passes_through_every_type(self):
        for col_type in ColumnType:
            assert coerce(None, col_type) is None

    def test_int_widens_to_float(self):
        assert coerce(3, ColumnType.FLOAT) == 3.0
        assert isinstance(coerce(3, ColumnType.FLOAT), float)

    def test_integral_float_narrows_to_int(self):
        assert coerce(3.0, ColumnType.INTEGER) == 3
        assert isinstance(coerce(3.0, ColumnType.INTEGER), int)

    def test_fractional_float_rejected_as_int(self):
        with pytest.raises(TypeCoercionError):
            coerce(3.5, ColumnType.INTEGER)

    def test_string_not_coerced_to_int(self):
        with pytest.raises(TypeCoercionError):
            coerce("5", ColumnType.INTEGER)

    def test_int_not_coerced_to_text(self):
        with pytest.raises(TypeCoercionError):
            coerce(5, ColumnType.TEXT)

    def test_bool_is_not_integer(self):
        with pytest.raises(TypeCoercionError):
            coerce(True, ColumnType.INTEGER)

    def test_int_is_not_boolean(self):
        with pytest.raises(TypeCoercionError):
            coerce(1, ColumnType.BOOLEAN)

    def test_timestamp_accepts_int(self):
        assert coerce(1234, ColumnType.TIMESTAMP) == 1234


class TestComparison:
    def test_null_sorts_first(self):
        assert compare_values(None, 0) == -1
        assert compare_values(0, None) == 1
        assert compare_values(None, None) == 0

    def test_numbers(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2, 1) == 1
        assert compare_values(2, 2) == 0
        assert compare_values(1, 1.5) == -1
        assert compare_values(2.0, 2) == 0

    def test_text(self):
        assert compare_values("a", "b") == -1
        assert compare_values("b", "a") == 1

    def test_cross_kind_order_is_total(self):
        # bool < numeric < text
        assert compare_values(True, 0) == -1
        assert compare_values(5, "a") == -1
        assert compare_values("a", 5) == 1

    def test_sort_key_sorts_mixed_values(self):
        values = ["b", None, 2, True, "a", 1]
        ordered = sorted(values, key=SortKey)
        assert ordered == [None, True, 1, 2, "a", "b"]

    def test_row_sort_key(self):
        rows = [(2, "b"), (1, "z"), (1, "a"), (None, "x")]
        ordered = sorted(rows, key=row_sort_key)
        assert ordered == [(None, "x"), (1, "a"), (1, "z"), (2, "b")]


class TestRendering:
    def test_render_null(self):
        assert render_value(None) == "null"

    def test_render_bool(self):
        assert render_value(True) == "true"
        assert render_value(False) == "false"

    def test_sql_literal_escaping(self):
        assert sql_literal("O'Brien") == "'O''Brien'"
        assert sql_literal(None) == "NULL"
        assert sql_literal(True) == "TRUE"
        assert sql_literal(5) == "5"
