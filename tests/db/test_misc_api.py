"""Remaining public-API surface: ResultSet, context helpers, misc."""

import pytest

from repro.db import Database, ResultSet
from repro.db.types import render_value
from repro.runtime import Runtime


class TestResultSetApi:
    def test_bool_semantics(self):
        assert not bool(ResultSet(columns=["a"], rows=[]))
        assert bool(ResultSet(columns=["a"], rows=[(1,)]))
        assert bool(ResultSet(kind="update", rowcount=3))
        assert not bool(ResultSet(kind="update", rowcount=0))

    def test_iteration_and_len(self):
        rs = ResultSet(columns=["a"], rows=[(1,), (2,)])
        assert list(rs) == [(1,), (2,)]
        assert len(rs) == 2

    def test_first_on_empty(self):
        assert ResultSet(columns=["a"], rows=[]).first() is None

    def test_select_rowcount_is_row_count(self):
        rs = ResultSet(columns=["a"], rows=[(1,), (2,)], kind="select")
        assert rs.rowcount == 2

    def test_pretty_without_truncation(self):
        rs = ResultSet(columns=["a", "bb"], rows=[(1, None), ("x", True)])
        text = rs.pretty()
        assert "null" in text and "true" in text
        assert "more rows" not in text


class TestRenderValue:
    def test_float_rendering_is_unambiguous(self):
        assert render_value(1.5) == "1.5"
        assert render_value(2.0) == "2.0"  # distinguishable from int 2

    def test_int_and_str(self):
        assert render_value(7) == "7"
        assert render_value("s") == "s"


class TestContextApi:
    @pytest.fixture
    def env(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        return db, Runtime(db)

    def test_txn_handle_exposes_name(self, env):
        _db, rt = env
        names = []

        def handler(ctx):
            with ctx.txn(label="first") as t:
                names.append(t.name)

        rt.register("h", handler)
        rt.submit("h")
        assert names and names[0].startswith("TXN")

    def test_sql_shortcut_uses_verb_label(self, env):
        db, rt = env
        labels = []

        class Spy:
            def txn_began(self, txn):
                labels.append(txn.info.get("label"))

        db.add_observer(Spy())

        def handler(ctx):
            ctx.sql("INSERT INTO t VALUES (1)")

        rt.register("h", handler)
        rt.submit("h")
        assert labels == ["insert"]

    def test_side_effect_fields(self, env):
        _db, rt = env

        def handler(ctx):
            return ctx.emit("webhook", {"x": 1})

        rt.register("h", handler)
        result = rt.submit("h")
        effect = result.output
        assert effect.channel == "webhook"
        assert effect.req_id == result.req_id
        assert effect.handler == "h"
        assert effect.ts > 0

    def test_isolation_override_per_txn(self, env):
        from repro.db import IsolationLevel

        db, rt = env
        seen = []

        class Spy:
            def txn_began(self, txn):
                seen.append(txn.isolation)

        db.add_observer(Spy())

        def handler(ctx):
            with ctx.txn(isolation=IsolationLevel.SNAPSHOT) as t:
                t.execute("SELECT * FROM t")

        rt.register("h", handler)
        rt.submit("h")
        assert IsolationLevel.SNAPSHOT in seen

    def test_runtime_default_isolation(self):
        from repro.db import IsolationLevel

        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        rt = Runtime(db, isolation=IsolationLevel.SNAPSHOT)
        seen = []

        class Spy:
            def txn_began(self, txn):
                seen.append(txn.isolation)

        db.add_observer(Spy())
        rt.register("h", lambda ctx: ctx.sql("SELECT * FROM t"))
        rt.submit("h")
        assert seen == [IsolationLevel.SNAPSHOT]


class TestInterpositionInternals:
    def test_write_query_text_attached_from_statements(self, moodle_env):
        """CDC records carry no SQL; the interposition layer matches them
        back to statement traces by (op, table, row id)."""
        _db, runtime, trod = moodle_env
        runtime.submit("subscribeUser", "U1", "F1")
        query = trod.query(
            "SELECT Query FROM ForumEvents WHERE Type = 'Insert'"
        ).scalar()
        assert "INSERT INTO forum_sub" in query

    def test_update_and_delete_query_text(self, moodle_env):
        _db, runtime, trod = moodle_env
        runtime.submit("subscribeUser", "U1", "F1")
        runtime.submit("unsubscribeUser", "U1", "F1")
        query = trod.query(
            "SELECT Query FROM ForumEvents WHERE Type = 'Delete'"
        ).scalar()
        assert "DELETE FROM forum_sub" in query

    def test_events_emitted_counter(self, moodle_env):
        _db, runtime, trod = moodle_env
        before = trod.interposition.events_emitted
        runtime.submit("subscribeUser", "U1", "F1")
        # 2 txn events + 1 read event + 1 insert event + 1 request event.
        assert trod.interposition.events_emitted - before == 5
