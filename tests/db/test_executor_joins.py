"""Join execution tests: hash joins, nested loops, left joins."""

import pytest

from repro.db import Database
from repro.errors import PlanningError


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE dept (deptId INTEGER, deptName TEXT)")
    database.execute(
        "CREATE TABLE emp (empId INTEGER, name TEXT, deptId INTEGER, salary INTEGER)"
    )
    for dept_id, name in [(1, "eng"), (2, "sales"), (3, "empty")]:
        database.execute("INSERT INTO dept VALUES (?, ?)", (dept_id, name))
    for emp in [
        (1, "alice", 1, 100),
        (2, "bob", 1, 80),
        (3, "carol", 2, 90),
        (4, "dave", None, 70),
    ]:
        database.execute("INSERT INTO emp VALUES (?, ?, ?, ?)", emp)
    return database


class TestInnerJoins:
    def test_explicit_join_on(self, db):
        rs = db.execute(
            "SELECT e.name, d.deptName FROM emp e JOIN dept d"
            " ON e.deptId = d.deptId ORDER BY e.name"
        )
        assert rs.rows == [
            ("alice", "eng"), ("bob", "eng"), ("carol", "sales"),
        ]

    def test_paper_comma_join_with_on(self, db):
        rs = db.execute(
            "SELECT e.name FROM emp as e, dept as d ON e.deptId = d.deptId"
            " WHERE d.deptName = 'eng' ORDER BY e.name"
        )
        assert rs.column("name") == ["alice", "bob"]

    def test_comma_join_with_where_acts_as_join_predicate(self, db):
        rs = db.execute(
            "SELECT e.name FROM emp e, dept d"
            " WHERE e.deptId = d.deptId AND d.deptName = 'sales'"
        )
        assert rs.column("name") == ["carol"]

    def test_null_keys_never_join(self, db):
        rs = db.execute(
            "SELECT e.name FROM emp e JOIN dept d ON e.deptId = d.deptId"
        )
        assert "dave" not in rs.column("name")

    def test_join_with_residual_condition(self, db):
        rs = db.execute(
            "SELECT e.name FROM emp e JOIN dept d"
            " ON e.deptId = d.deptId AND e.salary > 85 ORDER BY e.name"
        )
        assert rs.column("name") == ["alice", "carol"]

    def test_non_equi_join_uses_nested_loop(self, db):
        rs = db.execute(
            "SELECT e.name, d.deptName FROM emp e JOIN dept d"
            " ON e.deptId < d.deptId WHERE e.name = 'alice' ORDER BY d.deptName"
        )
        assert rs.rows == [("alice", "empty"), ("alice", "sales")]

    def test_cross_join_cardinality(self, db):
        rs = db.execute("SELECT * FROM emp CROSS JOIN dept")
        assert len(rs) == 12
        rs = db.execute("SELECT * FROM emp, dept")
        assert len(rs) == 12

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE loc (deptId INTEGER, city TEXT)")
        db.execute("INSERT INTO loc VALUES (1, 'sf'), (2, 'nyc')")
        rs = db.execute(
            "SELECT e.name, l.city FROM emp e"
            " JOIN dept d ON e.deptId = d.deptId"
            " JOIN loc l ON d.deptId = l.deptId"
            " ORDER BY e.name"
        )
        assert rs.rows == [("alice", "sf"), ("bob", "sf"), ("carol", "nyc")]

    def test_self_join_requires_aliases(self, db):
        rs = db.execute(
            "SELECT a.name, b.name FROM emp a JOIN emp b"
            " ON a.deptId = b.deptId WHERE a.name < b.name"
        )
        assert rs.rows == [("alice", "bob")]

    def test_duplicate_binding_rejected(self, db):
        with pytest.raises(PlanningError):
            db.execute("SELECT * FROM emp JOIN emp ON emp.empId = emp.empId")


class TestLeftJoins:
    def test_left_join_null_extends(self, db):
        rs = db.execute(
            "SELECT e.name, d.deptName FROM emp e LEFT JOIN dept d"
            " ON e.deptId = d.deptId ORDER BY e.name"
        )
        assert ("dave", None) in rs.rows
        assert len(rs) == 4

    def test_left_join_where_on_inner_side_filters_nulls(self, db):
        rs = db.execute(
            "SELECT e.name FROM emp e LEFT JOIN dept d ON e.deptId = d.deptId"
            " WHERE d.deptName = 'eng' ORDER BY e.name"
        )
        assert rs.column("name") == ["alice", "bob"]

    def test_left_join_find_unmatched(self, db):
        rs = db.execute(
            "SELECT e.name FROM emp e LEFT JOIN dept d ON e.deptId = d.deptId"
            " WHERE d.deptId IS NULL"
        )
        assert rs.column("name") == ["dave"]

    def test_left_join_preserves_all_left_rows_of_empty_right(self, db):
        db.execute("CREATE TABLE nothing (deptId INTEGER)")
        rs = db.execute(
            "SELECT e.name FROM emp e LEFT JOIN nothing n ON e.deptId = n.deptId"
        )
        assert len(rs) == 4


class TestAmbiguity:
    def test_unqualified_ambiguous_column_rejected(self, db):
        with pytest.raises(PlanningError, match="ambiguous"):
            db.execute(
                "SELECT deptId FROM emp e JOIN dept d ON e.deptId = d.deptId"
            )

    def test_unqualified_unique_column_resolves(self, db):
        rs = db.execute(
            "SELECT name, deptName FROM emp e JOIN dept d"
            " ON e.deptId = d.deptId WHERE salary = 100"
        )
        assert rs.rows == [("alice", "eng")]
