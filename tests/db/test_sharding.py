"""Sharded execution correctness: a 4-shard cluster must be
indistinguishable from a single database (except for speed and scale).

The differential harness runs every query against a ``ShardedDatabase``
and an identically loaded single ``Database`` and asserts identical
results (as multisets, or exactly when ORDER BY fixes the order). On top
of that: routing/pruning behavior, partial-aggregate pushdown, broadcast
joins, multi-shard 2PC atomicity (including aborted prepares leaving no
partial state), and AS OF reads mapped through the aligned commit log.
"""

import pytest

from repro.db import Database, IsolationLevel, ShardedDatabase
from repro.db.sharding import ShardRouter, decompose_aggregate_stmt, stable_hash
from repro.db.sql.parser import parse_sql
from repro.errors import (
    ExecutionError,
    IntegrityError,
    SchemaError,
    TimeTravelError,
)

N_ROWS = 120


def build_pair() -> tuple[ShardedDatabase, Database]:
    """A 4-shard cluster and a single database with identical contents."""
    sharded = ShardedDatabase(
        4, shard_keys={"items": "id", "grps": "grp"}
    )
    single = Database()
    for db in (sharded, single):
        db.execute("CREATE TABLE items (id INTEGER, grp TEXT, val FLOAT)")
        db.execute("CREATE TABLE grps (grp TEXT, label TEXT)")
        db.execute("CREATE INDEX ix_items_id ON items (id)")
        txn = db.begin()
        for i in range(N_ROWS):
            db.execute(
                "INSERT INTO items VALUES (?, ?, ?)",
                (i, f"g{i % 6}", float(i % 11)),
                txn=txn,
            )
        for g in range(6):
            db.execute(
                "INSERT INTO grps VALUES (?, ?)", (f"g{g}", f"label-{g}"), txn=txn
            )
        txn.commit()
        # Version churn so as-of scans and chain walks do real work.
        db.execute("UPDATE items SET val = val + 0.5 WHERE id < 30")
    return sharded, single


@pytest.fixture(scope="module")
def pair():
    return build_pair()


def differential(pair, sql, params=(), ordered=False):
    sharded, single = pair
    got = sharded.execute(sql, params)
    want = single.execute(sql, params)
    assert got.columns == want.columns
    if ordered:
        assert got.rows == want.rows
    else:
        assert sorted(map(repr, got.rows)) == sorted(map(repr, want.rows))
    return got


class TestDifferentialSelects:
    def test_point_lookup(self, pair):
        differential(pair, "SELECT * FROM items WHERE id = ?", (42,))

    def test_point_lookup_miss(self, pair):
        result = differential(pair, "SELECT * FROM items WHERE id = ?", (10_000,))
        assert result.rows == []

    def test_in_list_lookup(self, pair):
        differential(
            pair, "SELECT * FROM items WHERE id IN (3, 57, 111) ORDER BY id",
            ordered=True,
        )

    def test_in_list_with_null_still_visits_owners(self, pair):
        """NULL pins contribute no owners but must not mask real ones."""
        result = differential(
            pair,
            "SELECT id FROM items WHERE id IN (3, NULL, 57) ORDER BY id",
            ordered=True,
        )
        assert [row[0] for row in result.rows] == [3, 57]
        differential(pair, "SELECT id FROM items WHERE id IN (?, ?)", (5, None))

    def test_range_scan(self, pair):
        differential(
            pair,
            "SELECT id, val FROM items WHERE id >= ? AND id < ? ORDER BY id",
            (25, 75),
            ordered=True,
        )

    def test_full_scan_with_predicate(self, pair):
        differential(pair, "SELECT id FROM items WHERE val > 5.0")

    def test_projection_expressions(self, pair):
        differential(
            pair,
            "SELECT id * 2 AS dbl, UPPER(grp) FROM items WHERE id < 10 "
            "ORDER BY id",
            ordered=True,
        )

    def test_distinct(self, pair):
        differential(pair, "SELECT DISTINCT grp FROM items ORDER BY grp", ordered=True)

    def test_limit_offset(self, pair):
        differential(
            pair,
            "SELECT id FROM items ORDER BY id LIMIT 7 OFFSET 3",
            ordered=True,
        )

    def test_fromless_select(self, pair):
        differential(pair, "SELECT 1 + 2", ordered=True)


class TestDifferentialAggregates:
    def test_global_count(self, pair):
        differential(pair, "SELECT COUNT(*) FROM items")

    def test_global_aggregates(self, pair):
        differential(
            pair,
            "SELECT COUNT(*), SUM(val), MIN(val), MAX(val), AVG(val) FROM items",
        )

    def test_group_by(self, pair):
        differential(
            pair,
            "SELECT grp, COUNT(*), AVG(val) FROM items GROUP BY grp ORDER BY grp",
            ordered=True,
        )

    def test_group_by_having(self, pair):
        differential(
            pair,
            "SELECT grp, COUNT(*) AS n FROM items WHERE val > 2 GROUP BY grp "
            "HAVING COUNT(*) > 10 ORDER BY n DESC, grp",
            ordered=True,
        )

    def test_aggregate_expression(self, pair):
        differential(
            pair,
            "SELECT grp, SUM(val) / COUNT(*) FROM items GROUP BY grp ORDER BY grp",
            ordered=True,
        )

    def test_avg_of_integers_stays_float(self, pair):
        """Native AVG always divides to float, even when the partial sums
        divide evenly — the pushed-down combine must match."""
        sharded, single = pair
        sql = "SELECT AVG(id) FROM items WHERE id < 8"
        got, want = sharded.execute(sql).scalar(), single.execute(sql).scalar()
        assert got == want
        assert type(got) is type(want) is float

    def test_avg_of_empty_group_is_null(self, pair):
        result = differential(
            pair, "SELECT AVG(val), SUM(val), COUNT(*) FROM items WHERE id < 0"
        )
        assert result.rows == [(None, None, 0)]

    def test_distinct_aggregate_falls_back_centrally(self, pair):
        sharded, _single = pair
        before = sharded.stats["partial_agg_queries"]
        differential(pair, "SELECT COUNT(DISTINCT grp) FROM items")
        assert sharded.stats["partial_agg_queries"] == before

    def test_decomposition_rejects_distinct(self):
        stmt = parse_sql("SELECT COUNT(DISTINCT grp) FROM items")
        assert decompose_aggregate_stmt(stmt) is None

    def test_aggregate_with_limit(self, pair):
        differential(
            pair,
            "SELECT grp, MAX(val) FROM items GROUP BY grp ORDER BY grp LIMIT 3",
            ordered=True,
        )


class TestDifferentialJoins:
    def test_two_table_join(self, pair):
        differential(
            pair,
            "SELECT i.id, g.label FROM items i JOIN grps g ON i.grp = g.grp "
            "WHERE i.id < 40 ORDER BY i.id",
            ordered=True,
        )

    def test_join_aggregate(self, pair):
        differential(
            pair,
            "SELECT g.label, COUNT(*) FROM items i JOIN grps g "
            "ON i.grp = g.grp GROUP BY g.label ORDER BY g.label",
            ordered=True,
        )

    def test_left_join_null_extension(self, pair):
        sharded, single = pair
        for db in pair:
            db.execute("INSERT INTO items VALUES (9000, 'ghost', 1.0)")
        try:
            differential(
                pair,
                "SELECT i.id, g.label FROM items i LEFT JOIN grps g "
                "ON i.grp = g.grp WHERE i.id >= 8999 ORDER BY i.id",
                ordered=True,
            )
        finally:
            for db in pair:
                db.execute("DELETE FROM items WHERE id = 9000")

    def test_key_pinned_join_prunes_partitioned_scans(self, pair):
        """A WHERE pin on the partitioned table's shard key routes the
        join's partitioned side to one shard (broadcast sides still
        gather from everywhere)."""
        sharded, _ = pair
        before = sharded.stats["routed_statements"]
        differential(
            pair,
            "SELECT i.id, g.label FROM items i JOIN grps g ON i.grp = g.grp "
            "WHERE i.id = ?",
            (42,),
        )
        assert sharded.stats["routed_statements"] == before + 1
        # An ambiguous unqualified pin (column exists on both tables)
        # must NOT prune; here 'grp' is items' key in no schema, but
        # guard the qualifier logic with a same-named column scenario.
        differential(
            pair,
            "SELECT i.id FROM items i JOIN grps g ON i.grp = g.grp "
            "WHERE id = ? ORDER BY i.id",
            (7,),
            ordered=True,
        )

    def test_join_with_filter_on_broadcast_side(self, pair):
        differential(
            pair,
            "SELECT i.id FROM items i JOIN grps g ON i.grp = g.grp "
            "WHERE g.label = 'label-2' ORDER BY i.id",
            ordered=True,
        )


class TestRouting:
    def test_point_query_prunes_to_one_shard(self, pair):
        sharded, _ = pair
        [line] = sharded.explain("SELECT * FROM items WHERE id = 42")[:1]
        assert "ShardedScatterGather" in line
        assert line.count("shard") == 1

    def test_explain_routes_with_bound_params(self, pair):
        sharded, _ = pair
        sql = "SELECT * FROM items WHERE id = ?"
        [with_params] = sharded.explain(sql, (42,))[:1]
        assert with_params.count("shard") == 1
        # Without the binding the pin cannot be evaluated: full fan-out.
        [without] = sharded.explain(sql)[:1]
        assert without.count("shard") == sharded.n_shards

    def test_range_query_fans_out(self, pair):
        sharded, _ = pair
        [line] = sharded.explain("SELECT * FROM items WHERE id > 42")[:1]
        assert line.count("shard") == sharded.n_shards

    def test_rows_land_on_hashed_shard(self, pair):
        sharded, _ = pair
        for key in (0, 17, 63, 111):
            owner = sharded.router.shard_for_value(key)
            shard = sharded.shard_named(owner)
            assert (
                shard.execute(
                    "SELECT COUNT(*) FROM items WHERE id = ?", (key,)
                ).scalar()
                == 1
            )
            for store, other in sharded.named_shards():
                if store != owner:
                    assert (
                        other.execute(
                            "SELECT COUNT(*) FROM items WHERE id = ?", (key,)
                        ).scalar()
                        == 0
                    )

    def test_stable_hash_is_type_tolerant(self):
        assert stable_hash(5) == stable_hash(5.0)
        assert stable_hash("5") != stable_hash(5)

    def test_router_key_null_matches_nothing(self, pair):
        sharded, _ = pair
        assert sharded.execute("SELECT * FROM items WHERE id = NULL").rows == []

    def test_router_defaults_to_primary_key(self):
        sdb = ShardedDatabase(2)
        sdb.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")
        assert sdb.router.key_column("t") == "k"

    def test_router_defaults_to_first_column(self):
        sdb = ShardedDatabase(2)
        sdb.execute("CREATE TABLE t (a TEXT, b TEXT)")
        assert sdb.router.key_column("t") == "a"

    def test_bad_shard_key_hint_rejected(self):
        sdb = ShardedDatabase(2, shard_keys={"t": "nope"})
        with pytest.raises(SchemaError, match="shard key"):
            sdb.execute("CREATE TABLE t (a TEXT)")

    def test_router_needs_shards(self):
        with pytest.raises(SchemaError):
            ShardRouter([])


class TestShardedWrites:
    def fresh(self) -> ShardedDatabase:
        # The unique constraint includes the shard key, so per-shard
        # indexes enforce it globally (the only shape the facade allows).
        sdb = ShardedDatabase(4, shard_keys={"kv": "k"})
        sdb.execute("CREATE TABLE kv (k INTEGER UNIQUE, v TEXT)")
        return sdb

    def test_unique_on_non_shard_key_rejected(self):
        """Cross-shard duplicates would be invisible to per-shard unique
        indexes; such schemas are rejected rather than silently broken."""
        sdb = ShardedDatabase(4, shard_keys={"kv": "k"})
        with pytest.raises(SchemaError, match="shard key"):
            sdb.execute("CREATE TABLE kv (k INTEGER, v TEXT UNIQUE)")
        # The rejection left no shard with the table.
        for _store, shard in sdb.named_shards():
            assert not shard.catalog.has_table("kv")
        assert sdb.router.key_column("kv") is None

    def test_unique_including_shard_key_enforced_globally(self):
        sdb = self.fresh()
        sdb.execute("INSERT INTO kv VALUES (1, 'a')")
        with pytest.raises(IntegrityError):
            sdb.execute("INSERT INTO kv VALUES (1, 'b')")
        assert sdb.execute("SELECT COUNT(*) FROM kv").scalar() == 1

    def test_unique_index_on_non_shard_key_rejected(self):
        sdb = self.fresh()
        with pytest.raises(SchemaError, match="shard key"):
            sdb.execute("CREATE UNIQUE INDEX ux_v ON kv (v)")
        for _store, shard in sdb.named_shards():
            assert "ux_v" not in shard.index_set("kv").indexes
        # A unique index that includes the key (and plain indexes on any
        # column) remain legal.
        sdb.execute("CREATE UNIQUE INDEX ux_k ON kv (k)")
        sdb.execute("CREATE INDEX ix_v ON kv (v)")

    def test_failed_if_not_exists_create_unwinds_created_shards(self):
        """IF NOT EXISTS compensation drops only what this statement
        created, leaving genuinely pre-existing tables alone."""
        sdb = ShardedDatabase(2)
        with pytest.raises(SchemaError, match="shard key"):
            sdb.execute(
                "CREATE TABLE IF NOT EXISTS bad (a INTEGER, b TEXT UNIQUE)"
            )
        for _store, shard in sdb.named_shards():
            assert not shard.catalog.has_table("bad")

    def test_multi_shard_transactional_write(self):
        sdb = self.fresh()
        gtxn = sdb.begin()
        for k in range(8):
            sdb.execute("INSERT INTO kv VALUES (?, ?)", (k, f"v{k}"), txn=gtxn)
        global_csn = gtxn.commit()
        assert global_csn == 1
        commit = sdb.coordinator.aligned_log[0]
        assert len(commit.local_csns) > 1  # genuinely spanned shards
        assert sdb.execute("SELECT COUNT(*) FROM kv").scalar() == 8

    def test_multi_row_autocommit_insert_is_atomic(self):
        sdb = self.fresh()
        sdb.execute(
            "INSERT INTO kv VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd')"
        )
        assert len(sdb.coordinator.aligned_log) == 1
        assert sdb.execute("SELECT COUNT(*) FROM kv").scalar() == 4

    def test_aborted_2pc_leaves_no_partial_state(self):
        sdb = self.fresh()
        gtxn = sdb.begin(IsolationLevel.SNAPSHOT)
        # Spread writes across every shard, then create a unique conflict
        # that only prepare-time validation can see: a concurrent writer
        # commits the same key value after the branch's snapshot.
        for k in range(2, 10):
            sdb.execute("INSERT INTO kv VALUES (?, ?)", (k, f"v{k}"), txn=gtxn)
        sdb.execute("INSERT INTO kv VALUES (99, 'mine')", txn=gtxn)
        owner = sdb.shard_named(sdb.router.shard_for_value(99))
        other = owner.begin(IsolationLevel.SNAPSHOT)
        owner.execute("INSERT INTO kv VALUES (99, 'winner')", txn=other)
        other.commit()
        with pytest.raises(IntegrityError):
            gtxn.commit()
        # Prepare failed on one branch; every other prepared branch was
        # rolled back — only the concurrent writer's row survives.
        assert sdb.execute("SELECT COUNT(*) FROM kv").scalar() == 1
        for _store, shard in sdb.named_shards():
            assert not shard.txn_manager.active
        assert sdb.coordinator.aligned_log == []

    def test_explicit_abort_discards_all_branches(self):
        sdb = self.fresh()
        gtxn = sdb.begin()
        for k in range(6):
            sdb.execute("INSERT INTO kv VALUES (?, ?)", (k, f"v{k}"), txn=gtxn)
        gtxn.abort()
        assert sdb.execute("SELECT COUNT(*) FROM kv").scalar() == 0

    def test_snapshot_gtxn_never_sees_torn_2pc_state(self):
        """All SNAPSHOT branches snapshot at one point in the global
        commit order, so an atomic cross-shard transfer committed
        mid-transaction is either fully visible or fully invisible."""
        sdb = ShardedDatabase(4, shard_keys={"accounts": "acct"})
        sdb.execute("CREATE TABLE accounts (acct INTEGER, bal FLOAT)")
        src = 0
        dst = next(
            k
            for k in range(1, 50)
            if sdb.router.shard_for_value(k) != sdb.router.shard_for_value(src)
        )
        for key in (src, dst):
            sdb.execute("INSERT INTO accounts VALUES (?, 100.0)", (key,))
        reader = sdb.begin(IsolationLevel.SNAPSHOT)
        # Touch only the source shard first; the destination branch must
        # NOT snapshot later than this.
        assert (
            sdb.execute(
                "SELECT bal FROM accounts WHERE acct = ?", (src,), txn=reader
            ).scalar()
            == 100.0
        )
        transfer = sdb.begin()
        sdb.execute(
            "UPDATE accounts SET bal = bal - 50 WHERE acct = ?", (src,), txn=transfer
        )
        sdb.execute(
            "UPDATE accounts SET bal = bal + 50 WHERE acct = ?", (dst,), txn=transfer
        )
        transfer.commit()
        total = sdb.execute(
            "SELECT SUM(bal) FROM accounts", txn=reader
        ).scalar()
        reader.abort()
        assert total == 200.0  # never 250 (half-applied transfer)

    def test_read_your_own_writes_in_global_txn(self):
        sdb = self.fresh()
        # SNAPSHOT writers take no table locks, so the outside read below
        # does not block on 2PL (matching single-database behavior).
        gtxn = sdb.begin(IsolationLevel.SNAPSHOT)
        for k in range(6):
            sdb.execute("INSERT INTO kv VALUES (?, ?)", (k, f"v{k}"), txn=gtxn)
        assert (
            sdb.execute("SELECT COUNT(*) FROM kv", txn=gtxn).scalar() == 6
        )
        # Not visible outside the transaction yet.
        assert sdb.execute("SELECT COUNT(*) FROM kv").scalar() == 0
        gtxn.commit()

    def test_update_cannot_move_shard_key(self):
        sdb = self.fresh()
        sdb.execute("INSERT INTO kv VALUES (1, 'a')")
        with pytest.raises(ExecutionError, match="shard key"):
            sdb.execute("UPDATE kv SET k = 2 WHERE k = 1")

    def test_routed_update_and_delete(self):
        sdb = self.fresh()
        for k in range(10):
            sdb.execute("INSERT INTO kv VALUES (?, ?)", (k, f"v{k}"))
        assert sdb.execute("UPDATE kv SET v = 'x' WHERE k = 3").rowcount == 1
        assert sdb.execute("SELECT v FROM kv WHERE k = 3").scalar() == "x"
        assert sdb.execute("DELETE FROM kv WHERE k IN (3, 4)").rowcount == 2
        assert sdb.execute("SELECT COUNT(*) FROM kv").scalar() == 8

    def test_delete_with_null_param_in_pin_list(self):
        """A NULL among the pinned keys must not strand the real key's
        delete on the wrong shard."""
        sdb = self.fresh()
        for k in range(6):
            sdb.execute("INSERT INTO kv VALUES (?, ?)", (k, f"v{k}"))
        assert (
            sdb.execute("DELETE FROM kv WHERE k IN (?, ?)", (2, None)).rowcount
            == 1
        )
        assert sdb.execute("SELECT COUNT(*) FROM kv WHERE k = 2").scalar() == 0

    def test_read_committed_write_sees_refreshed_view(self):
        """Per-statement view refresh applies to writes, matching the
        single-database begin_statement behavior."""
        sdb = self.fresh()
        gtxn = sdb.begin(IsolationLevel.READ_COMMITTED)
        # Materialize branches on every shard before the outside commit.
        sdb.execute("SELECT COUNT(*) FROM kv", txn=gtxn)
        sdb.execute("INSERT INTO kv VALUES (1, 'a')")  # concurrent commit
        assert (
            sdb.execute("UPDATE kv SET v = 'patched' WHERE k = 1", txn=gtxn)
            .rowcount
            == 1
        )
        gtxn.commit()
        assert sdb.execute("SELECT v FROM kv WHERE k = 1").scalar() == "patched"

    def test_insert_select_routes_rows(self):
        sdb = ShardedDatabase(4, shard_keys={"kv": "k", "copy": "k"})
        sdb.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
        sdb.execute("CREATE TABLE copy (k INTEGER, v TEXT)")
        for k in range(12):
            sdb.execute("INSERT INTO kv VALUES (?, ?)", (k, f"v{k}"))
        sdb.execute("INSERT INTO copy SELECT k, v FROM kv WHERE k < 8")
        assert sdb.execute("SELECT COUNT(*) FROM copy").scalar() == 8
        # Copied rows landed on their hash-owning shards.
        for k in range(8):
            owner = sdb.router.shard_for_value(k)
            assert (
                sdb.shard_named(owner)
                .execute("SELECT COUNT(*) FROM copy WHERE k = ?", (k,))
                .scalar()
                == 1
            )


class TestShardedTimeTravel:
    def build(self):
        sdb = ShardedDatabase(3, shard_keys={"kv": "k"})
        sdb.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
        checkpoints = []
        for step in range(4):
            gtxn = sdb.begin()
            for k in range(step * 4, step * 4 + 4):
                sdb.execute(
                    "INSERT INTO kv VALUES (?, ?)", (k, f"s{step}"), txn=gtxn
                )
            checkpoints.append(gtxn.commit())
        return sdb, checkpoints

    def test_as_of_query_through_aligned_log(self):
        sdb, checkpoints = self.build()
        for step, csn in enumerate(checkpoints):
            assert (
                sdb.execute_as_of("SELECT COUNT(*) FROM kv", csn).scalar()
                == (step + 1) * 4
            )
        assert sdb.execute_as_of("SELECT COUNT(*) FROM kv", 0).scalar() == 0

    def test_as_of_matches_single_db_history(self):
        # The sharded AS OF state equals replaying the same commits on a
        # single database and reading its corresponding local CSN.
        sdb, checkpoints = self.build()
        single = Database()
        single.execute("CREATE TABLE kv (k INTEGER, v TEXT)")
        local_csns = []
        for step in range(4):
            txn = single.begin()
            for k in range(step * 4, step * 4 + 4):
                single.execute(
                    "INSERT INTO kv VALUES (?, ?)", (k, f"s{step}"), txn=txn
                )
            local_csns.append(txn.commit())
        for global_csn, local_csn in zip(checkpoints, local_csns):
            got = sorted(
                (r["k"], r["v"]) for r in sdb.time_travel.rows_as_of("kv", global_csn)
            )
            want = sorted(
                (r["k"], r["v"]) for r in single.table_rows("kv", csn=local_csn)
            )
            assert got == want

    def test_rows_as_of_and_state_as_of(self):
        sdb, checkpoints = self.build()
        rows = sdb.time_travel.rows_as_of("kv", checkpoints[1])
        assert len(rows) == 8
        state = sdb.time_travel.state_as_of(checkpoints[0])
        assert sorted(r["k"] for r in state["kv"]) == [0, 1, 2, 3]

    def test_local_csn_translation(self):
        sdb, checkpoints = self.build()
        local = sdb.time_travel.local_csns_at(checkpoints[-1])
        assert set(local) == set(sdb.store_names)
        for store, shard in sdb.named_shards():
            assert local[store] == shard.last_csn

    def test_future_global_csn_rejected(self):
        sdb, _checkpoints = self.build()
        with pytest.raises(TimeTravelError):
            sdb.time_travel.rows_as_of("kv", 99)
        with pytest.raises(TimeTravelError):
            sdb.time_travel.local_csns_at(-1)

    def test_as_of_below_vacuum_horizon_rejected(self):
        sdb, checkpoints = self.build()
        for _store, shard in sdb.named_shards():
            shard.vacuum(shard.last_csn)
        with pytest.raises(TimeTravelError, match="horizon"):
            sdb.execute_as_of("SELECT COUNT(*) FROM kv", checkpoints[0])
        # The latest state is still readable.
        assert (
            sdb.execute_as_of("SELECT COUNT(*) FROM kv", checkpoints[-1]).scalar()
            == 16
        )

    def test_updates_are_versioned_across_shards(self):
        sdb, checkpoints = self.build()
        before = sdb.last_global_csn
        sdb.execute("UPDATE kv SET v = 'patched'")
        assert sdb.execute_as_of(
            "SELECT COUNT(*) FROM kv WHERE v = 'patched'", before
        ).scalar() == 0
        assert (
            sdb.execute("SELECT COUNT(*) FROM kv WHERE v = 'patched'").scalar() == 16
        )


class TestFacadeParity:
    def test_param_count_checked(self, pair):
        sharded, _ = pair
        with pytest.raises(ExecutionError, match="parameter"):
            sharded.execute("SELECT * FROM items WHERE id = ?")

    def test_ddl_applies_to_every_shard(self):
        sdb = ShardedDatabase(3)
        sdb.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        sdb.execute("CREATE INDEX ix_a ON t (a)")
        for _store, shard in sdb.named_shards():
            assert shard.catalog.has_table("t")
            assert "ix_a" in shard.index_set("t").indexes
        sdb.execute("DROP INDEX ix_a ON t")
        sdb.execute("DROP TABLE t")
        for _store, shard in sdb.named_shards():
            assert not shard.catalog.has_table("t")
        assert sdb.router.key_column("t") is None

    def test_failed_unique_index_unwinds_on_every_shard(self):
        """CREATE UNIQUE INDEX failing on one shard's partition must not
        leave other shards enforcing a constraint that shard lacks."""
        sdb = ShardedDatabase(4, shard_keys={"t": "k"})
        sdb.execute("CREATE TABLE t (k INTEGER, g TEXT)")
        # Two rows with the same g on the same shard (same shard key)
        # make the unique build fail exactly on that shard.
        owner_key = 7
        sdb.execute("INSERT INTO t VALUES (?, 'dup')", (owner_key,))
        gtxn = sdb.begin()
        sdb.execute("INSERT INTO t VALUES (?, 'dup')", (owner_key,), txn=gtxn)
        gtxn.commit()
        for k in range(20, 26):
            sdb.execute("INSERT INTO t VALUES (?, ?)", (k, f"g{k}"))
        with pytest.raises(Exception):
            sdb.execute("CREATE UNIQUE INDEX ug ON t (g)")
        for _store, shard in sdb.named_shards():
            assert "ug" not in shard.index_set("t").indexes
        # No phantom constraint anywhere: duplicate values still insert
        # uniformly on every shard.
        sdb.execute("INSERT INTO t VALUES (?, 'g20')", (40,))
        assert (
            sdb.execute("SELECT COUNT(*) FROM t WHERE g = 'g20'").scalar() == 2
        )

    def test_duplicate_create_index_keeps_existing_index(self):
        """A failing re-CREATE of an existing index must not take the
        healthy original down with it during compensation."""
        sdb = ShardedDatabase(2, shard_keys={"t": "k"})
        sdb.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        sdb.execute("CREATE INDEX ix ON t (k)")
        with pytest.raises(Exception):
            sdb.execute("CREATE INDEX ix ON t (k)")
        # Index names are case-insensitive; a case-variant duplicate must
        # not fare any differently.
        with pytest.raises(Exception):
            sdb.execute("CREATE INDEX IX ON t (k)")
        for _store, shard in sdb.named_shards():
            assert "ix" in shard.index_set("t").indexes

    def test_failed_create_table_unwinds(self):
        sdb = ShardedDatabase(2)
        # Table-level PRIMARY KEY referencing an unknown column fails
        # during creation on the first shard already; either way no
        # shard may keep the table.
        with pytest.raises(Exception):
            sdb.execute("CREATE TABLE bad (a INTEGER, PRIMARY KEY (zz))")
        for _store, shard in sdb.named_shards():
            assert not shard.catalog.has_table("bad")

    def test_table_rows_merges_shards(self, pair):
        sharded, single = pair
        got = sorted(r["id"] for r in sharded.table_rows("items"))
        want = sorted(r["id"] for r in single.table_rows("items"))
        assert got == want

    def test_adopted_databases_register_existing_tables(self):
        dbs = [Database(name=f"pre{i}") for i in range(2)]
        for db in dbs:
            db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        sdb = ShardedDatabase(databases=dbs, shard_keys={"t": "k"})
        assert sdb.router.key_column("t") == "k"
        for k in range(8):
            sdb.execute("INSERT INTO t VALUES (?, ?)", (k, f"v{k}"))
        assert sdb.execute("SELECT COUNT(*) FROM t").scalar() == 8

    def test_adopted_databases_must_have_uniform_catalogs(self):
        a = Database()
        a.execute("CREATE TABLE t (k INTEGER)")
        b = Database()  # missing the table
        with pytest.raises(SchemaError, match="uniform"):
            ShardedDatabase(databases=[a, b])

    def test_adopted_databases_must_have_uniform_column_layouts(self):
        a = Database()
        a.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        b = Database()
        b.execute("CREATE TABLE t (v TEXT, id INTEGER)")  # swapped slots
        with pytest.raises(SchemaError, match="uniform"):
            ShardedDatabase(databases=[a, b], shard_keys={"t": "id"})

    def test_adopted_unique_index_must_include_shard_key(self):
        dbs = [Database(name=f"pre{i}") for i in range(2)]
        for db in dbs:
            db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
            db.execute("CREATE UNIQUE INDEX uv ON t (v)")
        with pytest.raises(SchemaError, match="shard key"):
            ShardedDatabase(databases=dbs, shard_keys={"t": "k"})

    def test_adopted_index_uniqueness_must_match(self):
        a = Database()
        a.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        a.execute("CREATE UNIQUE INDEX ik ON t (k)")
        b = Database()
        b.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        b.execute("CREATE INDEX ik ON t (k)")  # same name, not unique
        with pytest.raises(SchemaError, match="uniform"):
            ShardedDatabase(databases=[a, b], shard_keys={"t": "k"})

    def test_adopted_databases_must_have_hash_consistent_placement(self):
        """Rows loaded under a different partitioning scheme would dodge
        key-routed reads; adoption verifies placement up front."""
        dbs = [Database(name=f"pre{i}") for i in range(2)]
        for db in dbs:
            db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        # Put a row on the wrong store on purpose.
        probe = ShardRouter(["shard0", "shard1"])
        probe.register_table("t", "k")
        misplaced = next(
            k for k in range(100) if probe.shard_for_value(k) == "shard1"
        )
        dbs[0].execute("INSERT INTO t VALUES (?, 'oops')", (misplaced,))
        with pytest.raises(SchemaError, match="re-partition"):
            ShardedDatabase(databases=dbs, shard_keys={"t": "k"})

    def test_broadcast_join_records_reads_on_both_tables(self):
        sdb = ShardedDatabase(2, shard_keys={"items": "id", "grps": "grp"})
        sdb.execute("CREATE TABLE items (id INTEGER, grp TEXT)")
        sdb.execute("CREATE TABLE grps (grp TEXT, label TEXT)")
        for i in range(8):
            sdb.execute("INSERT INTO items VALUES (?, ?)", (i, f"g{i % 2}"))
        for g in range(2):
            sdb.execute("INSERT INTO grps VALUES (?, ?)", (f"g{g}", f"l{g}"))
        for _store, shard in sdb.named_shards():
            shard.track_reads = True
        gtxn = sdb.begin()
        sdb.execute(
            "SELECT COUNT(*) FROM items i JOIN grps g ON i.grp = g.grp",
            txn=gtxn,
        )
        tables_read = set()
        for store in gtxn.stores_joined():
            tables_read.update(
                record.table for record in gtxn.on(store).read_records
            )
        gtxn.abort()
        assert tables_read == {"items", "grps"}

    def test_scatter_plans_cache_and_survive_ddl(self):
        sdb = ShardedDatabase(2, shard_keys={"t": "k"})
        sdb.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        for k in range(10):
            sdb.execute("INSERT INTO t VALUES (?, ?)", (k, f"v{k}"))
        sql = "SELECT v FROM t WHERE k = ?"
        assert sdb.execute(sql, (3,)).scalar() == "v3"
        assert sdb.execute(sql, (4,)).scalar() == "v4"
        assert len(sdb._select_cache) == 1
        # DDL drops the cache; a stale plan would miss the new index and,
        # worse, reference dropped schema objects.
        sdb.execute("CREATE INDEX ix_k ON t (k)")
        assert sdb._select_cache == {}
        assert sdb.execute(sql, (5,)).scalar() == "v5"
        # The cached merge plan returns fresh rows per execution (the
        # shared RowsNode is swapped, not accumulated).
        assert len(sdb.execute("SELECT * FROM t WHERE k >= 0").rows) == 10
        assert len(sdb.execute("SELECT * FROM t WHERE k >= 0").rows) == 10

    def test_reads_leave_no_aligned_commits(self):
        sdb = ShardedDatabase(2, shard_keys={"t": "a"})
        sdb.execute("CREATE TABLE t (a INTEGER)")
        sdb.execute("INSERT INTO t VALUES (1)")
        log_len = len(sdb.coordinator.aligned_log)
        sdb.execute("SELECT * FROM t")
        sdb.execute("SELECT COUNT(*) FROM t")
        # A read-only global transaction (whose SNAPSHOT branches join
        # every shard eagerly) records nothing either.
        gtxn = sdb.begin(IsolationLevel.SNAPSHOT)
        sdb.execute("SELECT COUNT(*) FROM t", txn=gtxn)
        gtxn.commit()
        assert len(sdb.coordinator.aligned_log) == log_len

    def test_read_only_branches_commit_for_observers(self):
        """Observers on a read-touched shard must see txn_committed (the
        global outcome), never txn_aborted, and still no aligned entry."""
        sdb = ShardedDatabase(2, shard_keys={"t": "a"})
        sdb.execute("CREATE TABLE t (a INTEGER)")
        sdb.execute("INSERT INTO t VALUES (1)")

        class Outcomes:
            def __init__(self):
                self.events = []

            def txn_committed(self, txn, csn, cdc):
                self.events.append("committed")

            def txn_aborted(self, txn):
                self.events.append("aborted")

        observers = []
        for _store, shard in sdb.named_shards():
            observer = Outcomes()
            shard.add_observer(observer)
            observers.append(observer)
        gtxn = sdb.begin(IsolationLevel.SNAPSHOT)  # joins both branches
        sdb.execute("SELECT COUNT(*) FROM t", txn=gtxn)
        gtxn.commit()
        events = [e for o in observers for e in o.events]
        assert events == ["committed", "committed"]
        assert len(sdb.coordinator.aligned_log) == 1  # just the INSERT

    def test_mixed_gtxn_records_only_writing_branches(self):
        sdb = ShardedDatabase(4, shard_keys={"t": "a"})
        sdb.execute("CREATE TABLE t (a INTEGER)")
        gtxn = sdb.begin(IsolationLevel.SNAPSHOT)  # joins all 4 branches
        sdb.execute("SELECT COUNT(*) FROM t", txn=gtxn)
        sdb.execute("INSERT INTO t VALUES (1)", txn=gtxn)
        gtxn.commit()
        [commit] = sdb.coordinator.aligned_log
        owner = sdb.router.shard_for_value(1)
        assert list(commit.local_csns) == [owner]

    def test_statement_traces_fire_on_shards(self):
        """TROD interposition attaches to the shard databases; facade
        statements must surface statement_executed traces there."""
        sdb = ShardedDatabase(2, shard_keys={"t": "k"})
        sdb.execute("CREATE TABLE t (k INTEGER, v TEXT)")

        class Collector:
            def __init__(self):
                self.traces = []

            def statement_executed(self, txn, trace):
                self.traces.append(trace)

        collectors = []
        for _store, shard in sdb.named_shards():
            collector = Collector()
            shard.add_observer(collector)
            collectors.append(collector)
        for k in range(4):
            sdb.execute("INSERT INTO t VALUES (?, 'x')", (k,))
        sdb.execute("SELECT * FROM t")
        sdb.execute("UPDATE t SET v = 'y' WHERE k = 2")
        sdb.execute("DELETE FROM t WHERE k = 3")
        kinds = {t.kind for c in collectors for t in c.traces}
        assert kinds == {"insert", "select", "update", "delete"}
        writes = [w for c in collectors for t in c.traces for w in t.writes]
        assert {op for op, _t, _r in writes} == {"insert", "update", "delete"}
