"""INSERT / UPDATE / DELETE / DDL execution tests."""

import pytest

from repro.db import Database
from repro.errors import (
    ExecutionError,
    IntegrityError,
    SchemaError,
    TypeCoercionError,
)


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute(
        "CREATE TABLE items ("
        " id INTEGER PRIMARY KEY, name TEXT NOT NULL, qty INTEGER DEFAULT 0)"
    )
    return database


class TestInsert:
    def test_insert_reports_rowcount_and_ids(self, db):
        rs = db.execute("INSERT INTO items (id, name) VALUES (1, 'a'), (2, 'b')")
        assert rs.rowcount == 2
        assert len(rs.row_ids) == 2

    def test_defaults_applied(self, db):
        db.execute("INSERT INTO items (id, name) VALUES (1, 'a')")
        assert db.execute("SELECT qty FROM items").scalar() == 0

    def test_insert_without_column_list(self, db):
        db.execute("INSERT INTO items VALUES (1, 'a', 5)")
        assert db.execute("SELECT qty FROM items").scalar() == 5

    def test_arity_mismatch(self, db):
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO items (id, name) VALUES (1)")

    def test_unknown_column(self, db):
        with pytest.raises(SchemaError):
            db.execute("INSERT INTO items (id, nope) VALUES (1, 2)")

    def test_primary_key_violation(self, db):
        db.execute("INSERT INTO items (id, name) VALUES (1, 'a')")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO items (id, name) VALUES (1, 'b')")

    def test_pk_violation_within_one_statement(self, db):
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO items (id, name) VALUES (1, 'a'), (1, 'b')")

    def test_not_null_violation(self, db):
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO items (id) VALUES (1)")

    def test_type_mismatch(self, db):
        with pytest.raises(TypeCoercionError):
            db.execute("INSERT INTO items (id, name) VALUES ('x', 'a')")

    def test_failed_autocommit_insert_leaves_no_trace(self, db):
        db.execute("INSERT INTO items (id, name) VALUES (1, 'a')")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO items (id, name) VALUES (2, 'b'), (1, 'dup')")
        assert db.execute("SELECT COUNT(*) FROM items").scalar() == 1


class TestUpdate:
    def test_update_matched_rows(self, db):
        db.execute("INSERT INTO items VALUES (1, 'a', 1), (2, 'b', 2)")
        rs = db.execute("UPDATE items SET qty = qty * 10 WHERE qty > 1")
        assert rs.rowcount == 1
        assert db.execute("SELECT qty FROM items WHERE id = 2").scalar() == 20

    def test_update_all(self, db):
        db.execute("INSERT INTO items VALUES (1, 'a', 1), (2, 'b', 2)")
        assert db.execute("UPDATE items SET qty = 0").rowcount == 2

    def test_update_self_referencing_expression(self, db):
        db.execute("INSERT INTO items VALUES (1, 'a', 7)")
        db.execute("UPDATE items SET qty = qty + qty")
        assert db.execute("SELECT qty FROM items").scalar() == 14

    def test_update_not_null_violation(self, db):
        db.execute("INSERT INTO items VALUES (1, 'a', 1)")
        with pytest.raises(IntegrityError):
            db.execute("UPDATE items SET name = NULL")

    def test_update_pk_to_conflicting_value(self, db):
        db.execute("INSERT INTO items VALUES (1, 'a', 1), (2, 'b', 2)")
        with pytest.raises(IntegrityError):
            db.execute("UPDATE items SET id = 1 WHERE id = 2")

    def test_update_with_params(self, db):
        db.execute("INSERT INTO items VALUES (1, 'a', 1)")
        db.execute("UPDATE items SET name = ? WHERE id = ?", ("z", 1))
        assert db.execute("SELECT name FROM items").scalar() == "z"


class TestDelete:
    def test_delete_matched(self, db):
        db.execute("INSERT INTO items VALUES (1, 'a', 1), (2, 'b', 2)")
        assert db.execute("DELETE FROM items WHERE id = 1").rowcount == 1
        assert db.execute("SELECT COUNT(*) FROM items").scalar() == 1

    def test_delete_all(self, db):
        db.execute("INSERT INTO items VALUES (1, 'a', 1), (2, 'b', 2)")
        assert db.execute("DELETE FROM items").rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM items").scalar() == 0

    def test_delete_then_reinsert_pk(self, db):
        db.execute("INSERT INTO items VALUES (1, 'a', 1)")
        db.execute("DELETE FROM items WHERE id = 1")
        db.execute("INSERT INTO items VALUES (1, 'b', 2)")
        assert db.execute("SELECT name FROM items").scalar() == "b"


class TestDdl:
    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS items (x INTEGER)")  # no error
        with pytest.raises(SchemaError):
            db.execute("CREATE TABLE items (x INTEGER)")

    def test_drop_table(self, db):
        db.execute("DROP TABLE items")
        with pytest.raises(SchemaError):
            db.execute("SELECT * FROM items")

    def test_drop_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS nonexistent")

    def test_create_index_speeds_up_probe_path(self, db):
        # Functional check only: results identical with an index present.
        for i in range(50):
            db.execute(
                "INSERT INTO items (id, name, qty) VALUES (?, ?, ?)",
                (i, f"n{i}", i % 5),
            )
        before = db.execute("SELECT COUNT(*) FROM items WHERE name = 'n7'").scalar()
        db.execute("CREATE INDEX ix_name ON items (name)")
        after = db.execute("SELECT COUNT(*) FROM items WHERE name = 'n7'").scalar()
        assert before == after == 1

    def test_unique_index_enforces(self, db):
        db.execute("CREATE UNIQUE INDEX ix_name ON items (name)")
        db.execute("INSERT INTO items (id, name) VALUES (1, 'a')")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO items (id, name) VALUES (2, 'a')")

    def test_table_level_pk(self, db):
        db.execute("CREATE TABLE pairs (a INTEGER, b INTEGER, PRIMARY KEY (a, b))")
        db.execute("INSERT INTO pairs VALUES (1, 1), (1, 2)")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO pairs VALUES (1, 1)")
