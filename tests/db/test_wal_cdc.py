"""WAL (durability/recovery) and CDC (change capture) tests."""

import pytest

from repro.db import Database
from repro.db.cdc import CdcStream
from repro.db.schema import Column, TableSchema
from repro.db.storage import TableStore
from repro.db.types import ColumnType
from repro.db.txn.wal import WalChange, WalCommit, WriteAheadLog, recover_into
from repro.errors import WalError


class TestWal:
    def test_commit_order_enforced(self):
        wal = WriteAheadLog()
        wal.append(WalCommit(csn=1, txn_id=1, changes=()))
        with pytest.raises(WalError):
            wal.append(WalCommit(csn=1, txn_id=2, changes=()))

    def test_commits_since(self):
        wal = WriteAheadLog()
        for csn in (1, 2, 3):
            wal.append(WalCommit(csn=csn, txn_id=csn, changes=()))
        assert [c.csn for c in wal.commits(since_csn=1)] == [2, 3]
        assert wal.last_csn() == 3

    def test_json_roundtrip(self):
        change = WalChange(
            op="update", table="t", row_id=3, values=("a", 1), old_values=("a", 0)
        )
        commit = WalCommit(csn=5, txn_id=7, changes=(change,))
        restored = WalCommit.from_json(commit.to_json())
        assert restored == commit

    def test_file_persistence_and_load(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path)
        wal.append(
            WalCommit(
                csn=1,
                txn_id=1,
                changes=(
                    WalChange("insert", "t", 1, ("a", 1), None),
                ),
            )
        )
        wal.close()
        loaded = WriteAheadLog.load(path)
        assert len(loaded) == 1
        assert loaded.commits().__next__().changes[0].values == ("a", 1)

    def test_recover_into_replays_ops(self):
        schema = TableSchema(
            "t", [Column("k", ColumnType.TEXT), Column("v", ColumnType.INTEGER)]
        )
        store = TableStore(schema)
        commits = [
            WalCommit(1, 1, (WalChange("insert", "t", 1, ("a", 1), None),)),
            WalCommit(2, 2, (WalChange("update", "t", 1, ("a", 2), ("a", 1)),)),
            WalCommit(3, 3, (WalChange("insert", "t", 2, ("b", 9), None),)),
            WalCommit(4, 4, (WalChange("delete", "t", 2, None, ("b", 9)),)),
        ]
        last = recover_into({"t": store}, commits)
        assert last == 4
        assert list(store.scan(None)) == [(1, ("a", 2))]

    def test_recover_unknown_table(self):
        with pytest.raises(WalError):
            recover_into(
                {}, [WalCommit(1, 1, (WalChange("insert", "x", 1, ("a",), None),))]
            )


class TestCrashRecovery:
    def test_database_recover_from_wal_file(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        db = Database(wal_path=path)
        db.execute("CREATE TABLE t (k TEXT, v INTEGER)")
        db.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
        db.execute("UPDATE t SET v = 10 WHERE k = 'a'")
        db.execute("DELETE FROM t WHERE k = 'b'")
        schemas = [db.catalog.get("t")]
        db.wal.close()

        recovered = Database.recover(schemas, path)
        # CSNs continue after recovery (checked before any new statements,
        # since read-only autocommits also consume CSNs).
        assert recovered.last_csn == db.last_csn
        rows = recovered.execute("SELECT k, v FROM t").rows
        assert rows == [("a", 10)]
        recovered.execute("INSERT INTO t VALUES ('c', 3)")
        assert recovered.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_aborted_txns_never_reach_wal(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        db = Database(wal_path=path)
        db.execute("CREATE TABLE t (k TEXT)")
        txn = db.begin()
        db.execute("INSERT INTO t VALUES ('x')", txn=txn)
        txn.abort()
        db.execute("INSERT INTO t VALUES ('y')")
        db.wal.close()
        recovered = Database.recover([db.catalog.get("t")], path)
        assert recovered.execute("SELECT k FROM t").column("k") == ["y"]


class TestCdc:
    def test_records_carry_before_and_after_images(self):
        db = Database()
        db.execute("CREATE TABLE t (k TEXT, v INTEGER)")
        db.execute("INSERT INTO t VALUES ('a', 1)")
        db.execute("UPDATE t SET v = 2 WHERE k = 'a'")
        db.execute("DELETE FROM t WHERE k = 'a'")
        ops = [(r.op, r.values, r.old_values) for r in db.cdc.history()]
        assert ops == [
            ("insert", ("a", 1), None),
            ("update", ("a", 2), ("a", 1)),
            ("delete", None, ("a", 2)),
        ]

    def test_emission_in_commit_order(self):
        from repro.db import IsolationLevel

        db = Database()
        db.execute("CREATE TABLE t (k TEXT)")
        # SNAPSHOT so the two writers do not block each other under 2PL.
        t1 = db.begin(IsolationLevel.SNAPSHOT)
        t2 = db.begin(IsolationLevel.SNAPSHOT)
        db.execute("INSERT INTO t VALUES ('late')", txn=t1)
        db.execute("INSERT INTO t VALUES ('early')", txn=t2)
        t2.commit()
        t1.commit()
        values = [r.values[0] for r in db.cdc.history()]
        assert values == ["early", "late"]
        csns = [r.csn for r in db.cdc.history()]
        assert csns == sorted(csns)

    def test_subscribers_and_unsubscribe(self):
        stream = CdcStream()
        seen = []
        unsubscribe = stream.subscribe(seen.append)
        stream.emit(1, 1, "t", "insert", 1, ("a",), None)
        unsubscribe()
        stream.emit(2, 2, "t", "insert", 2, ("b",), None)
        assert len(seen) == 1

    def test_retention_limit(self):
        stream = CdcStream(retain=2)
        for i in range(5):
            stream.emit(i + 1, i + 1, "t", "insert", i + 1, (str(i),), None)
        assert len(stream) == 2
        assert stream.dropped == 3
        assert [r.seq for r in stream.since(0)] == [4, 5]

    def test_since_filters_by_seq(self):
        stream = CdcStream()
        for i in range(3):
            stream.emit(i + 1, i + 1, "t", "insert", i + 1, (str(i),), None)
        assert [r.seq for r in stream.since(1)] == [2, 3]

    def test_aborted_txn_emits_nothing(self):
        db = Database()
        db.execute("CREATE TABLE t (k TEXT)")
        txn = db.begin()
        db.execute("INSERT INTO t VALUES ('x')", txn=txn)
        txn.abort()
        assert len(db.cdc) == 0
