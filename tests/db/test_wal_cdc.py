"""WAL (durability/recovery) and CDC (change capture) tests."""

import pytest

from repro.db import Database
from repro.db.cdc import CdcStream
from repro.db.schema import Column, TableSchema
from repro.db.storage import TableStore
from repro.db.types import ColumnType
from repro.db.txn.wal import WalChange, WalCommit, WriteAheadLog, recover_into
from repro.errors import WalError


class TestWal:
    def test_commit_order_enforced(self):
        wal = WriteAheadLog()
        wal.append(WalCommit(csn=1, txn_id=1, changes=()))
        with pytest.raises(WalError):
            wal.append(WalCommit(csn=1, txn_id=2, changes=()))

    def test_commits_since(self):
        wal = WriteAheadLog()
        for csn in (1, 2, 3):
            wal.append(WalCommit(csn=csn, txn_id=csn, changes=()))
        assert [c.csn for c in wal.commits(since_csn=1)] == [2, 3]
        assert wal.last_csn() == 3

    def test_json_roundtrip(self):
        change = WalChange(
            op="update", table="t", row_id=3, values=("a", 1), old_values=("a", 0)
        )
        commit = WalCommit(csn=5, txn_id=7, changes=(change,))
        restored = WalCommit.from_json(commit.to_json())
        assert restored == commit

    def test_file_persistence_and_load(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path)
        wal.append(
            WalCommit(
                csn=1,
                txn_id=1,
                changes=(
                    WalChange("insert", "t", 1, ("a", 1), None),
                ),
            )
        )
        wal.close()
        loaded = WriteAheadLog.load(path)
        assert len(loaded) == 1
        assert loaded.commits().__next__().changes[0].values == ("a", 1)

    def test_recover_into_replays_ops(self):
        schema = TableSchema(
            "t", [Column("k", ColumnType.TEXT), Column("v", ColumnType.INTEGER)]
        )
        store = TableStore(schema)
        commits = [
            WalCommit(1, 1, (WalChange("insert", "t", 1, ("a", 1), None),)),
            WalCommit(2, 2, (WalChange("update", "t", 1, ("a", 2), ("a", 1)),)),
            WalCommit(3, 3, (WalChange("insert", "t", 2, ("b", 9), None),)),
            WalCommit(4, 4, (WalChange("delete", "t", 2, None, ("b", 9)),)),
        ]
        last = recover_into({"t": store}, commits)
        assert last == 4
        assert list(store.scan(None)) == [(1, ("a", 2))]

    def test_recover_unknown_table(self):
        with pytest.raises(WalError):
            recover_into(
                {}, [WalCommit(1, 1, (WalChange("insert", "x", 1, ("a",), None),))]
            )


class TestTornTail:
    """A crash mid-append leaves a truncated final record; ``load`` must
    treat it as a clean recovery point, not corruption."""

    def _write_commits(self, path: str, n: int) -> None:
        wal = WriteAheadLog(path)
        for csn in range(1, n + 1):
            wal.append(
                WalCommit(
                    csn=csn,
                    txn_id=csn,
                    changes=(WalChange("insert", "t", csn, (csn,), None),),
                )
            )
        wal.close()

    def test_truncated_final_record_is_dropped(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        self._write_commits(path, 3)
        with open(path, "ab") as fh:
            fh.write(b'{"csn": 4, "txn_id": 4, "chan')  # torn mid-write
        loaded = WriteAheadLog.load(path)
        assert [c.csn for c in loaded.commits()] == [1, 2, 3]
        assert loaded.torn_tail_dropped
        # A clean file does not claim a drop.
        clean = str(tmp_path / "clean.jsonl")
        self._write_commits(clean, 2)
        assert not WriteAheadLog.load(clean).torn_tail_dropped

    def test_torn_json_but_complete_line_also_dropped(self, tmp_path):
        """Truncation can land exactly on a newline boundary from a prior
        buffered write — the partial record still parses as broken JSON."""
        path = str(tmp_path / "wal.jsonl")
        self._write_commits(path, 2)
        with open(path, "ab") as fh:
            fh.write(b'{"csn": 3}\n')  # missing required fields
        loaded = WriteAheadLog.load(path)
        assert [c.csn for c in loaded.commits()] == [1, 2]
        assert loaded.torn_tail_dropped

    def test_mid_file_corruption_still_raises(self, tmp_path):
        """A bad record *followed by valid records* cannot be a torn tail
        — dropping it would silently lose acknowledged commits."""
        path = str(tmp_path / "wal.jsonl")
        self._write_commits(path, 3)
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = b'{"broken\n'
        with open(path, "wb") as fh:
            fh.writelines(lines)
        with pytest.raises(WalError, match="followed by valid records"):
            WriteAheadLog.load(path)

    def test_attach_truncates_tail_and_keeps_appending(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        self._write_commits(path, 2)
        with open(path, "ab") as fh:
            fh.write(b'{"torn')
        wal = WriteAheadLog.load(path, attach=True)
        assert wal.torn_tail_dropped
        wal.append(
            WalCommit(
                csn=3,
                txn_id=3,
                changes=(WalChange("insert", "t", 3, (3,), None),),
            )
        )
        wal.close()
        # The dead bytes are physically gone; the file replays cleanly.
        reread = WriteAheadLog.load(path)
        assert [c.csn for c in reread.commits()] == [1, 2, 3]
        assert not reread.torn_tail_dropped


class TestCrashRecovery:
    def test_database_recover_from_wal_file(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        db = Database(wal_path=path)
        db.execute("CREATE TABLE t (k TEXT, v INTEGER)")
        db.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
        db.execute("UPDATE t SET v = 10 WHERE k = 'a'")
        db.execute("DELETE FROM t WHERE k = 'b'")
        schemas = [db.catalog.get("t")]
        db.wal.close()

        recovered = Database.recover(schemas, path)
        # CSNs continue after recovery (checked before any new statements,
        # since read-only autocommits also consume CSNs).
        assert recovered.last_csn == db.last_csn
        rows = recovered.execute("SELECT k, v FROM t").rows
        assert rows == [("a", 10)]
        recovered.execute("INSERT INTO t VALUES ('c', 3)")
        assert recovered.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_aborted_txns_never_reach_wal(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        db = Database(wal_path=path)
        db.execute("CREATE TABLE t (k TEXT)")
        txn = db.begin()
        db.execute("INSERT INTO t VALUES ('x')", txn=txn)
        txn.abort()
        db.execute("INSERT INTO t VALUES ('y')")
        db.wal.close()
        recovered = Database.recover([db.catalog.get("t")], path)
        assert recovered.execute("SELECT k FROM t").column("k") == ["y"]


class TestCdc:
    def test_records_carry_before_and_after_images(self):
        db = Database()
        db.execute("CREATE TABLE t (k TEXT, v INTEGER)")
        db.execute("INSERT INTO t VALUES ('a', 1)")
        db.execute("UPDATE t SET v = 2 WHERE k = 'a'")
        db.execute("DELETE FROM t WHERE k = 'a'")
        ops = [(r.op, r.values, r.old_values) for r in db.cdc.history()]
        assert ops == [
            ("insert", ("a", 1), None),
            ("update", ("a", 2), ("a", 1)),
            ("delete", None, ("a", 2)),
        ]

    def test_emission_in_commit_order(self):
        from repro.db import IsolationLevel

        db = Database()
        db.execute("CREATE TABLE t (k TEXT)")
        # SNAPSHOT so the two writers do not block each other under 2PL.
        t1 = db.begin(IsolationLevel.SNAPSHOT)
        t2 = db.begin(IsolationLevel.SNAPSHOT)
        db.execute("INSERT INTO t VALUES ('late')", txn=t1)
        db.execute("INSERT INTO t VALUES ('early')", txn=t2)
        t2.commit()
        t1.commit()
        values = [r.values[0] for r in db.cdc.history()]
        assert values == ["early", "late"]
        csns = [r.csn for r in db.cdc.history()]
        assert csns == sorted(csns)

    def test_subscribers_and_unsubscribe(self):
        stream = CdcStream()
        seen = []
        unsubscribe = stream.subscribe(seen.append)
        stream.emit(1, 1, "t", "insert", 1, ("a",), None)
        unsubscribe()
        stream.emit(2, 2, "t", "insert", 2, ("b",), None)
        assert len(seen) == 1

    def test_retention_limit(self):
        stream = CdcStream(retain=2)
        for i in range(5):
            stream.emit(i + 1, i + 1, "t", "insert", i + 1, (str(i),), None)
        assert len(stream) == 2
        assert stream.dropped == 3
        assert [r.seq for r in stream.since(0)] == [4, 5]

    def test_since_filters_by_seq(self):
        stream = CdcStream()
        for i in range(3):
            stream.emit(i + 1, i + 1, "t", "insert", i + 1, (str(i),), None)
        assert [r.seq for r in stream.since(1)] == [2, 3]

    def test_aborted_txn_emits_nothing(self):
        db = Database()
        db.execute("CREATE TABLE t (k TEXT)")
        txn = db.begin()
        db.execute("INSERT INTO t VALUES ('x')", txn=txn)
        txn.abort()
        assert len(db.cdc) == 0


class TestGroupCommit:
    def _commit(self, csn: int) -> WalCommit:
        return WalCommit(
            csn=csn,
            txn_id=csn,
            changes=(WalChange("insert", "t", csn, (csn,), None),),
        )

    def test_batches_flush_once_per_group(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path, group_size=4)
        for csn in (1, 2, 3):
            wal.append(self._commit(csn))
        # Nothing durable yet: the group is still open.
        assert wal.pending_count == 3
        assert wal.flush_stats == {"appends": 3, "flushes": 0}
        assert len(WriteAheadLog.load(path)) == 0
        wal.append(self._commit(4))  # fills the group: one drain
        assert wal.pending_count == 0
        assert wal.flush_stats == {"appends": 4, "flushes": 1}
        assert [c.csn for c in WriteAheadLog.load(path).commits()] == [1, 2, 3, 4]
        wal.close()

    def test_close_drains_partial_group(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path, group_size=64)
        for csn in (1, 2):
            wal.append(self._commit(csn))
        wal.close()
        assert [c.csn for c in WriteAheadLog.load(path).commits()] == [1, 2]

    def test_explicit_flush_narrows_the_window(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path, group_size=64)
        wal.append(self._commit(1))
        wal.flush()
        assert len(WriteAheadLog.load(path)) == 1
        assert wal.flush_stats["flushes"] == 1
        wal.flush()  # empty flush is a no-op, not a counted fsync
        assert wal.flush_stats["flushes"] == 1
        wal.close()

    def test_default_group_size_flushes_per_append(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path)
        for csn in (1, 2, 3):
            wal.append(self._commit(csn))
        assert wal.flush_stats == {"appends": 3, "flushes": 3}
        assert len(WriteAheadLog.load(path)) == 3
        wal.close()

    def test_database_passes_group_size_through(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        db = Database(wal_path=path, wal_group_size=8)
        db.execute("CREATE TABLE t (k INTEGER)")
        for i in range(5):
            db.execute("INSERT INTO t VALUES (?)", (i,))
        assert db.wal.pending_count == 5  # buffered: group still open
        db.wal.close()
        assert len(WriteAheadLog.load(path)) == 5

    def test_in_memory_order_check_unaffected(self):
        wal = WriteAheadLog(group_size=4)
        wal.append(WalCommit(csn=1, txn_id=1, changes=()))
        with pytest.raises(WalError):
            wal.append(WalCommit(csn=1, txn_id=2, changes=()))

    def test_group_size_must_be_positive(self):
        with pytest.raises(WalError):
            WriteAheadLog(group_size=0)


class TestCdcRetentionEdges:
    """Catch-up after truncation, late-subscriber fan-out, and the
    interaction between CDC retention and the replication tap."""

    def _fill(self, stream: CdcStream, n: int) -> None:
        for i in range(n):
            stream.emit(i + 1, i + 1, "t", "insert", i + 1, (str(i),), None)

    def test_since_after_truncation_detectable(self):
        stream = CdcStream(retain=3)
        self._fill(stream, 10)
        # A consumer that checkpointed at seq 5 silently misses 6..7 if
        # it trusts since() alone; first_seq exposes the gap.
        assert stream.first_seq == 8
        assert stream.first_seq > 5 + 1  # the gap check a consumer runs
        assert [r.seq for r in stream.since(5)] == [8, 9, 10]
        # A consumer checkpointed at the retention boundary is whole.
        assert stream.first_seq <= 7 + 1
        assert [r.seq for r in stream.since(7)] == [8, 9, 10]

    def test_first_seq_on_empty_and_fully_evicted_streams(self):
        stream = CdcStream(retain=2)
        assert stream.first_seq == 1  # empty: next seq keeps checks sound
        self._fill(stream, 2)
        assert stream.first_seq == 1
        # Evict everything: first_seq moves past the dropped tail.
        self._fill(stream, 3)
        assert stream.first_seq == 4

    def test_late_subscriber_catch_up_then_live_ordering(self):
        stream = CdcStream()
        self._fill(stream, 3)
        seen: list[int] = []
        # The catch-up-then-subscribe idiom: drain history, then attach.
        for record in stream.since(0):
            seen.append(record.seq)
        stream.subscribe(lambda r: seen.append(r.seq))
        self._fill(stream, 2)
        assert seen == [1, 2, 3, 4, 5]

    def test_replication_tap_survives_cdc_truncation(self):
        """The ReplicationLog taps commits, not CdcStream history — a
        tight CDC retention must not lose shipped changes."""
        from repro.db.replication import ReplicaSet

        db = Database(cdc_retain=2)
        db.execute("CREATE TABLE t (k INTEGER)")
        rs = ReplicaSet(db, n_replicas=1, mode="async")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?)", (i,))
        assert db.cdc.dropped > 0  # CDC history really was truncated
        rs.catch_up()
        replica = rs.replicas[0].database
        assert replica.execute("SELECT COUNT(*) FROM t").scalar() == 10
        assert rs.stats["resyncs"] == 0  # no resync was needed

    def test_replication_log_retention_mirrors_cdc_semantics(self):
        from repro.db.replication import ReplicationLog

        db = Database(cdc_retain=2)
        db.execute("CREATE TABLE t (k INTEGER)")
        log = ReplicationLog(db, retain=2)
        for i in range(5):
            db.execute("INSERT INTO t VALUES (?)", (i,))
        # Same accounting surface as CdcStream: first_seq/dropped expose
        # the truncation to catch-up consumers on both streams.
        assert log.first_seq == 4 and log.dropped == 3
        assert db.cdc.first_seq == 4 and db.cdc.dropped == 3
