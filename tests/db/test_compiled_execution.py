"""Compiled vectorized execution: differential, parity, and stats tests.

The batch pipeline with compiled programs must be a pure performance
transformation: every query returns exactly the rows the interpreted
row-at-a-time path returns, read provenance stays byte-identical when
tracking is on (the engine falls back to the per-row path), and the
``executor_stats`` counters describe what the pipeline actually did.
"""

import dataclasses

import pytest

from repro.db import Database, IsolationLevel, ShardedDatabase


def build_db(compiled: bool = True, pushdown: bool = True) -> Database:
    db = Database()
    db.compiled_execution = compiled
    db.predicate_pushdown_enabled = pushdown
    _populate(db)
    return db


def build_sharded(compiled: bool = True) -> ShardedDatabase:
    sdb = ShardedDatabase(3, shard_keys={"items": "id"})
    sdb.compiled_execution = compiled
    _populate(sdb)
    return sdb


def _populate(db) -> None:
    db.execute("CREATE TABLE items (id INTEGER, grp TEXT, val FLOAT)")
    db.execute("CREATE TABLE grps (grp TEXT, label TEXT)")
    for i in range(40):
        db.execute(
            "INSERT INTO grps VALUES (?, ?)",
            (f"g{i}", f"label{i}"),
        )
    for i in range(300):
        db.execute(
            "INSERT INTO items VALUES (?, ?, ?)",
            (i, f"g{i % 7}", float(i % 13)),
        )
    # One NULL-bearing row per table: joins and filters must treat NULL
    # keys identically on both paths.
    db.execute("INSERT INTO items VALUES (9000, NULL, NULL)")
    db.execute("INSERT INTO grps VALUES (NULL, 'null-label')")


#: Query shapes spanning every batch operator: scans with filters at
#: each selectivity, projections with expressions, inner/left joins with
#: and without residuals, aggregates (global, grouped, DISTINCT,
#: HAVING), DISTINCT, ORDER BY, LIMIT/OFFSET, and subquery-free unions
#: of those features.
QUERIES = [
    "SELECT * FROM items",
    "SELECT id, val FROM items WHERE val > 6.0",
    "SELECT id FROM items WHERE val > 100.0",
    "SELECT id + 1, val * 2.0 FROM items WHERE id < 20",
    "SELECT id FROM items WHERE grp = 'g3' AND val >= 5.0",
    "SELECT id FROM items WHERE grp = 'g1' OR val < 2.0",
    "SELECT COUNT(*) FROM items",
    "SELECT COUNT(*), COUNT(*) FROM items",
    "SELECT COUNT(val), SUM(val), AVG(val), MIN(val), MAX(id) FROM items",
    "SELECT grp, COUNT(*) FROM items GROUP BY grp",
    "SELECT grp, SUM(val) FROM items GROUP BY grp HAVING SUM(val) > 200",
    "SELECT COUNT(DISTINCT grp) FROM items",
    "SELECT DISTINCT grp FROM items",
    "SELECT i.id, g.label FROM items i JOIN grps g ON i.grp = g.grp",
    "SELECT COUNT(*) FROM items i JOIN grps g ON i.grp = g.grp",
    (
        "SELECT COUNT(*) FROM items i JOIN grps g "
        "ON i.grp = g.grp AND i.val > 4.0"
    ),
    (
        "SELECT i.id, g.label FROM items i "
        "LEFT JOIN grps g ON i.grp = g.grp WHERE i.id < 15"
    ),
    (
        "SELECT g.label, COUNT(*) FROM items i "
        "JOIN grps g ON i.grp = g.grp WHERE i.val > 3.0 GROUP BY g.label"
    ),
    "SELECT id FROM items ORDER BY val, id LIMIT 7",
    "SELECT id FROM items ORDER BY id LIMIT 5 OFFSET 3",
    "SELECT val FROM items WHERE id BETWEEN 10 AND 30 ORDER BY id",
    "SELECT id FROM items WHERE grp LIKE 'g_'",
    "SELECT id FROM items WHERE grp IN ('g1', 'g2') ORDER BY id",
    "SELECT CASE WHEN val > 6 THEN 'hi' ELSE 'lo' END FROM items",
    "SELECT id FROM items WHERE grp IS NULL",
]


def _canon(rows):
    return sorted(rows, key=repr)


class TestDifferential:
    """Compiled batch pipeline vs interpreted row pipeline."""

    def test_single_node_all_query_shapes(self):
        compiled = build_db(compiled=True)
        interpreted = build_db(compiled=False)
        for sql in QUERIES:
            got = compiled.query(sql).rows
            want = interpreted.query(sql).rows
            assert got == want, sql
            # Value types must match too (1 vs 1.0 vs True).
            for g, w in zip(got, want):
                assert tuple(map(type, g)) == tuple(map(type, w)), sql

    def test_sharded_all_query_shapes(self):
        compiled = build_sharded(compiled=True)
        interpreted = build_sharded(compiled=False)
        for sql in QUERIES:
            got = compiled.execute(sql).rows
            want = interpreted.execute(sql).rows
            # Shard gather order is deterministic, but ordered queries
            # must match exactly; unordered compare as multisets.
            if "ORDER BY" in sql:
                assert got == want, sql
            else:
                assert _canon(got) == _canon(want), sql

    def test_pushdown_knob_is_result_invariant(self):
        pushed = build_db(pushdown=True)
        unpushed = build_db(pushdown=False)
        for sql in QUERIES:
            assert pushed.query(sql).rows == unpushed.query(sql).rows, sql

    def test_toggling_compilation_invalidates_cached_plans(self):
        db = build_db(compiled=True)
        sql = "SELECT COUNT(*) FROM items WHERE val > 6.0"
        first = db.query(sql).rows
        db.compiled_execution = False
        assert db.query(sql).rows == first
        db.compiled_execution = True
        assert db.query(sql).rows == first


class _TraceCollector:
    def __init__(self):
        self.traces = []

    def statement_executed(self, txn, trace):
        self.traces.append(trace)


def _read_tuples(traces):
    return [
        (r.table, r.row_id, r.values, r.query)
        for t in traces
        for r in t.reads
    ]


class TestTrodParity:
    """Provenance must be byte-identical with compilation enabled."""

    def test_track_reads_identical_single_node(self):
        baseline = build_db(compiled=False)
        subject = build_db(compiled=True)
        for db in (baseline, subject):
            db.track_reads = True
        probe = [
            "SELECT id FROM items WHERE val > 6.0",
            "SELECT grp, COUNT(*) FROM items GROUP BY grp",
            "SELECT COUNT(*) FROM items i JOIN grps g ON i.grp = g.grp",
            "SELECT id FROM items WHERE id > 100000",
        ]
        for sql in probe:
            collectors = []
            for db in (baseline, subject):
                collector = _TraceCollector()
                db.add_observer(collector)
                rows = db.query(sql).rows
                db.remove_observer(collector)
                collectors.append((rows, collector))
            (want_rows, want), (got_rows, got) = collectors
            assert got_rows == want_rows, sql
            assert _read_tuples(got.traces) == _read_tuples(want.traces), sql

    def test_track_reads_identical_sharded(self):
        baseline = build_sharded(compiled=False)
        subject = build_sharded(compiled=True)
        for sdb in (baseline, subject):
            sdb.track_reads = True
        sql = "SELECT grp, COUNT(*) FROM items GROUP BY grp"
        reads = []
        for sdb in (baseline, subject):
            collected = []
            collectors = []
            for shard in sdb.shards:
                collector = _TraceCollector()
                shard.add_observer(collector)
                collectors.append((shard, collector))
            rows = sdb.execute(sql).rows
            for shard, collector in collectors:
                shard.remove_observer(collector)
                collected.extend(_read_tuples(collector.traces))
            reads.append((_canon(rows), collected))
        assert reads[0] == reads[1]

    def test_observer_presence_forces_row_path(self):
        db = build_db(compiled=True)
        collector = _TraceCollector()
        db.add_observer(collector)
        before = db.executor_stats["batches_processed"]
        rows_observed = db.query("SELECT id FROM items WHERE val > 6.0").rows
        assert db.executor_stats["batches_processed"] == before
        db.remove_observer(collector)
        assert (
            db.query("SELECT id FROM items WHERE val > 6.0").rows
            == rows_observed
        )


class TestExecutorStats:
    def test_plans_compiled_counts_cache_misses_only(self):
        db = build_db(compiled=True)
        start = db.executor_stats["plans_compiled"]
        db.query("SELECT id FROM items WHERE val > 6.0")
        after_first = db.executor_stats["plans_compiled"]
        assert after_first == start + 1
        db.query("SELECT id FROM items WHERE val > 6.0")
        assert db.executor_stats["plans_compiled"] == after_first

    def test_rows_filtered_at_scan_vs_post_join(self):
        db = build_db(compiled=True)
        db.query("SELECT id FROM items WHERE val > 100.0")
        stats = db.executor_stats
        # All 301 item rows are filtered out inside the scan.
        assert stats["rows_filtered_at_scan"] >= 301
        assert stats["batches_processed"] >= 1

    def test_disabled_compilation_leaves_batch_counters_still(self):
        db = build_db(compiled=False)
        db.query("SELECT id FROM items WHERE val > 6.0")
        stats = db.executor_stats
        assert stats["plans_compiled"] == 0
        assert stats["batches_processed"] == 0

    def test_sharded_stats_aggregate_across_shards(self):
        sdb = build_sharded(compiled=True)
        sdb.execute("SELECT id FROM items WHERE val > 100.0")
        stats = sdb.executor_stats
        assert stats["plans_compiled"] >= 1
        assert stats["rows_filtered_at_scan"] >= 301


class TestTransactionalVisibility:
    """Batch scans must honor snapshots and private writes."""

    def test_own_uncommitted_writes_visible(self):
        db = build_db(compiled=True)
        txn = db.begin()
        db.execute(
            "INSERT INTO items VALUES (7777, 'g0', 1.5)", txn=txn
        )
        rows = db.execute(
            "SELECT id FROM items WHERE id = 7777", txn=txn
        ).rows
        assert rows == [(7777,)]
        txn.abort()
        assert db.query("SELECT id FROM items WHERE id = 7777").rows == []

    def test_snapshot_ignores_later_commits(self):
        db = build_db(compiled=True)
        txn = db.begin(IsolationLevel.SNAPSHOT)
        before = db.execute("SELECT COUNT(*) FROM items", txn=txn).rows
        db.execute("INSERT INTO items VALUES (8888, 'g1', 2.0)")
        again = db.execute("SELECT COUNT(*) FROM items", txn=txn).rows
        txn.abort()
        assert again == before
        assert db.query("SELECT COUNT(*) FROM items").rows[0][0] == (
            before[0][0] + 1
        )

    def test_writes_invalidate_materialized_values(self):
        db = build_db(compiled=True)
        sql = "SELECT COUNT(*) FROM items WHERE val > 6.0"
        first = db.query(sql).rows[0][0]
        db.execute("INSERT INTO items VALUES (9999, 'g2', 7.5)")
        assert db.query(sql).rows[0][0] == first + 1
        db.execute("DELETE FROM items WHERE id = 9999")
        assert db.query(sql).rows[0][0] == first
