"""Replication correctness: log shipping, sessions, failover, routing.

The heart of this file is the differential acceptance test: a primary and
its replicas must be *indistinguishable* — every SELECT (point, scan,
aggregate, AS-OF) against a caught-up replica returns byte-identical
results, across hundreds of randomized write/ship interleavings. On top
of that: ship-record/applier mechanics (CSN and row-id preservation, gap
detection), sync vs async ship modes and lag tracking, session
guarantees (read-your-writes under lag), promotion/fencing, and the
replica-aware read path of the sharded facade.
"""

import random

import pytest

from repro.db import Database, IsolationLevel, ShardedDatabase
from repro.db.replication import (
    Applier,
    ReadRouter,
    ReplicaSet,
    ReplicationLog,
    Session,
    ShardedReadRouter,
)
from repro.errors import (
    FencedError,
    ReadOnlyError,
    ReplicationError,
    TimeTravelError,
)


def build_primary(rows: int = 0) -> Database:
    db = Database(name="primary")
    db.execute("CREATE TABLE t (k INTEGER, grp TEXT, v FLOAT)")
    if rows:
        txn = db.begin()
        for i in range(rows):
            db.execute(
                "INSERT INTO t VALUES (?, ?, ?)",
                (i, f"g{i % 5}", float(i)),
                txn=txn,
            )
        txn.commit()
    return db


class TestReplicationLog:
    def test_every_commit_recorded_including_empty(self):
        db = build_primary()
        log = ReplicationLog(db)
        db.execute("INSERT INTO t VALUES (1, 'g0', 0.0)")
        db.begin().commit()  # read-only commit: consumes a CSN, must ship
        records = log.since(0)
        assert [r.kind for r in records] == ["commit", "commit"]
        assert [r.csn for r in records] == [db.last_csn - 1, db.last_csn]
        assert records[0].changes and not records[1].changes

    def test_ddl_recorded_in_stream_order(self):
        db = Database()
        log = ReplicationLog(db)
        db.execute("CREATE TABLE a (x INTEGER)")
        db.execute("INSERT INTO a VALUES (1)")
        db.execute("CREATE INDEX ix_a ON a (x)")
        db.execute("DROP INDEX ix_a ON a")
        db.execute("DROP TABLE a")
        kinds = [(r.kind, r.ddl[0] if r.ddl else None) for r in log.since(0)]
        assert kinds == [
            ("ddl", "create_table"),
            ("commit", None),
            ("ddl", "create_index"),
            ("ddl", "drop_index"),
            ("ddl", "drop_table"),
        ]

    def test_retention_evicts_and_reports(self):
        db = build_primary()
        log = ReplicationLog(db, retain=3)
        for i in range(6):
            db.execute("INSERT INTO t VALUES (?, 'g0', 0.0)", (i,))
        assert len(log) == 3
        assert log.dropped == 3
        assert log.first_seq == 4
        assert [r.seq for r in log.since(0)] == [4, 5, 6]

    def test_detach_stops_the_tap(self):
        db = build_primary()
        log = ReplicationLog(db)
        db.execute("INSERT INTO t VALUES (1, 'g0', 0.0)")
        log.detach()
        db.execute("INSERT INTO t VALUES (2, 'g0', 0.0)")
        assert len(log) == 1

    def test_subscribers_see_records_in_order(self):
        db = build_primary()
        log = ReplicationLog(db)
        seen = []
        unsubscribe = log.subscribe(lambda r: seen.append(r.seq))
        db.execute("INSERT INTO t VALUES (1, 'g0', 0.0)")
        db.execute("INSERT INTO t VALUES (2, 'g0', 0.0)")
        unsubscribe()
        db.execute("INSERT INTO t VALUES (3, 'g0', 0.0)")
        assert seen == [1, 2]


class TestApplier:
    def test_csn_and_row_id_preservation(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1)
        db.execute("INSERT INTO t VALUES (1, 'g0', 1.0)")
        db.execute("UPDATE t SET v = 2.0 WHERE k = 1")
        db.execute("DELETE FROM t WHERE k = 1")
        db.execute("INSERT INTO t VALUES (2, 'g1', 3.0)")
        rs.catch_up()
        replica = rs.replicas[0].database
        assert replica.last_csn == db.last_csn
        assert list(replica.store("t").scan(None)) == list(db.store("t").scan(None))
        # Version history (not just latest state) matches from the
        # bootstrap point on: AS-OF reads agree at every CSN.
        for csn in range(db.last_csn + 1):
            assert list(replica.store("t").scan(csn)) == list(db.store("t").scan(csn))

    def test_txn_ids_agree_across_fleet(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1)
        result = db.execute("INSERT INTO t VALUES (1, 'g0', 1.0)")
        assert result.rowcount == 1
        rs.catch_up()
        replica = rs.replicas[0].database
        # The same txn id answers csn lookups on both nodes.
        csn = db.last_csn
        txn_id = db.txn_manager.txn_at_csn(csn)
        assert replica.txn_manager.txn_at_csn(csn) == txn_id
        assert replica.txn_manager.csn_of(txn_id) == csn
        assert replica.time_travel.csn_before_txn(txn_id) == csn - 1

    def test_commit_index_survives_skewed_txn_counters(self):
        """Aborted primary txns skew local vs primary txn ids; the
        commit bookkeeping must never lose or clobber a mapping."""
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1)
        aborted = db.begin()  # consumes primary txn id 1, never commits
        db.execute("INSERT INTO t VALUES (0, 'g0', 0.0)", txn=aborted)
        aborted.abort()
        db.execute("INSERT INTO t VALUES (1, 'g0', 1.0)")  # txn 2 -> csn 1
        db.execute("INSERT INTO t VALUES (2, 'g0', 2.0)")  # txn 3 -> csn 2
        rs.catch_up()
        replica = rs.replicas[0].database
        assert replica.txn_manager.commit_index == db.txn_manager.commit_index
        assert replica.txn_manager.csn_index == db.txn_manager.csn_index

    def test_bootstrap_carries_commit_bookkeeping(self):
        db = build_primary()
        db.execute("INSERT INTO t VALUES (1, 'g0', 1.0)")
        rs = ReplicaSet(db, n_replicas=1)  # bootstraps after the commit
        replica = rs.replicas[0].database
        assert replica.txn_manager.commit_index == db.txn_manager.commit_index
        db.execute("INSERT INTO t VALUES (2, 'g0', 2.0)")
        rs.catch_up()
        assert replica.txn_manager.commit_index == db.txn_manager.commit_index

    def test_gap_detection_behind_and_ahead(self):
        db = build_primary()
        log = ReplicationLog(db)
        db.execute("INSERT INTO t VALUES (1, 'g0', 1.0)")
        db.execute("INSERT INTO t VALUES (2, 'g0', 2.0)")
        replica = Database(name="r")
        replica.execute("CREATE TABLE t (k INTEGER, grp TEXT, v FLOAT)")
        applier = Applier(replica)
        records = log.since(0)
        commits = [r for r in records if r.kind == "commit"]
        with pytest.raises(ReplicationError, match="behind"):
            applier.apply(commits[1])  # skipped the first commit
        applier.apply(commits[0])
        applier.apply(commits[1])
        with pytest.raises(ReplicationError, match="ahead"):
            applier.apply(commits[1])  # replayed twice

    def test_replica_cdc_mirrors_primary_ops(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1)
        db.execute("INSERT INTO t VALUES (1, 'g0', 1.0)")
        db.execute("UPDATE t SET v = 9.0 WHERE k = 1")
        rs.catch_up()
        replica = rs.replicas[0].database
        ops = [(r.op, r.csn, r.values) for r in replica.cdc.history()]
        assert ops == [(r.op, r.csn, r.values) for r in db.cdc.history()]

    def test_ddl_applies_on_replicas(self):
        db = Database()
        rs = ReplicaSet(db, n_replicas=1, mode="sync")
        db.execute("CREATE TABLE a (x INTEGER, y TEXT)")
        db.execute("CREATE INDEX ix_ax ON a (x)")
        db.execute("INSERT INTO a VALUES (1, 'one')")
        replica = rs.replicas[0].database
        assert replica.catalog.has_table("a")
        assert "ix_ax" in replica.index_set("a").indexes
        assert replica.execute("SELECT y FROM a WHERE x = 1").scalar() == "one"
        db.execute("DROP TABLE a")
        assert not replica.catalog.has_table("a")


class TestReplicaSet:
    def test_sync_mode_has_zero_lag(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=2, mode="sync")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, 'g0', 0.0)", (i,))
        assert rs.max_lag() == 0
        for replica in rs.replicas:
            assert (
                replica.database.execute("SELECT COUNT(*) FROM t").scalar() == 10
            )

    def test_async_lag_then_catch_up(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=2, mode="async")
        for i in range(5):
            db.execute("INSERT INTO t VALUES (?, 'g0', 0.0)", (i,))
        assert rs.max_lag() == 5
        applied = rs.catch_up()
        assert applied == 10  # 5 records x 2 replicas
        assert rs.max_lag() == 0

    def test_catch_up_limit_bounds_apply(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1, mode="async")
        for i in range(6):
            db.execute("INSERT INTO t VALUES (?, 'g0', 0.0)", (i,))
        rs.catch_up(limit=2)
        assert rs.lag(rs.replicas[0]) == 4
        rs.catch_up()
        assert rs.max_lag() == 0

    def test_least_lagged_and_pick_min_csn(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=2, mode="async")
        for i in range(4):
            db.execute("INSERT INTO t VALUES (?, 'g0', 0.0)", (i,))
        r0, r1 = rs.replicas
        rs.catch_up(r0, limit=3)
        assert rs.least_lagged() is r0
        assert rs.pick("least_lagged") is r0
        # The floor excludes the laggard entirely.
        assert rs.pick("round_robin", min_csn=r0.csn) is r0
        assert rs.pick("round_robin", min_csn=db.last_csn + 1) is None

    def test_bootstrap_mid_stream_snapshot_and_horizon(self):
        db = build_primary(rows=20)
        base = db.last_csn
        rs = ReplicaSet(db)
        replica = rs.add_replica()
        db.execute("UPDATE t SET v = -1.0 WHERE k < 5")
        rs.catch_up()
        database = replica.database
        assert database.execute("SELECT COUNT(*) FROM t WHERE v = -1.0").scalar() == 5
        # History from the bootstrap point on is reachable...
        assert list(database.store("t").scan(base)) == list(db.store("t").scan(base))
        # ...but the pre-bootstrap past is behind the horizon.
        assert database.history_horizon == base
        with pytest.raises(TimeTravelError):
            database.time_travel.rows_as_of("t", base - 1)

    def test_replicas_are_read_only(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1)
        replica = rs.replicas[0].database
        with pytest.raises(ReadOnlyError):
            replica.execute("INSERT INTO t VALUES (1, 'g0', 0.0)")
        with pytest.raises(ReadOnlyError):
            replica.execute("CREATE TABLE u (x INTEGER)")
        with pytest.raises(ReadOnlyError):
            replica.insert_row("t", {"k": 1, "grp": "g0", "v": 0.0})

    def test_replica_reads_do_not_drift_the_csn_clock(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1)
        db.execute("INSERT INTO t VALUES (1, 'g0', 0.0)")
        rs.catch_up()
        replica = rs.replicas[0].database
        before = replica.last_csn
        for _ in range(5):
            replica.execute("SELECT COUNT(*) FROM t")
        assert replica.last_csn == before
        # And the stream still applies cleanly afterwards.
        db.execute("INSERT INTO t VALUES (2, 'g0', 0.0)")
        rs.catch_up()
        assert replica.last_csn == db.last_csn

    def test_retention_truncation_triggers_resync(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1, mode="async", log_retain=3)
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?, 'g0', 0.0)", (i,))
        assert rs.log.dropped > 0
        rs.catch_up()
        assert rs.stats["resyncs"] == 1
        replica = rs.replicas[0]
        assert replica.database.execute("SELECT COUNT(*) FROM t").scalar() == 10
        assert rs.lag(replica) == 0
        # The rebuilt replica follows the stream normally from here.
        db.execute("INSERT INTO t VALUES (99, 'g0', 0.0)")
        rs.catch_up()
        assert rs.stats["resyncs"] == 1
        assert replica.database.execute("SELECT COUNT(*) FROM t").scalar() == 11


class TestSessionGuarantees:
    def test_read_your_writes_falls_back_to_primary_under_lag(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=2, mode="async")
        router = ReadRouter(rs, on_stale="primary")
        session = Session("u1")
        router.execute("INSERT INTO t VALUES (1, 'g0', 7.0)", session=session)
        assert session.last_write_csn == db.last_csn
        # Replicas have not shipped; the session must still see its write.
        result = router.execute("SELECT v FROM t WHERE k = 1", session=session)
        assert result.scalar() == 7.0
        assert router.stats["stale_fallbacks"] == 1
        rs.catch_up()
        result = router.execute("SELECT v FROM t WHERE k = 1", session=session)
        assert result.scalar() == 7.0
        assert router.stats["replica_reads"] == 1

    def test_wait_mode_catches_up_and_serves_from_replica(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1, mode="async")
        router = ReadRouter(rs, on_stale="wait")
        session = Session("u1")
        router.execute("INSERT INTO t VALUES (1, 'g0', 7.0)", session=session)
        result = router.execute("SELECT v FROM t WHERE k = 1", session=session)
        assert result.scalar() == 7.0
        assert router.stats["catch_up_waits"] == 1
        assert router.stats["replica_reads"] == 1
        assert router.stats["stale_fallbacks"] == 0
        assert rs.max_lag() == 0

    def test_sessionless_reads_round_robin_across_replicas(self):
        db = build_primary(rows=4)
        rs = ReplicaSet(db, n_replicas=3, mode="sync")
        router = ReadRouter(rs)
        for _ in range(6):
            assert router.execute("SELECT COUNT(*) FROM t").scalar() == 4
        assert router.stats["replica_reads"] == 6
        assert router.stats["primary_reads"] == 0

    def test_other_sessions_unaffected_by_writers_token(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1, mode="async")
        router = ReadRouter(rs, on_stale="primary")
        writer, reader = Session("w"), Session("r")
        router.execute("INSERT INTO t VALUES (1, 'g0', 7.0)", session=writer)
        # The reader never wrote; a (stale) replica serves it fine.
        router.execute("SELECT COUNT(*) FROM t", session=reader)
        assert router.stats["replica_reads"] == 1
        assert router.stats["stale_fallbacks"] == 0

    def test_rows_as_of_served_by_covering_replica(self):
        db = build_primary(rows=3)
        rs = ReplicaSet(db, n_replicas=1, mode="sync")
        csn = db.last_csn
        db.execute("DELETE FROM t WHERE k = 0")
        router = ReadRouter(rs)
        rows = router.rows_as_of("t", csn)
        assert rows == db.time_travel.rows_as_of("t", csn)
        assert len(rows) == 3
        assert router.stats["replica_reads"] == 1


class TestFailover:
    def test_promote_preserves_acknowledged_commits(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=2, mode="async")
        for i in range(8):
            db.execute("INSERT INTO t VALUES (?, 'g0', ?)", (i, float(i)))
        # Nothing shipped yet: every commit is acknowledged only in the
        # log. Promotion must still carry all of them over.
        assert rs.max_lag() == 8
        expected = db.execute("SELECT k, grp, v FROM t ORDER BY k").rows
        acknowledged_csn = db.last_csn
        promoted = rs.promote()
        assert promoted.last_csn == acknowledged_csn  # drained, exactly
        assert promoted.execute("SELECT k, grp, v FROM t ORDER BY k").rows == expected
        assert rs.stats["promotions"] == 1

    def test_old_primary_is_fenced(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1)
        in_flight = db.begin()
        db.execute("INSERT INTO t VALUES (1, 'g0', 0.0)", txn=in_flight)
        rs.promote()
        with pytest.raises(FencedError):
            db.begin()
        with pytest.raises(FencedError):
            in_flight.commit()  # begun before the fence: still rejected

    def test_promoted_serves_latest_and_as_of(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1)
        db.execute("INSERT INTO t VALUES (1, 'g0', 1.0)")
        csn_before_update = db.last_csn
        db.execute("UPDATE t SET v = 2.0 WHERE k = 1")
        promoted = rs.promote()
        assert promoted.execute("SELECT v FROM t WHERE k = 1").scalar() == 2.0
        as_of = promoted.time_travel.rows_as_of("t", csn_before_update)
        assert [values for _rid, values in as_of] == [(1, "g0", 1.0)]

    def test_remaining_replicas_follow_new_primary(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=3, mode="async")
        db.execute("INSERT INTO t VALUES (1, 'g0', 1.0)")
        promoted = rs.promote()
        assert len(rs.replicas) == 2
        promoted.execute("INSERT INTO t VALUES (2, 'g0', 2.0)")
        rs.catch_up()
        for replica in rs.replicas:
            assert replica.database.execute("SELECT COUNT(*) FROM t").scalar() == 2
            assert replica.csn == promoted.last_csn

    def test_promote_chosen_target_and_writability(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=2)
        target = rs.replicas[1]
        promoted = rs.promote(target.name)
        assert promoted is target.database
        assert not promoted.read_only
        promoted.execute("INSERT INTO t VALUES (1, 'g0', 0.0)")  # writable

    def test_promote_empty_set_raises(self):
        db = build_primary()
        rs = ReplicaSet(db)
        with pytest.raises(ReplicationError):
            rs.promote()
        assert not db.fenced  # refused before fencing anything

    def test_failed_promotion_never_bricks_the_cluster(self):
        """A promotion that cannot proceed must leave the old primary
        unfenced and still serving."""
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=1, mode="async", log_retain=2)
        with pytest.raises(ReplicationError):
            rs.promote("no-such-replica")
        assert not db.fenced
        # Push the lone replica's position out of the retained window:
        # it cannot drain, so it must be refused as a target (pre-fence).
        for i in range(8):
            db.execute("INSERT INTO t VALUES (?, 'g0', 0.0)", (i,))
        assert rs.log.dropped > 0
        with pytest.raises(ReplicationError, match="retained window"):
            rs.promote()
        assert not db.fenced
        db.execute("INSERT INTO t VALUES (99, 'g0', 0.0)")  # still serving

    def test_ddl_through_router_is_immediately_readable(self):
        db = build_primary()
        rs = ReplicaSet(db, n_replicas=2, mode="async")
        router = ReadRouter(rs, on_stale="primary")
        session = Session("ddl-user")
        router.execute("CREATE TABLE u (x INTEGER)", session=session)
        # The very next routed read may land on any replica; the new
        # table must be visible there (DDL records carry no CSN floor).
        for _ in range(4):
            assert (
                router.execute("SELECT COUNT(*) FROM u", session=session)
                .scalar() == 0
            )


QUERIES = [
    "SELECT k, grp, v FROM t WHERE k = ?",
    "SELECT k, v FROM t WHERE v >= ? ORDER BY k",
    "SELECT grp, COUNT(*), SUM(v) FROM t GROUP BY grp ORDER BY grp",
    "SELECT COUNT(*), MIN(v), MAX(v) FROM t",
    "SELECT k, grp, v FROM t ORDER BY v DESC, k LIMIT 7",
]


class TestDifferentialReplicaVsPrimary:
    """Acceptance: >= 900 randomized operations, byte-identical reads."""

    def test_differential_reads_and_failover(self):
        rng = random.Random(42)
        db = Database(name="primary")
        # Replicas attach before DDL: their history covers CSN 0, so
        # AS-OF reads can be compared over the whole timeline.
        rs = ReplicaSet(db, n_replicas=2, mode="async")
        router = ReadRouter(rs, on_stale="primary")
        db.execute("CREATE TABLE t (k INTEGER, grp TEXT, v FLOAT)")
        db.execute("CREATE INDEX ix_t_k ON t (k)")
        live: set[int] = set()
        next_key = 0
        compared = 0

        def random_writes() -> None:
            nonlocal next_key
            n_stmts = rng.randint(1, 4)
            txn = db.begin() if rng.random() < 0.4 else None
            abort = txn is not None and rng.random() < 0.25
            added: list[int] = []
            removed: list[int] = []
            for _ in range(n_stmts):
                kind = rng.random()
                if kind < 0.5 or not live:
                    db.execute(
                        "INSERT INTO t VALUES (?, ?, ?)",
                        (next_key, f"g{next_key % 7}", float(rng.randint(0, 50))),
                        txn=txn,
                    )
                    added.append(next_key)
                    next_key += 1
                elif kind < 0.8:
                    victim = rng.choice(sorted(live))
                    db.execute(
                        "UPDATE t SET v = ? WHERE k = ?",
                        (float(rng.randint(0, 50)), victim),
                        txn=txn,
                    )
                else:
                    victim = rng.choice(sorted(live))
                    db.execute("DELETE FROM t WHERE k = ?", (victim,), txn=txn)
                    removed.append(victim)
            if txn is not None:
                if abort:
                    txn.abort()  # aborted work must never reach a replica
                    return
                txn.commit()
            live.update(added)
            live.difference_update(removed)

        for round_no in range(62):
            random_writes()
            # Read-your-writes probe while replicas lag arbitrarily.
            session = Session(f"s{round_no}")
            probe_key = next_key
            router.execute(
                "INSERT INTO t VALUES (?, 'ryw', 123.5)", (probe_key,),
                session=session,
            )
            next_key += 1
            live.add(probe_key)
            observed = router.execute(
                "SELECT v FROM t WHERE k = ?", (probe_key,), session=session
            ).scalar()
            assert observed == 123.5
            compared += 1
            # Partial, randomized shipping: replicas trail by different,
            # arbitrary amounts between comparison points.
            for replica in rs.replicas:
                if rng.random() < 0.6:
                    rs.catch_up(replica, limit=rng.randint(1, 6))
            rs.catch_up()  # now fully caught up: compare everything
            point_key = rng.choice(sorted(live))
            threshold = float(rng.randint(0, 50))
            params_by_query = {
                QUERIES[0]: (point_key,),
                QUERIES[1]: (threshold,),
                QUERIES[2]: (),
                QUERIES[3]: (),
                QUERIES[4]: (),
            }
            for replica in rs.replicas:
                for sql, params in params_by_query.items():
                    expected = db.execute(sql, params)
                    actual = replica.database.execute(sql, params)
                    assert actual.rows == expected.rows, sql
                    assert actual.columns == expected.columns
                    compared += 1
                for _ in range(2):  # AS-OF at random historical points
                    csn = rng.randint(0, db.last_csn)
                    assert list(replica.database.store("t").scan(csn)) == list(
                        db.store("t").scan(csn)
                    )
                    compared += 1

        assert compared >= 900, compared

        # Finale: simulated primary loss with unshipped-but-acknowledged
        # commits, then the promoted replica must serve everything.
        random_writes()
        expected_rows = db.execute("SELECT k, grp, v FROM t ORDER BY k").rows
        as_of_csn = rng.randint(0, db.last_csn)
        expected_as_of = list(db.store("t").scan(as_of_csn))
        promoted = rs.promote()
        assert (
            promoted.execute("SELECT k, grp, v FROM t ORDER BY k").rows
            == expected_rows
        )
        assert list(promoted.store("t").scan(as_of_csn)) == expected_as_of
        with pytest.raises(FencedError):
            db.execute("INSERT INTO t VALUES (-1, 'x', 0.0)")
        # The survivor replica keeps following the promoted primary.
        promoted.execute("INSERT INTO t VALUES (-2, 'after', 1.0)")
        rs.catch_up()
        survivor = rs.replicas[0].database
        assert (
            survivor.execute("SELECT k, grp, v FROM t ORDER BY k").rows
            == promoted.execute("SELECT k, grp, v FROM t ORDER BY k").rows
        )


class TestShardedReplication:
    def build(self, n_replicas=1, mode="async"):
        sharded = ShardedDatabase(3, shard_keys={"items": "id", "grps": "grp"})
        sharded.execute("CREATE TABLE items (id INTEGER, grp TEXT, val FLOAT)")
        sharded.execute("CREATE TABLE grps (grp TEXT, label TEXT)")
        gtxn = sharded.begin()
        for i in range(60):
            sharded.execute(
                "INSERT INTO items VALUES (?, ?, ?)",
                (i, f"g{i % 4}", float(i % 11)),
                txn=gtxn,
            )
        for g in range(4):
            sharded.execute(
                "INSERT INTO grps VALUES (?, ?)", (f"g{g}", f"label-{g}"),
                txn=gtxn,
            )
        gtxn.commit()
        sharded.attach_replicas(n_replicas, mode=mode)
        return sharded

    SHARDED_QUERIES = [
        ("SELECT * FROM items WHERE id = ?", (17,)),
        ("SELECT id, val FROM items WHERE val > ? ORDER BY id", (5.0,)),
        ("SELECT grp, COUNT(*), AVG(val) FROM items GROUP BY grp ORDER BY grp", ()),
        (
            "SELECT i.id, g.label FROM items i JOIN grps g ON i.grp = g.grp "
            "WHERE i.id < ? ORDER BY i.id",
            (10,),
        ),
    ]

    def test_routed_reads_match_primary_reads(self):
        sharded = self.build(n_replicas=2, mode="sync")
        router = ShardedReadRouter(sharded)
        for sql, params in self.SHARDED_QUERIES:
            via_replicas = router.execute(sql, params)
            via_primaries = sharded.execute(sql, params)
            assert via_replicas.rows == via_primaries.rows, sql
            assert via_replicas.columns == via_primaries.columns
        assert router.stats["replica_reads"] > 0
        assert router.stats["stale_fallbacks"] == 0

    def test_dml_stays_on_primaries_and_ships(self):
        sharded = self.build(n_replicas=1, mode="async")
        router = ShardedReadRouter(sharded, on_stale="primary")
        session = Session("u")
        router.execute(
            "UPDATE items SET val = 99.0 WHERE id = ?", (3,), session=session
        )
        assert session.last_global_csn == sharded.last_global_csn
        # Replicas lag; the session still reads its write (fallback).
        observed = router.execute(
            "SELECT val FROM items WHERE id = ?", (3,), session=session
        )
        assert observed.scalar() == 99.0
        assert router.stats["stale_fallbacks"] >= 1
        sharded.catch_up_replicas()
        observed = router.execute(
            "SELECT val FROM items WHERE id = ?", (3,), session=session
        )
        assert observed.scalar() == 99.0
        assert router.stats["replica_reads"] >= 1

    def test_wait_mode_sharded(self):
        sharded = self.build(n_replicas=1, mode="async")
        router = ShardedReadRouter(sharded, on_stale="wait")
        session = Session("u")
        router.execute(
            "UPDATE items SET val = -1.0 WHERE id = ?", (5,), session=session
        )
        observed = router.execute(
            "SELECT val FROM items WHERE id = ?", (5,), session=session
        )
        assert observed.scalar() == -1.0
        assert router.stats["catch_up_waits"] >= 1
        assert router.stats["stale_fallbacks"] == 0

    def test_execute_as_of_via_replicas(self):
        sharded = self.build(n_replicas=1, mode="sync")
        before = sharded.last_global_csn
        expected = sharded.execute_as_of(
            "SELECT id, val FROM items ORDER BY id", before
        ).rows
        gtxn = sharded.begin()
        sharded.execute("UPDATE items SET val = 0.0 WHERE val > 0", txn=gtxn)
        gtxn.commit()
        router = ShardedReadRouter(sharded)
        via_replicas = router.execute_as_of(
            "SELECT id, val FROM items ORDER BY id", before
        )
        assert via_replicas.rows == expected
        assert router.stats["replica_reads"] == 3  # every shard covered

    def test_sharded_time_travel_prefer_replicas(self):
        sharded = self.build(n_replicas=1, mode="sync")
        csn = sharded.last_global_csn
        gtxn = sharded.begin()
        sharded.execute("DELETE FROM items WHERE id < 10", txn=gtxn)
        gtxn.commit()
        from_primaries = sharded.time_travel.rows_as_of("items", csn)
        from_replicas = sharded.time_travel.rows_as_of(
            "items", csn, prefer_replicas=True
        )
        key = lambda row: row["id"]
        assert sorted(from_replicas, key=key) == sorted(from_primaries, key=key)
        assert len(from_replicas) == 60

    def test_shard_failover_mid_workload(self):
        sharded = self.build(n_replicas=2, mode="async")
        expected = sharded.execute("SELECT id, val FROM items ORDER BY id").rows
        promoted = sharded.failover("shard1")
        assert sharded.shard_named("shard1") is promoted
        # Reads, writes, and 2PC all keep working through the facade.
        assert (
            sharded.execute("SELECT id, val FROM items ORDER BY id").rows
            == expected
        )
        gtxn = sharded.begin()
        for i in (100, 101, 102):
            sharded.execute(
                "INSERT INTO items VALUES (?, 'gx', 1.0)", (i,), txn=gtxn
            )
        gtxn.commit()
        assert sharded.execute("SELECT COUNT(*) FROM items").scalar() == 63
        # The replica sets keep shipping: after catch-up, routed reads
        # (served by replicas, including the failed-over shard's) agree.
        rs = sharded.replica_sets["shard1"]
        assert rs.primary is promoted
        sharded.catch_up_replicas()
        router = ShardedReadRouter(sharded)
        rows = router.execute("SELECT COUNT(*) FROM items")
        assert rows.scalar() == 63
        assert router.stats["replica_reads"] == 3

    def test_failover_without_replicas_raises(self):
        sharded = ShardedDatabase(2, shard_keys={"items": "id"})
        sharded.execute("CREATE TABLE items (id INTEGER, val FLOAT)")
        with pytest.raises(ReplicationError):
            sharded.failover("shard0")

    def test_ddl_through_sharded_router_is_readable(self):
        sharded = self.build(n_replicas=1, mode="async")
        router = ShardedReadRouter(sharded)
        router.execute("CREATE TABLE extra (id INTEGER, x FLOAT)")
        # Routed reads go to replicas; the shipped DDL must be there.
        assert router.execute("SELECT COUNT(*) FROM extra").scalar() == 0

    def test_router_requires_replicas(self):
        sharded = ShardedDatabase(2, shard_keys={"items": "id"})
        with pytest.raises(ReplicationError):
            ShardedReadRouter(sharded)

    def test_snapshot_reads_on_replicas_match(self):
        sharded = self.build(n_replicas=1, mode="sync")
        router = ShardedReadRouter(sharded)
        # SNAPSHOT-level global reads still come from primaries (they
        # join the 2PC transaction); routed reads are the ephemeral path.
        gtxn = sharded.begin(IsolationLevel.SNAPSHOT)
        via_txn = sharded.execute(
            "SELECT COUNT(*) FROM items", txn=gtxn
        ).scalar()
        gtxn.commit()
        assert router.execute("SELECT COUNT(*) FROM items").scalar() == via_txn
