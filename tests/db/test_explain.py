"""EXPLAIN output: verifying planner decisions are observable."""

import pytest

from repro.db import Database
from repro.errors import ExecutionError


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE t (a TEXT, b INTEGER)")
    database.execute("CREATE TABLE u (a TEXT, c INTEGER)")
    return database


def text_of(db, sql):
    return "\n".join(db.explain(sql))


class TestExplainShapes:
    def test_simple_scan(self, db):
        plan = text_of(db, "SELECT * FROM t")
        assert "Scan(t)" in plan
        assert "Project(a, b)" in plan

    def test_filter_pushdown_to_scan(self, db):
        plan = text_of(db, "SELECT a FROM t WHERE b > 1")
        assert "filter[(t.b > 1)]" in plan or "filter[(b > 1)]" in plan
        assert "Filter[" not in plan  # fully pushed down

    def test_index_probe_chosen(self, db):
        db.execute("CREATE INDEX ix_a ON t (a)")
        plan = text_of(db, "SELECT * FROM t WHERE a = 'x'")
        assert "probe=ix_a[a]" in plan

    def test_no_probe_without_index(self, db):
        plan = text_of(db, "SELECT * FROM t WHERE a = 'x'")
        assert "probe=" not in plan

    def test_equi_join_uses_hash_join(self, db):
        plan = text_of(db, "SELECT * FROM t JOIN u ON t.a = u.a")
        assert "HashJoin(inner, 1 key(s))" in plan

    def test_paper_comma_join_is_hash_join(self, db):
        plan = text_of(
            db, "SELECT E.b FROM t as E, u as F ON E.a = F.a"
        )
        assert "HashJoin(inner" in plan
        assert "Scan(t AS E)" in plan

    def test_non_equi_join_uses_nested_loop(self, db):
        plan = text_of(db, "SELECT * FROM t JOIN u ON t.b < u.c")
        assert "NestedLoopJoin(inner)" in plan

    def test_cross_join_is_nested_loop(self, db):
        plan = text_of(db, "SELECT * FROM t, u")
        assert "NestedLoopJoin(cross)" in plan

    def test_left_join_kind_surfaces(self, db):
        plan = text_of(db, "SELECT * FROM t LEFT JOIN u ON t.a = u.a")
        assert "HashJoin(left" in plan

    def test_aggregate_and_sort_nodes(self, db):
        plan = text_of(
            db,
            "SELECT a, COUNT(*) FROM t GROUP BY a"
            " HAVING COUNT(*) > 1 ORDER BY a LIMIT 3",
        )
        assert "Aggregate(groups=1, aggs=[COUNT])" in plan
        assert "Sort(asc)" in plan
        assert "Limit" in plan
        assert "Filter" in plan  # the HAVING

    def test_distinct_node(self, db):
        plan = text_of(db, "SELECT DISTINCT a FROM t")
        assert "Distinct" in plan

    def test_where_conjunct_becomes_join_predicate(self, db):
        plan = text_of(
            db, "SELECT * FROM t, u WHERE t.a = u.a AND t.b = 1"
        )
        assert "HashJoin(inner, 1 key(s))" in plan
        assert "filter[(t.b = 1)]" in plan

    def test_explain_rejects_dml(self, db):
        with pytest.raises(ExecutionError):
            db.explain("INSERT INTO t VALUES ('x', 1)")

    def test_explain_has_no_side_effects(self, db):
        before = db.txn_manager.stats["aborted"]
        db.explain("SELECT * FROM t")
        assert db.txn_manager.stats["aborted"] == before + 1  # plan txn aborted
        assert db.last_csn == 0  # nothing committed

    def test_indentation_reflects_tree_depth(self, db):
        lines = db.explain("SELECT a FROM t WHERE b = 1 ORDER BY a")
        assert lines[0].startswith("Sort") or lines[0].startswith("Project")
        assert any(line.startswith("  ") for line in lines[1:])
