"""Old entry points keep working (as thin shims) after the API unification."""

import warnings

import pytest

from repro.db import (
    Database,
    ReadRouter,
    ReplicaSet,
    Session,
    ShardedDatabase,
)
from repro.db.replication import ShardedReadRouter


def sharded_with_history() -> ShardedDatabase:
    sharded = ShardedDatabase(2, shard_keys={"t": "id"})
    sharded.execute("CREATE TABLE t (id INTEGER, v INTEGER)")
    for i in range(6):
        sharded.execute("INSERT INTO t VALUES (?, ?)", (i, i))
    return sharded


class TestExecuteAsOfShims:
    def test_sharded_execute_as_of_warns_and_still_answers(self):
        sharded = sharded_with_history()
        with pytest.warns(DeprecationWarning, match="AS OF"):
            result = sharded.execute_as_of("SELECT COUNT(*) FROM t", 3)
        assert result.scalar() == 3

    def test_sharded_router_execute_as_of_warns_and_still_answers(self):
        sharded = sharded_with_history()
        sharded.attach_replicas(1)
        sharded.catch_up_replicas()
        router = ShardedReadRouter(sharded)
        with pytest.warns(DeprecationWarning, match="AS OF"):
            result = router.execute_as_of("SELECT COUNT(*) FROM t", 4)
        assert result.scalar() == 4

    def test_new_clause_emits_no_warning(self):
        sharded = sharded_with_history()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert (
                sharded.execute("SELECT COUNT(*) FROM t AS OF 3").scalar() == 3
            )


class TestOldEntryPointsStillWork:
    """The pre-facade surfaces stay green: tests and apps written against
    them must not notice the redesign."""

    def test_database_execute_unchanged(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.execute("SELECT x FROM t").scalar() == 1

    def test_sharded_execute_unchanged(self):
        sharded = sharded_with_history()
        assert sharded.execute("SELECT COUNT(*) FROM t").scalar() == 6

    def test_read_router_with_session_unchanged(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        router = ReadRouter(ReplicaSet(db, n_replicas=1, mode="sync"))
        session = Session()
        router.execute("INSERT INTO t VALUES (5)", session=session)
        assert (
            router.execute("SELECT x FROM t", session=session).scalar() == 5
        )

    def test_time_travel_objects_unchanged(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("UPDATE t SET x = 2")
        assert db.time_travel.rows_as_of("t", 1)[0][1] == (1,)
