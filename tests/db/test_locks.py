"""Unit tests for the lock manager (2PL, deadlock detection)."""

import pytest

from repro.db.txn.locks import LockManager, LockMode
from repro.errors import DeadlockError, LockTimeoutError

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


class TestGrants:
    def test_exclusive_then_conflict(self):
        lm = LockManager()
        lm.acquire(1, "t", X)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, "t", X)

    def test_shared_locks_coexist(self):
        lm = LockManager()
        lm.acquire(1, "t", S)
        lm.acquire(2, "t", S)
        assert lm.holders_of("t") == {1, 2}

    def test_shared_blocks_exclusive(self):
        lm = LockManager()
        lm.acquire(1, "t", S)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, "t", X)

    def test_exclusive_blocks_shared(self):
        lm = LockManager()
        lm.acquire(1, "t", X)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, "t", S)

    def test_reentrant_acquire(self):
        lm = LockManager()
        lm.acquire(1, "t", X)
        lm.acquire(1, "t", X)
        lm.acquire(1, "t", S)  # weaker mode under X: fine

    def test_upgrade_when_sole_holder(self):
        lm = LockManager()
        lm.acquire(1, "t", S)
        lm.acquire(1, "t", X)
        assert lm.mode_of("t") is X
        assert lm.stats["upgrades"] == 1

    def test_upgrade_blocked_by_other_shared_holder(self):
        lm = LockManager()
        lm.acquire(1, "t", S)
        lm.acquire(2, "t", S)
        with pytest.raises(LockTimeoutError):
            lm.acquire(1, "t", X)

    def test_release_all_frees_resources(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm.acquire(1, "b", S)
        lm.release_all(1)
        assert lm.held_by(1) == set()
        lm.acquire(2, "a", X)
        lm.acquire(2, "b", X)

    def test_independent_resources_dont_conflict(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)


class TestWaiting:
    def test_wait_callback_retries_until_release(self):
        lm = LockManager()
        lm.acquire(1, "t", X)
        attempts = []

        def wait():
            attempts.append(1)
            if len(attempts) == 2:
                lm.release_all(1)

        lm.acquire(2, "t", X, wait=wait)
        assert lm.holders_of("t") == {2}
        assert len(attempts) == 2

    def test_starvation_guard(self):
        lm = LockManager(max_wait_rounds=5)
        lm.acquire(1, "t", X)
        with pytest.raises(LockTimeoutError, match="starved"):
            lm.acquire(2, "t", X, wait=lambda: None)


class TestDeadlocks:
    def test_two_party_deadlock_detected(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        # 1 waits for b (held by 2)...
        lm._waits_for[1] = {2}
        # ...and 2 tries to take a (held by 1): cycle.
        with pytest.raises(DeadlockError):
            lm.acquire(2, "a", X, wait=lambda: None)
        assert lm.stats["deadlocks"] == 1

    def test_three_party_cycle_detected(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm.acquire(2, "b", X)
        lm.acquire(3, "c", X)
        lm._waits_for[1] = {2}
        lm._waits_for[2] = {3}
        with pytest.raises(DeadlockError):
            lm.acquire(3, "a", X, wait=lambda: None)

    def test_chain_without_cycle_is_not_deadlock(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm._waits_for[3] = {2}  # unrelated edge
        calls = []

        def wait():
            calls.append(1)
            lm.release_all(1)

        lm.acquire(2, "a", X, wait=wait)
        assert calls  # waited once, no deadlock raised
