"""Bug replay tests (§3.5): faithfulness, injection, breakpoints."""

import pytest

from repro.db import Database, IsolationLevel
from repro.errors import ReplayDivergenceError, ReplayError
from repro.runtime import Request
from repro.workload.generators import ForumWorkload


class TestFaithfulReplay:
    def test_replay_reproduces_the_duplicate(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        result = trod.replayer.replay_request("R1")
        assert result.fidelity, result.divergences
        assert result.output is True
        rows = result.dev_db.table_rows("forum_sub")
        assert rows == [
            {"userId": "U1", "forum": "F2"},
            {"userId": "U1", "forum": "F2"},
        ]

    def test_replay_of_the_other_racer(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        result = trod.replayer.replay_request("R2")
        assert result.fidelity, result.divergences

    def test_replay_of_failed_request_reproduces_error(self, racy_moodle):
        """R3 (fetchSubscribers) failed in production; replay must fail
        identically — the Heisenbug becomes a Bohrbug."""
        _db, _runtime, trod = racy_moodle
        result = trod.replayer.replay_request("R3")
        assert result.fidelity, result.divergences
        assert result.error is not None
        assert "duplicated" in result.error

    def test_replay_does_not_touch_production(self, racy_moodle):
        database, _runtime, trod = racy_moodle
        before = database.table_rows("forum_sub")
        trod.replayer.replay_request("R1")
        assert database.table_rows("forum_sub") == before

    def test_replay_without_txns_rejected(self, moodle_env):
        _db, runtime, trod = moodle_env
        runtime.register("pure", lambda ctx: 42)
        runtime.submit("pure")
        with pytest.raises(ReplayError):
            trod.replayer.replay_request("R1")

    def test_replay_unknown_request(self, moodle_env):
        _db, _runtime, trod = moodle_env
        with pytest.raises(ReplayError):
            trod.replayer.replay_request("R404")


class TestBreakpointsAndInjection:
    def test_breakpoints_expose_interleaved_writes(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        breakpoints = []
        trod.replayer.replay_request(
            "R1", breakpoint_cb=lambda info: breakpoints.append(info)
        )
        assert len(breakpoints) == 2
        first, second = breakpoints
        assert first.label == "isSubscribed"
        assert first.injected == []
        assert second.label == "DB.insert"
        assert [w.req_id for w in second.injected] == ["R2"]
        assert second.concurrent_writers() == ["R2"]

    def test_breakpoint_can_inspect_dev_state(self, racy_moodle):
        """The 'attach GDB' surface: inspect the dev DB between txns."""
        _db, _runtime, trod = racy_moodle
        counts = []

        def on_break(info):
            counts.append(
                info.dev_db.execute("SELECT COUNT(*) FROM forum_sub").scalar()
            )

        trod.replayer.replay_request("R1", breakpoint_cb=on_break)
        # Before txn 1: empty. Before txn 2: R2's row injected.
        assert counts == [0, 1]

    def test_dependency_filter_restores_only_used_tables(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        result = trod.replayer.replay_request("R1", dependency_filter=True)
        # Only forum_sub was used; courses tables are absent from dev.
        assert result.dev_db.catalog.has_table("forum_sub")
        assert not result.dev_db.catalog.has_table("courses")

    def test_full_restore_materializes_all_tables(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        result = trod.replayer.replay_request("R1", dependency_filter=False)
        assert result.dev_db.catalog.has_table("courses")

    def test_replay_steps_record_txn_mapping(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        result = trod.replayer.replay_request("R1")
        assert [s.label for s in result.steps] == ["isSubscribed", "DB.insert"]
        assert all(s.replayed_txn is not None for s in result.steps)


class TestDivergenceDetection:
    def test_changed_handler_detected_as_divergence(self, racy_moodle):
        """If the code changed since the trace, replay must say so rather
        than silently produce different results."""
        _db, runtime, trod = racy_moodle

        def patched(ctx, user_id, forum):
            with ctx.txn(label="isSubscribed") as t:
                t.execute(
                    "SELECT * FROM forum_sub WHERE userId = ? AND forum = ?",
                    (user_id, forum),
                )
            return "changed-output"

        runtime.registry.register("subscribeUser", patched)
        result = trod.replayer.replay_request("R1")
        assert not result.fidelity
        assert any("output mismatch" in d for d in result.divergences)
        assert any("transaction count" in d for d in result.divergences)

    def test_strict_mode_raises(self, racy_moodle):
        _db, runtime, trod = racy_moodle
        runtime.registry.register("subscribeUser", lambda ctx, u, f: "nope")
        with pytest.raises(ReplayDivergenceError):
            trod.replayer.replay_request("R1", strict=True)

    def test_write_set_divergence_detected(self, racy_moodle):
        _db, runtime, trod = racy_moodle

        def sneaky(ctx, user_id, forum):
            with ctx.txn(label="isSubscribed") as t:
                t.execute(
                    "SELECT * FROM forum_sub WHERE userId = ? AND forum = ?",
                    (user_id, forum),
                )
            with ctx.txn(label="DB.insert") as t:
                t.execute(
                    "INSERT INTO forum_sub (userId, forum) VALUES (?, ?)",
                    ("EVIL", forum),
                )
            return True

        runtime.registry.register("subscribeUser", sneaky)
        result = trod.replayer.replay_request("R1")
        assert any("write set" in d for d in result.divergences)


class TestSnapshotIsolationReenactment:
    def test_si_transactions_replay_against_their_snapshot(self):
        """Ablation A5: reenactment under SNAPSHOT isolation uses the
        recorded snapshot CSN, not the serial prefix."""
        from repro.apps import build_moodle_app
        from repro.core import Trod
        from repro.runtime import Runtime

        database = Database()
        runtime = Runtime(database, isolation=IsolationLevel.SNAPSHOT)
        names = build_moodle_app(database, runtime)
        trod = Trod(database, event_names=names).attach(runtime)
        runtime.run_concurrent(
            ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
        )
        result = trod.replayer.replay_request("R1")
        assert result.fidelity, result.divergences
        rows = result.dev_db.table_rows("forum_sub")
        assert len(rows) == 2
