"""Provenance checkpoints: O(delta) dev-database restores for replay.

A checkpoint is a materialized table state at some CSN stored beside the
event log; ``reconstruct_rows`` restores from the nearest one at or below
the target CSN and replays only the remaining events. These tests pin the
core contract: checkpointed reconstruction is *indistinguishable* from
full-history reconstruction, at every CSN, including after redaction.
"""

def subscribe_history(moodle_env, n: int = 30, offset: int = 0):
    """Attach-time snapshot plus ``n`` subscription requests."""
    database, runtime, trod = moodle_env
    for i in range(n):
        runtime.submit("subscribeUser", f"U{offset + i}", "F1")
    trod.flush()
    return database, runtime, trod


def full_reconstruction(prov, table: str, csn: int):
    """Reference result: reconstruct with checkpoints sidelined."""
    saved = dict(prov._checkpoints)
    prov.invalidate_checkpoints()
    try:
        return prov.reconstruct_rows(table, csn)
    finally:
        prov._checkpoints = saved


class TestCheckpointedReconstruction:
    def test_checkpoint_matches_full_history_at_every_csn(self, moodle_env):
        database, runtime, trod = subscribe_history(moodle_env)
        prov = trod.provenance
        mid = database.last_csn // 2
        prov.create_checkpoint(mid)
        prov.create_checkpoint(database.last_csn)
        assert prov.checkpoint_csns("forum_sub") == [mid, database.last_csn]
        for csn in range(database.last_csn + 1):
            assert prov.reconstruct_rows("forum_sub", csn) == \
                full_reconstruction(prov, "forum_sub", csn)

    def test_restore_uses_nearest_checkpoint(self, moodle_env):
        database, runtime, trod = subscribe_history(moodle_env)
        prov = trod.provenance
        mid = database.last_csn // 2
        prov.create_checkpoint(mid)
        before = dict(prov.checkpoint_stats)
        prov.reconstruct_rows("forum_sub", mid - 1)  # below: full path
        prov.reconstruct_rows("forum_sub", mid + 1)  # above: delta path
        after = prov.checkpoint_stats
        assert after["full_restores"] == before["full_restores"] + 1
        assert after["checkpoint_restores"] == before["checkpoint_restores"] + 1

    def test_automatic_checkpoints_from_ingest(self, moodle_env):
        database, runtime, trod = moodle_env
        trod.provenance.checkpoint_interval = 5
        subscribe_history((database, runtime, trod), n=20)
        assert trod.provenance.checkpoint_csns("forum_sub")
        assert trod.provenance.checkpoint_stats["checkpoints"] > 0

    def test_build_dev_db_agrees_with_and_without_checkpoints(self, moodle_env):
        database, runtime, trod = subscribe_history(moodle_env)
        prov = trod.provenance
        upto = database.last_csn
        prov.create_checkpoint(upto)
        dev_ck = trod.replayer.build_dev_db(upto)
        saved = dict(prov._checkpoints)
        prov.invalidate_checkpoints()
        dev_full = trod.replayer.build_dev_db(upto)
        prov._checkpoints = saved
        for table in dev_full.catalog.table_names():
            assert dev_ck.table_rows(table) == dev_full.table_rows(table)

    def test_replay_fidelity_with_checkpoints(self, racy_moodle):
        database, runtime, trod = racy_moodle
        trod.flush()
        trod.provenance.create_checkpoint()
        result = trod.replayer.replay_request("R1")
        assert result.fidelity, result.divergences
        assert len(result.dev_db.table_rows("forum_sub")) == 2


class TestCheckpointInvalidation:
    def test_redaction_drops_checkpoints(self, racy_moodle):
        database, runtime, trod = racy_moodle
        trod.flush()
        prov = trod.provenance
        prov.create_checkpoint()
        assert prov.checkpoint_csns("forum_sub")
        trod.privacy.forget_value("forum_sub", "userId", "U1")
        # A stale checkpoint would resurrect the erased values.
        assert not prov.checkpoint_csns("forum_sub")
        rows = prov.reconstruct_rows("forum_sub", database.last_csn)
        assert all("U1" not in values for _rid, values in rows)

    def test_late_event_below_checkpoint_invalidates_it(self, moodle_env):
        database, runtime, trod = subscribe_history(moodle_env, n=5)
        prov = trod.provenance
        prov.create_checkpoint()
        [ck] = prov.checkpoint_csns("forum_sub")
        from repro.core.events import DataEvent

        prov.ingest(
            [
                DataEvent(
                    txn_num=999,
                    txn_name="TXN999",
                    table="forum_sub",
                    kind="Insert",
                    query="late arrival",
                    row_id=9999,
                    values={"userId": "UX", "forum": "F9"},
                    csn=ck - 1,
                )
            ]
        )
        assert prov.checkpoint_csns("forum_sub") == []
        rows = prov.reconstruct_rows("forum_sub", database.last_csn)
        assert any(values[0] == "UX" for _rid, values in rows)


def make_traced_store(tmp_path=None, **kwargs):
    """A ProvenanceStore tracing one two-column app table directly."""
    import os

    from repro.core.provenance import ProvenanceStore
    from repro.db.database import Database
    from repro.db.schema import Column, TableSchema
    from repro.db.types import ColumnType

    wal_path = (
        os.path.join(str(tmp_path), "wal.jsonl") if tmp_path is not None else None
    )
    # storage="memory" pinned: the no-spill test needs a WAL-less
    # database, and under REPRO_STORAGE=paged a default Database always
    # gets a WAL in its data dir.
    prov = ProvenanceStore(
        db=Database(name="prov", wal_path=wal_path, storage="memory"),
        checkpoint_interval=None,
        **kwargs,
    )
    prov.register_app_table(
        TableSchema(
            "items",
            [Column("k", ColumnType.TEXT), Column("v", ColumnType.INTEGER)],
        )
    )
    return prov


def ingest_writes(prov, n: int, start_csn: int = 1):
    """n committed single-insert transactions at consecutive CSNs."""
    from repro.core.events import DataEvent, TxnEvent

    events = []
    for i in range(n):
        csn = start_csn + i
        events.append(
            TxnEvent(
                txn_num=csn,
                txn_name=f"T{csn}",
                ts=0,
                handler="h",
                req_id=f"R{csn}",
                label=None,
                isolation="SI",
                status="Committed",
                csn=csn,
                snapshot_csn=csn - 1,
            )
        )
        events.append(
            DataEvent(
                txn_num=csn,
                txn_name=f"T{csn}",
                table="items",
                kind="Insert",
                query="ins",
                row_id=csn,
                values={"k": f"k{csn}", "v": csn},
                csn=csn,
            )
        )
    prov.ingest(events)


class TestIncrementalLiveState:
    """create_checkpoint materializes from the incrementally folded live
    state — O(table size), no event replay — whenever the target csn is
    at or ahead of its watermark."""

    def test_fast_path_agrees_with_event_replay(self):
        prov = make_traced_store()
        ingest_writes(prov, 25)
        prov.create_checkpoint()
        [ck] = prov.checkpoint_csns("items")
        fast = prov.reconstruct_rows("items", ck)
        assert fast == full_reconstruction(prov, "items", ck)
        assert len(fast) == 25

    def test_fast_path_skips_unchanged_without_querying(self):
        prov = make_traced_store()
        ingest_writes(prov, 5)
        prov.create_checkpoint()
        before = prov.checkpoint_stats["checkpoints"]
        queries = prov.db.store("ItemsEvents").version_count()
        prov.create_checkpoint()  # nothing new: skipped via dirty counter
        assert prov.checkpoint_stats["checkpoints"] == before
        assert prov.db.store("ItemsEvents").version_count() == queries

    def test_historical_csn_uses_replay_path(self):
        prov = make_traced_store()
        ingest_writes(prov, 10)
        stats_before = dict(prov.checkpoint_stats)
        prov.create_checkpoint(5)  # below the live watermark
        assert prov.checkpoint_csns("items") == [5]
        assert prov.reconstruct_rows("items", 5) == \
            full_reconstruction(prov, "items", 5)
        # The historical build went through reconstruction, not the fold.
        assert prov.checkpoint_stats["full_restores"] > \
            stats_before["full_restores"]

    def test_live_state_reseeds_after_invalidation(self):
        prov = make_traced_store()
        ingest_writes(prov, 8)
        prov.invalidate_checkpoints()  # drops folds too (redaction path)
        assert not prov._live
        prov.create_checkpoint()  # slow path; re-seeds the fold
        assert "items" in prov._live
        ingest_writes(prov, 3, start_csn=9)
        prov.create_checkpoint()  # fast path again
        [_, ck] = prov.checkpoint_csns("items")
        assert prov.reconstruct_rows("items", ck) == \
            full_reconstruction(prov, "items", ck)

    def test_out_of_order_event_invalidates_fold(self):
        from repro.core.events import DataEvent

        prov = make_traced_store()
        ingest_writes(prov, 6)
        prov.ingest(
            [
                DataEvent(
                    txn_num=99,
                    txn_name="T99",
                    table="items",
                    kind="Insert",
                    query="late",
                    row_id=999,
                    values={"k": "late", "v": 0},
                    csn=2,
                )
            ]
        )
        assert "items" not in prov._live
        prov.create_checkpoint()
        [ck] = prov.checkpoint_csns("items")
        rows = prov.reconstruct_rows("items", ck)
        assert rows == full_reconstruction(prov, "items", ck)
        assert any(values[0] == "late" for _rid, values in rows)


class TestCheckpointSpill:
    """Large checkpoint payloads spill to disk next to the provenance
    WAL; reconstruction loads them back through a small LRU cache."""

    def test_large_checkpoint_spills_and_loads_back(self, tmp_path):
        from repro.core.provenance import _SpilledRows

        prov = make_traced_store(tmp_path)
        prov.spill_threshold = 50
        ingest_writes(prov, 120)
        prov.create_checkpoint()
        [(ck, payload)] = prov._checkpoints["items"]
        assert isinstance(payload, _SpilledRows)
        assert payload.count == 120
        assert prov.checkpoint_stats["spills"] == 1
        # Warm cache serves the first restore; a cleared cache reloads.
        rows = prov.reconstruct_rows("items", ck)
        assert prov.checkpoint_stats["spill_cache_hits"] == 1
        prov._spill_cache.clear()
        assert prov.reconstruct_rows("items", ck) == rows
        assert prov.checkpoint_stats["spill_loads"] == 1
        assert rows == full_reconstruction(prov, "items", ck)

    def test_spill_cache_evicts_by_access_order(self, tmp_path):
        prov = make_traced_store(tmp_path)
        prov.spill_threshold = 10
        prov.spill_cache_size = 2
        for round_num in range(4):
            ingest_writes(prov, 15, start_csn=round_num * 15 + 1)
            prov.create_checkpoint()
        prov._spill_cache.clear()
        for ck in prov.checkpoint_csns("items"):
            prov.reconstruct_rows("items", ck)
        assert len(prov._spill_cache) <= 2
        assert prov.checkpoint_stats["spill_loads"] >= 4

    def test_invalidation_removes_spill_files(self, tmp_path):
        import os

        prov = make_traced_store(tmp_path)
        prov.spill_threshold = 10
        ingest_writes(prov, 40)
        prov.create_checkpoint()
        [(_ck, payload)] = prov._checkpoints["items"]
        assert os.path.exists(payload.path)
        prov.invalidate_checkpoints("items")
        assert not os.path.exists(payload.path)

    def test_no_wal_means_no_spill(self):
        prov = make_traced_store()  # in-memory provenance DB: no WAL file
        prov.spill_threshold = 10
        ingest_writes(prov, 40)
        prov.create_checkpoint()
        [(_ck, payload)] = prov._checkpoints["items"]
        assert isinstance(payload, tuple)
        assert prov.checkpoint_stats["spills"] == 0


class TestCheckpointRetention:
    def test_unchanged_tables_are_not_recheckpointed(self, moodle_env):
        database, runtime, trod = moodle_env
        prov = trod.provenance
        # Only forum_sub receives writes; course/forum tables stay static.
        subscribe_history((database, runtime, trod), n=4)
        prov.create_checkpoint()
        static_tables = [
            t for t in prov.traced_tables() if t.lower() != "forum_sub"
        ]
        before = {t: prov.checkpoint_csns(t) for t in static_tables}
        subscribe_history((database, runtime, trod), n=4, offset=4)
        prov.create_checkpoint()
        assert len(prov.checkpoint_csns("forum_sub")) == 2
        for table in static_tables:
            assert prov.checkpoint_csns(table) == before[table]

    def test_per_table_checkpoints_stay_bounded(self, moodle_env):
        database, runtime, trod = moodle_env
        prov = trod.provenance
        for i in range(50):
            subscribe_history((database, runtime, trod), n=1, offset=i)
            prov.create_checkpoint()
        from repro.core.provenance import _MAX_TABLE_CHECKPOINTS

        count = len(prov.checkpoint_csns("forum_sub"))
        assert count <= _MAX_TABLE_CHECKPOINTS + 1
        # Thinning must not break correctness at any csn.
        for csn in range(0, database.last_csn + 1, 7):
            assert prov.reconstruct_rows("forum_sub", csn) == \
                full_reconstruction(prov, "forum_sub", csn)
