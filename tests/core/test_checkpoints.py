"""Provenance checkpoints: O(delta) dev-database restores for replay.

A checkpoint is a materialized table state at some CSN stored beside the
event log; ``reconstruct_rows`` restores from the nearest one at or below
the target CSN and replays only the remaining events. These tests pin the
core contract: checkpointed reconstruction is *indistinguishable* from
full-history reconstruction, at every CSN, including after redaction.
"""

def subscribe_history(moodle_env, n: int = 30, offset: int = 0):
    """Attach-time snapshot plus ``n`` subscription requests."""
    database, runtime, trod = moodle_env
    for i in range(n):
        runtime.submit("subscribeUser", f"U{offset + i}", "F1")
    trod.flush()
    return database, runtime, trod


def full_reconstruction(prov, table: str, csn: int):
    """Reference result: reconstruct with checkpoints sidelined."""
    saved = dict(prov._checkpoints)
    prov.invalidate_checkpoints()
    try:
        return prov.reconstruct_rows(table, csn)
    finally:
        prov._checkpoints = saved


class TestCheckpointedReconstruction:
    def test_checkpoint_matches_full_history_at_every_csn(self, moodle_env):
        database, runtime, trod = subscribe_history(moodle_env)
        prov = trod.provenance
        mid = database.last_csn // 2
        prov.create_checkpoint(mid)
        prov.create_checkpoint(database.last_csn)
        assert prov.checkpoint_csns("forum_sub") == [mid, database.last_csn]
        for csn in range(database.last_csn + 1):
            assert prov.reconstruct_rows("forum_sub", csn) == \
                full_reconstruction(prov, "forum_sub", csn)

    def test_restore_uses_nearest_checkpoint(self, moodle_env):
        database, runtime, trod = subscribe_history(moodle_env)
        prov = trod.provenance
        mid = database.last_csn // 2
        prov.create_checkpoint(mid)
        before = dict(prov.checkpoint_stats)
        prov.reconstruct_rows("forum_sub", mid - 1)  # below: full path
        prov.reconstruct_rows("forum_sub", mid + 1)  # above: delta path
        after = prov.checkpoint_stats
        assert after["full_restores"] == before["full_restores"] + 1
        assert after["checkpoint_restores"] == before["checkpoint_restores"] + 1

    def test_automatic_checkpoints_from_ingest(self, moodle_env):
        database, runtime, trod = moodle_env
        trod.provenance.checkpoint_interval = 5
        subscribe_history((database, runtime, trod), n=20)
        assert trod.provenance.checkpoint_csns("forum_sub")
        assert trod.provenance.checkpoint_stats["checkpoints"] > 0

    def test_build_dev_db_agrees_with_and_without_checkpoints(self, moodle_env):
        database, runtime, trod = subscribe_history(moodle_env)
        prov = trod.provenance
        upto = database.last_csn
        prov.create_checkpoint(upto)
        dev_ck = trod.replayer.build_dev_db(upto)
        saved = dict(prov._checkpoints)
        prov.invalidate_checkpoints()
        dev_full = trod.replayer.build_dev_db(upto)
        prov._checkpoints = saved
        for table in dev_full.catalog.table_names():
            assert dev_ck.table_rows(table) == dev_full.table_rows(table)

    def test_replay_fidelity_with_checkpoints(self, racy_moodle):
        database, runtime, trod = racy_moodle
        trod.flush()
        trod.provenance.create_checkpoint()
        result = trod.replayer.replay_request("R1")
        assert result.fidelity, result.divergences
        assert len(result.dev_db.table_rows("forum_sub")) == 2


class TestCheckpointInvalidation:
    def test_redaction_drops_checkpoints(self, racy_moodle):
        database, runtime, trod = racy_moodle
        trod.flush()
        prov = trod.provenance
        prov.create_checkpoint()
        assert prov.checkpoint_csns("forum_sub")
        trod.privacy.forget_value("forum_sub", "userId", "U1")
        # A stale checkpoint would resurrect the erased values.
        assert not prov.checkpoint_csns("forum_sub")
        rows = prov.reconstruct_rows("forum_sub", database.last_csn)
        assert all("U1" not in values for _rid, values in rows)

    def test_late_event_below_checkpoint_invalidates_it(self, moodle_env):
        database, runtime, trod = subscribe_history(moodle_env, n=5)
        prov = trod.provenance
        prov.create_checkpoint()
        [ck] = prov.checkpoint_csns("forum_sub")
        from repro.core.events import DataEvent

        prov.ingest(
            [
                DataEvent(
                    txn_num=999,
                    txn_name="TXN999",
                    table="forum_sub",
                    kind="Insert",
                    query="late arrival",
                    row_id=9999,
                    values={"userId": "UX", "forum": "F9"},
                    csn=ck - 1,
                )
            ]
        )
        assert prov.checkpoint_csns("forum_sub") == []
        rows = prov.reconstruct_rows("forum_sub", database.last_csn)
        assert any(values[0] == "UX" for _rid, values in rows)


class TestCheckpointRetention:
    def test_unchanged_tables_are_not_recheckpointed(self, moodle_env):
        database, runtime, trod = moodle_env
        prov = trod.provenance
        # Only forum_sub receives writes; course/forum tables stay static.
        subscribe_history((database, runtime, trod), n=4)
        prov.create_checkpoint()
        static_tables = [
            t for t in prov.traced_tables() if t.lower() != "forum_sub"
        ]
        before = {t: prov.checkpoint_csns(t) for t in static_tables}
        subscribe_history((database, runtime, trod), n=4, offset=4)
        prov.create_checkpoint()
        assert len(prov.checkpoint_csns("forum_sub")) == 2
        for table in static_tables:
            assert prov.checkpoint_csns(table) == before[table]

    def test_per_table_checkpoints_stay_bounded(self, moodle_env):
        database, runtime, trod = moodle_env
        prov = trod.provenance
        for i in range(50):
            subscribe_history((database, runtime, trod), n=1, offset=i)
            prov.create_checkpoint()
        from repro.core.provenance import _MAX_TABLE_CHECKPOINTS

        count = len(prov.checkpoint_csns("forum_sub"))
        assert count <= _MAX_TABLE_CHECKPOINTS + 1
        # Thinning must not break correctness at any csn.
        for csn in range(0, database.last_csn + 1, 7):
            assert prov.reconstruct_rows("forum_sub", csn) == \
                full_reconstruction(prov, "forum_sub", csn)
