"""Declarative debugger and report rendering tests."""

import pytest

from repro.core import report
from repro.errors import ProvenanceError


class TestPaperQuery:
    def test_verbatim_paper_query(self, racy_moodle):
        """The §3.3 query, character-for-character from the paper."""
        _db, _runtime, trod = racy_moodle
        rs = trod.query(
            "SELECT Timestamp, ReqId, HandlerName\n"
            "FROM Executions as E, ForumEvents as F\n"
            "ON E.TxnId = F.TxnId\n"
            "WHERE F.UserId = 'U1' AND F.Forum = 'F2'\n"
            "AND F.Type = 'Insert'\n"
            "ORDER BY Timestamp ASC;"
        )
        assert len(rs) == 2
        req_ids = rs.column("ReqId")
        handlers = rs.column("HandlerName")
        # Two different requests, same handler: the §3.3 smoking gun.
        assert set(req_ids) == {"R1", "R2"}
        assert handlers == ["subscribeUser", "subscribeUser"]

    def test_find_writers_builds_equivalent_query(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        rs = trod.debugger.find_writers("forum_sub", UserId="U1", Forum="F2")
        assert set(rs.column("ReqId")) == {"R1", "R2"}


class TestCannedAnalyses:
    def test_duplicate_inserts(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        dupes = trod.debugger.duplicate_inserts("forum_sub", ["UserId", "Forum"])
        assert len(dupes) == 1
        assert dupes[0]["key"] == {"UserId": "U1", "Forum": "F2"}
        assert dupes[0]["count"] == 2
        assert {w["ReqId"] for w in dupes[0]["writers"]} == {"R1", "R2"}

    def test_no_duplicates_in_clean_run(self, moodle_env):
        _db, runtime, trod = moodle_env
        runtime.submit("subscribeUser", "U1", "F1")
        runtime.submit("subscribeUser", "U2", "F1")
        assert trod.debugger.duplicate_inserts("forum_sub", ["UserId", "Forum"]) == []

    def test_request_timeline(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        trod.flush()
        timeline = trod.debugger.request_timeline("R1")
        assert [t["Metadata"] for t in timeline] == [
            "func:isSubscribed", "func:DB.insert",
        ]

    def test_interleaved_writes_show_the_racing_request(self, racy_moodle):
        """§3.5: query which concurrent executions updated the database
        between a request's transactions."""
        _db, _runtime, trod = racy_moodle
        interleaved = trod.debugger.interleaved_writes("R1")
        assert len(interleaved) == 1
        assert interleaved[0]["ReqId"] == "R2"
        assert interleaved[0]["Type"] == "Insert"

    def test_interleaved_writes_empty_for_single_txn_request(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        assert trod.debugger.interleaved_writes("R3") == []

    def test_interleaved_writes_unknown_request(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        with pytest.raises(ProvenanceError):
            trod.debugger.interleaved_writes("R99")

    def test_failed_requests(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        failed = trod.debugger.failed_requests()
        assert [f["ReqId"] for f in failed] == ["R3"]

    def test_transactions_touching(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        rs = trod.debugger.transactions_touching("forum_sub", kind="Insert")
        assert set(rs.column("ReqId")) == {"R1", "R2"}


class TestReports:
    def test_table1_layout(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        text = report.render_table1(trod)
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "TxnId"
        # 5 committed txns -> header + rule + 5 rows.
        assert len(lines) == 7
        assert "func:isSubscribed" in text
        assert "subscribeUser" in text and "fetchSubscribers" in text

    def test_table1_filtered_by_request(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        text = report.render_table1(trod, req_ids=["R1"])
        assert text.count("subscribeUser") == 2
        assert "fetchSubscribers" not in text

    def test_table2_layout(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        text = report.render_table2(trod, "forum_sub")
        assert "Insert" in text and "Read" in text
        assert "null" in text  # the zero-row check reads
        assert "Snapshot" not in text

    def test_table2_with_snapshot_rows(self, moodle_env):
        database, runtime, trod = moodle_env
        text = report.render_table2(trod, "forum_sub", include_snapshot=True)
        assert "TxnId" in text  # renders even when empty

    def test_history_diagram_lanes(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        diagram = report.history_diagram(trod)
        lines = diagram.splitlines()
        assert lines[0].startswith("R1 |")
        assert lines[1].startswith("R2 |")
        assert lines[2].startswith("R3 |")
        # R1's lane holds the first and fourth transaction columns.
        assert "[isSubscribed]" in lines[0]
        assert "[DB.executeQuery]" in lines[2]

    def test_history_diagram_empty(self, moodle_env):
        _db, _runtime, trod = moodle_env
        assert "no committed transactions" in report.history_diagram(trod)
