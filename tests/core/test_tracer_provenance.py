"""Tracing + provenance store tests against the Moodle fixture."""

import pytest

from repro.core import Trod
from repro.db import Database
from repro.errors import ProvenanceError, TrodError
from repro.runtime import Request, Runtime
from repro.workload.generators import ForumWorkload


class TestAttachment:
    def test_attach_requires_shared_database(self, moodle_env):
        database, runtime, _trod = moodle_env
        other = Trod(Database())
        with pytest.raises(TrodError):
            other.attach(runtime)

    def test_double_attach_rejected(self, moodle_env):
        _db, runtime, trod = moodle_env
        with pytest.raises(TrodError):
            trod.attach(runtime)

    def test_attach_enables_read_tracking(self, moodle_env):
        database, _runtime, _trod = moodle_env
        assert database.track_reads is True

    def test_detach_restores_database(self, moodle_env):
        database, _runtime, trod = moodle_env
        trod.detach()
        assert database.track_reads is False
        assert trod.interposition not in database.observers

    def test_event_tables_created_with_custom_names(self, moodle_env):
        _db, _runtime, trod = moodle_env
        assert trod.provenance.event_table_of("forum_sub") == "ForumEvents"
        assert "ForumEvents" in trod.provenance.db.catalog.table_names()

    def test_tables_created_after_attach_are_traced(self, moodle_env):
        database, runtime, trod = moodle_env
        database.execute("CREATE TABLE late_table (x INTEGER)")

        def writer(ctx):
            ctx.sql("INSERT INTO late_table VALUES (1)")

        runtime.register("lateWriter", writer)
        runtime.submit("lateWriter")
        trod.flush()
        events = trod.provenance.query(
            "SELECT Type FROM LateTableEvents"
        ).column("Type")
        assert "Insert" in events


class TestExecutionsTable:
    def test_committed_txns_recorded_in_commit_order(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        rows = trod.query(
            "SELECT TxnId, HandlerName, ReqId, Metadata FROM Executions"
            " WHERE Status = 'Committed' ORDER BY Csn"
        ).rows
        assert [r[2] for r in rows] == ["R1", "R2", "R2", "R1", "R3"]
        assert rows[0][3] == "func:isSubscribed"
        assert rows[3][3] == "func:DB.insert"

    def test_invocations_alias_works(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        count = trod.query("SELECT COUNT(*) FROM Invocations").scalar()
        assert count == 5

    def test_aborted_txns_have_no_csn(self, moodle_env):
        database, runtime, trod = moodle_env

        def aborter(ctx):
            with ctx.txn(label="doomed") as t:
                t.execute("INSERT INTO forum_sub VALUES ('U9', 'F9')")
                raise ValueError("abort me")

        runtime.register("aborter", aborter)
        runtime.submit("aborter")
        rows = trod.query(
            "SELECT Status, Csn FROM Executions WHERE Metadata = 'func:doomed'"
        ).rows
        assert rows == [("Aborted", None)]

    def test_timestamps_strictly_increase_with_commit_order(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        ts = trod.query(
            "SELECT Timestamp FROM Executions WHERE Status = 'Committed'"
            " ORDER BY Csn"
        ).column("Timestamp")
        # Begin timestamps follow the schedule: R1 and R2 checks began
        # before the inserts, and within this schedule commit order
        # follows begin order except the raced pair.
        assert len(set(ts)) == len(ts)


class TestEventTables:
    def test_table2_shape(self, racy_moodle):
        """The exact shape of the paper's Table 2."""
        _db, _runtime, trod = racy_moodle
        rows = trod.query(
            "SELECT TxnId, Type, UserId, Forum FROM ForumEvents"
            " WHERE Type != 'Snapshot' ORDER BY Seq"
        ).rows
        kinds = [r[1] for r in rows]
        assert kinds == ["Read", "Read", "Insert", "Insert", "Read", "Read"]
        # The two empty-check reads carry null data columns.
        assert rows[0][2] is None and rows[0][3] is None
        assert rows[1][2] is None and rows[1][3] is None
        # Both inserts carry the duplicated key.
        assert rows[2][2:] == ("U1", "F2")
        assert rows[3][2:] == ("U1", "F2")
        # The fetch matched both duplicate rows -> two read events.
        assert rows[4][2:] == ("U1", "F2")
        assert rows[5][2:] == ("U1", "F2")

    def test_write_events_carry_commit_csn(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        rows = trod.query(
            "SELECT Csn FROM ForumEvents WHERE Type = 'Insert'"
        ).column("Csn")
        assert all(csn is not None for csn in rows)

    def test_read_events_have_null_csn(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        rows = trod.query(
            "SELECT Csn FROM ForumEvents WHERE Type = 'Read'"
        ).column("Csn")
        assert all(csn is None for csn in rows)

    def test_untraced_kinds_excluded_from_update_delete(self, moodle_env):
        database, runtime, trod = moodle_env
        runtime.submit("subscribeUser", "U1", "F1")
        runtime.submit("unsubscribeUser", "U1", "F1")
        kinds = trod.query(
            "SELECT Type FROM ForumEvents WHERE Type != 'Snapshot' ORDER BY Seq"
        ).column("Type")
        assert kinds == ["Read", "Insert", "Delete"]


class TestRequestsAndSnapshots:
    def test_requests_capture_args_for_reexecution(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        trod.flush()  # provenance.* reads the raw store; Trod.query flushes
        handler, args, kwargs, auth = trod.provenance.request_args("R1")
        assert handler == "subscribeUser"
        assert args == ("U1", "F2")
        assert kwargs == {}

    def test_failed_request_status(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        trod.flush()
        row = trod.provenance.request_row("R3")
        assert row["Status"] == "Error"
        assert "duplicated" in row["Error"]

    def test_missing_request_raises(self, moodle_env):
        _db, _runtime, trod = moodle_env
        with pytest.raises(ProvenanceError):
            trod.provenance.request_row("R999")

    def test_snapshot_rows_written_for_preexisting_data(self):
        database = Database()
        database.execute("CREATE TABLE t (k TEXT)")
        database.execute("INSERT INTO t VALUES ('pre')")
        runtime = Runtime(database)
        trod = Trod(database).attach(runtime)
        rows = trod.query(
            "SELECT Type, K FROM TEvents WHERE Type = 'Snapshot'"
        ).rows
        assert rows == [("Snapshot", "pre")]

    def test_reconstruction_from_provenance_alone(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        trod.flush()
        rows = trod.provenance.reconstruct_rows("forum_sub", upto_csn=10**9)
        values = sorted(v for _rid, v in rows)
        assert values == [("U1", "F2"), ("U1", "F2")]

    def test_reconstruction_at_base_is_empty(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        trod.flush()
        assert trod.provenance.reconstruct_rows("forum_sub", trod.base_csn) == []

    def test_restore_into_dev_database(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        trod.flush()
        dev = Database(name="dev")
        counts = trod.provenance.restore_into(dev, upto_csn=10**9)
        assert counts["forum_sub"] == 2


class TestWorkflowEdgesAndEffects:
    def test_workflow_edges_recorded(self, ecommerce_env):
        _db, runtime, trod = ecommerce_env
        runtime.submit("registerUser", "U1", "u@x", "4111")
        runtime.submit("addToCart", "C1", "U1", "S1", 1, 2.0)
        runtime.submit("restock", "S1", 10)
        runtime.submit("checkout", "C1", "U1")
        trod.flush()
        edges = trod.debugger.workflow("R4")
        assert [e["Callee"] for e in edges] == [
            "validateCart", "reserveInventory", "chargePayment", "createOrder",
        ]

    def test_side_effects_traced(self, ecommerce_env):
        _db, runtime, trod = ecommerce_env
        runtime.submit("weeklyReport")
        rows = trod.query("SELECT Channel FROM SideEffects").column("Channel")
        assert rows == ["email"]


class TestOverheadAccounting:
    def test_overhead_stats_populated(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        stats = trod.overhead_stats()
        assert stats["requests_traced"] == 3
        assert stats["events_emitted"] > 0
        assert stats["tracing_overhead_us_per_request"] > 0

    def test_buffer_autoflush_on_capacity(self):
        database = Database()
        database.execute("CREATE TABLE t (k TEXT)")
        runtime = Runtime(database)
        trod = Trod(database, buffer_capacity=8).attach(runtime)

        def writer(ctx, i):
            ctx.sql("INSERT INTO t VALUES (?)", (f"v{i}",))

        runtime.register("writer", writer)
        for i in range(20):
            runtime.submit("writer", i)
        # Capacity-triggered flushes happened; nothing was lost.
        assert trod.buffer.stats()["flushes"] >= 1
        trod.flush()
        count = trod.provenance.query(
            "SELECT COUNT(*) FROM TEvents WHERE Type = 'Insert'"
        ).scalar()
        assert count == 20
