"""Rendering of retroactive results (Figure 3 bottom as text)."""

import pytest

from repro.apps.moodle import subscribe_user_fixed
from repro.core import report


class TestRenderRetroactive:
    def test_patched_run_rendering(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        result = trod.retroactive.run(
            ["R1", "R2"],
            patches={"subscribeUser": subscribe_user_fixed},
            followups=["R3"],
        )
        text = report.render_retroactive(result)
        assert "ordering [0, 1]" in text
        assert "ordering [1, 0]" in text
        assert "R1' subscribeUser: True (was: True)" in text
        # R3 changed: it used to error, now returns ['U1'].
        assert "* then R3' fetchSubscribers: ['U1']" in text
        assert "forum_sub: [('U1', 'F2')]" in text

    def test_failing_run_shows_violations(self, racy_moodle):
        _db, _runtime, trod = racy_moodle

        def no_duplicates(dev_db):
            rows = dev_db.execute(
                "SELECT userId, COUNT(*) FROM forum_sub"
                " GROUP BY userId HAVING COUNT(*) > 1"
            ).rows
            return [f"dup {r[0]}" for r in rows]

        result = trod.retroactive.run(["R1", "R2"], invariant=no_duplicates)
        text = report.render_retroactive(result)
        assert "invariant violations" in text
        assert "dup U1" in text

    def test_unchanged_requests_not_starred(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        result = trod.retroactive.run(
            ["R1", "R2"], patches={"subscribeUser": subscribe_user_fixed}
        )
        text = report.render_retroactive(result)
        # Outputs match the originals -> no change markers on requests.
        for line in text.splitlines():
            if "subscribeUser:" in line:
                assert not line.strip().startswith("*")
