"""Interleaving enumeration tests (§3.6)."""

from itertools import permutations

import pytest

from repro.core.orderings import (
    TxnStep,
    enumerate_interleavings,
    iter_interleavings,
    naive_interleaving_count,
    steps_from_footprints,
)


def step(req, ordinal, reads=(), writes=()):
    return TxnStep(
        req_index=req,
        ordinal=ordinal,
        reads=frozenset(reads),
        writes=frozenset(writes),
    )


def seq(req, footprints):
    return [
        step(req, i, reads, writes) for i, (reads, writes) in enumerate(footprints)
    ]


class TestNaiveCount:
    def test_multinomial(self):
        assert naive_interleaving_count([2, 2]) == 6
        assert naive_interleaving_count([2, 2, 1]) == 30
        assert naive_interleaving_count([3]) == 1
        assert naive_interleaving_count([]) == 1

    def test_growth_is_prohibitive(self):
        """The paper's point: naive interleavings explode combinatorially."""
        assert naive_interleaving_count([5, 5, 5]) == 756_756


class TestConflicts:
    def test_write_write_conflict(self):
        a = step(0, 0, writes={"t"})
        b = step(1, 0, writes={"t"})
        assert a.conflicts_with(b)

    def test_read_write_conflict(self):
        a = step(0, 0, reads={"t"})
        b = step(1, 0, writes={"t"})
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)

    def test_read_read_independent(self):
        a = step(0, 0, reads={"t"})
        b = step(1, 0, reads={"t"})
        assert not a.conflicts_with(b)

    def test_disjoint_tables_independent(self):
        a = step(0, 0, reads={"a"}, writes={"a"})
        b = step(1, 0, reads={"b"}, writes={"b"})
        assert not a.conflicts_with(b)


class TestEnumeration:
    def test_all_mode_is_exhaustive(self):
        seqs = [seq(0, [((), ("t",))] * 2), seq(1, [((), ("t",))] * 2)]
        orderings, truncated = enumerate_interleavings(seqs, prune=False)
        assert not truncated
        assert len(orderings) == 6
        assert len({tuple(o) for o in orderings}) == 6

    def test_each_ordering_preserves_per_request_order(self):
        seqs = [seq(0, [((), ("t",))] * 3), seq(1, [((), ("t",))] * 2)]
        orderings, _ = enumerate_interleavings(seqs, prune=False)
        for ordering in orderings:
            assert [r for r in ordering if r == 0] == [0, 0, 0]
            assert [r for r in ordering if r == 1] == [1, 1]

    def test_fully_conflicting_steps_are_not_pruned(self):
        seqs = [seq(0, [((), ("t",))] * 2), seq(1, [((), ("t",))] * 2)]
        pruned, _ = enumerate_interleavings(seqs, prune=True)
        assert len(pruned) == 6  # every interleaving is distinguishable

    def test_fully_independent_steps_collapse_to_one(self):
        seqs = [seq(0, [((), ("a",))] * 2), seq(1, [((), ("b",))] * 2)]
        pruned, _ = enumerate_interleavings(seqs, prune=True)
        assert len(pruned) == 1  # all 6 interleavings are equivalent

    def test_pruning_keeps_a_representative_per_class(self):
        """Soundness: brute-force trace classes == pruned count for a
        mixed conflict structure."""
        seqs = [
            seq(0, [((), ("a",)), ((), ("shared",))]),
            seq(1, [((), ("shared",)), ((), ("b",))]),
        ]
        all_orderings, _ = enumerate_interleavings(seqs, prune=False)
        pruned, _ = enumerate_interleavings(seqs, prune=True)

        def canonical(ordering):
            # Normalize by bubbling adjacent independent pairs into request
            # order (Foata-style) to compute the trace class.
            steps = []
            positions = [0, 0]
            for req in ordering:
                steps.append(seqs[req][positions[req]])
                positions[req] += 1
            changed = True
            while changed:
                changed = False
                for i in range(len(steps) - 1):
                    a, b = steps[i], steps[i + 1]
                    if a.req_index > b.req_index and not a.conflicts_with(b):
                        steps[i], steps[i + 1] = b, a
                        changed = True
            return tuple((s.req_index, s.ordinal) for s in steps)

        classes = {canonical(o) for o in all_orderings}
        assert len(pruned) == len(classes)
        assert {canonical(o) for o in pruned} == classes

    def test_cap_truncates(self):
        seqs = [seq(0, [((), ("t",))] * 3), seq(1, [((), ("t",))] * 3)]
        orderings, truncated = enumerate_interleavings(seqs, prune=False, cap=5)
        assert truncated
        assert len(orderings) == 5

    def test_empty_input(self):
        orderings, truncated = enumerate_interleavings([])
        assert orderings == [[]]
        assert not truncated

    def test_single_request(self):
        seqs = [seq(0, [((), ("t",))] * 3)]
        orderings, _ = enumerate_interleavings(seqs)
        assert orderings == [[0, 0, 0]]

    def test_three_requests_all_conflicting(self):
        seqs = [seq(r, [((), ("t",))]) for r in range(3)]
        orderings, _ = enumerate_interleavings(seqs, prune=False)
        assert sorted(tuple(o) for o in orderings) == sorted(
            set(permutations([0, 1, 2]))
        )

    def test_generator_form_is_lazy(self):
        seqs = [seq(0, [((), ("t",))] * 4), seq(1, [((), ("t",))] * 4)]
        gen = iter_interleavings(seqs, prune=False)
        first = next(gen)
        assert len(first) == 8


class TestFootprintHelper:
    def test_steps_from_footprints(self):
        steps = steps_from_footprints(
            [
                [(frozenset({"a"}), frozenset()), (frozenset(), frozenset({"a"}))],
                [(frozenset({"b"}), frozenset())],
            ]
        )
        assert len(steps) == 2
        assert steps[0][1].writes == {"a"}
        assert steps[1][0].req_index == 1
