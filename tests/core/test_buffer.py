"""Trace buffer tests."""

import pytest

from repro.core.buffer import TraceBuffer


class TestAppend:
    def test_append_and_drain_fifo(self):
        buffer = TraceBuffer(capacity=10)
        for i in range(3):
            buffer.append(i)
        assert buffer.drain() == [0, 1, 2]
        assert len(buffer) == 0

    def test_append_signals_flush_at_capacity(self):
        buffer = TraceBuffer(capacity=2)
        assert buffer.append(1) is False
        assert buffer.append(2) is True  # reached capacity

    def test_extend(self):
        buffer = TraceBuffer(capacity=10)
        need = buffer.extend([1, 2, 3])
        assert need is False
        assert len(buffer) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


class TestDropOldest:
    def test_overflow_drops_oldest(self):
        buffer = TraceBuffer(capacity=3, drop_oldest=True)
        for i in range(5):
            buffer.append(i)
        assert buffer.drain() == [2, 3, 4]
        assert buffer.dropped == 2

    def test_without_drop_oldest_buffer_grows_past_capacity(self):
        buffer = TraceBuffer(capacity=2)
        for i in range(4):
            buffer.append(i)
        # Nothing dropped; caller is responsible for flushing.
        assert buffer.drain() == [0, 1, 2, 3]
        assert buffer.dropped == 0


class TestStats:
    def test_stats_track_counts(self):
        buffer = TraceBuffer(capacity=4)
        buffer.append("x")
        buffer.drain()
        buffer.append("y")
        stats = buffer.stats()
        assert stats["appended"] == 2
        assert stats["flushes"] == 1
        assert stats["buffered"] == 1
        assert stats["capacity"] == 4

    def test_peek_does_not_drain(self):
        buffer = TraceBuffer()
        buffer.append(1)
        assert buffer.peek() == [1]
        assert len(buffer) == 1

    def test_high_water(self):
        buffer = TraceBuffer(capacity=1)
        assert not buffer.high_water
        buffer.append(1)
        assert buffer.high_water
