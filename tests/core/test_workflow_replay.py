"""Replay and retroactive programming over RPC *workflows*.

The paper's application model is microservices: one request fans out
through RPCs into many handlers, each with its own transactions. Replay
must re-execute the whole workflow; these tests cover that path with the
e-commerce checkout chain (5 transactions across 5 handlers).
"""

import pytest

from repro.errors import NonDeterminismError
from repro.runtime import Request


@pytest.fixture
def shop_with_history(ecommerce_env):
    _db, runtime, trod = ecommerce_env
    runtime.submit("registerUser", "U1", "u1@x.com", "4111")  # R1
    runtime.submit("restock", "SKU1", 10)  # R2
    runtime.submit("addToCart", "C1", "U1", "SKU1", 2, 5.0)  # R3
    runtime.submit("checkout", "C1", "U1")  # R4: the workflow
    return ecommerce_env


class TestWorkflowReplay:
    def test_checkout_workflow_replays_faithfully(self, shop_with_history):
        _db, _runtime, trod = shop_with_history
        result = trod.replayer.replay_request("R4")
        assert result.fidelity, result.divergences
        assert len(result.steps) == 4  # validate/reserve/charge/order
        assert result.dev_db.table_rows("orders")[0]["status"] == "placed"
        assert result.dev_db.table_rows("inventory")[0]["stock"] == 8

    def test_workflow_step_labels_match_rpc_chain(self, shop_with_history):
        _db, _runtime, trod = shop_with_history
        result = trod.replayer.replay_request("R4")
        assert [s.label for s in result.steps] == [
            "validateCart", "reserveInventory", "chargePayment", "createOrder",
        ]

    def test_concurrent_checkout_replay_with_injection(self, ecommerce_env):
        """Two checkouts race on shared inventory; replaying one injects
        the other's reservation at the right boundary."""
        db, runtime, trod = ecommerce_env
        runtime.submit("registerUser", "U1", "u@x", "4111")
        runtime.submit("restock", "SKU1", 10)
        runtime.submit("addToCart", "C1", "U1", "SKU1", 3, 1.0)
        runtime.submit("addToCart", "C2", "U1", "SKU1", 4, 1.0)
        results = runtime.run_concurrent(
            [Request("checkout", ("C1", "U1")), Request("checkout", ("C2", "U1"))],
            schedule=[0, 1, 0, 1, 0, 1, 0, 1],  # interleave the workflows
        )
        assert all(r.ok for r in results)
        assert db.table_rows("inventory")[0]["stock"] == 3

        for result in results:
            replay = trod.replayer.replay_request(result.req_id)
            assert replay.fidelity, (result.req_id, replay.divergences)

    def test_retroactive_over_workflow(self, shop_with_history):
        """Patch the payment handler and re-run the checkout on history."""
        _db, _runtime, trod = shop_with_history

        def charge_with_surcharge(ctx, order_id, amount):
            payment_id = f"pay-{order_id}"
            with ctx.txn(label="chargePayment") as t:
                t.execute(
                    "INSERT INTO payments (paymentId, orderId, amount, status)"
                    " VALUES (?, ?, ?, 'charged')",
                    (payment_id, order_id, amount + 1.0),
                )
            return payment_id

        retro = trod.retroactive.run(
            ["R4"], patches={"chargePayment": charge_with_surcharge}
        )
        assert retro.all_ok
        payments = retro.outcomes[0].final_state["payments"]
        assert payments[0][2] == 11.0  # 10.0 + surcharge


class TestDeterminismVerifier:
    def test_deterministic_workflow_passes(self, shop_with_history):
        _db, _runtime, trod = shop_with_history
        assert trod.replayer.verify_determinism("R4", runs=3)

    def test_deterministic_rng_handler_passes(self, moodle_env):
        """ctx.rng is seeded per request, so 'random' handlers are fine."""
        db, runtime, trod = moodle_env

        def lottery(ctx):
            pick = ctx.rng.randrange(100)
            with ctx.txn(label="record") as t:
                t.execute(
                    "INSERT INTO forum_sub (userId, forum) VALUES (?, 'L')",
                    (f"U{pick}",),
                )
            return pick

        runtime.register("lottery", lottery)
        runtime.submit("lottery")
        assert trod.replayer.verify_determinism("R1")

    def test_nondeterministic_handler_detected(self, moodle_env):
        """A handler violating P3 (out-of-band mutable state) is caught."""
        db, runtime, trod = moodle_env
        counter = {"n": 0}

        def sneaky(ctx):
            counter["n"] += 1  # state outside the database!
            with ctx.txn(label="record") as t:
                t.execute(
                    "INSERT INTO forum_sub (userId, forum) VALUES (?, 'X')",
                    (f"U{counter['n']}",),
                )
            return counter["n"]

        runtime.register("sneaky", sneaky)
        runtime.submit("sneaky")
        with pytest.raises(NonDeterminismError):
            trod.replayer.verify_determinism("R1", runs=3)
