"""Security pattern checking and exfiltration tracking tests (§4.2)."""

import pytest


@pytest.fixture
def attacked_profiles(profiles_env):
    """Profiles app after legitimate use plus two violations."""
    _db, runtime, trod = profiles_env
    runtime.submit("createProfile", "alice", "a@x.com", auth_user="alice")  # R1
    runtime.submit("createProfile", "bob", "b@x.com", auth_user="bob")  # R2
    runtime.submit("updateProfile", "alice", "hi!", auth_user="alice")  # R3 ok
    runtime.submit(
        "updateProfileInsecure", "alice", "pwned", auth_user="mallory"
    )  # R4: violation
    runtime.submit("sendMessage", "M1", "alice", "secret", auth_user="bob")  # R5
    runtime.submit("readMessages", "alice")  # R6: unauthenticated read
    runtime.submit("readMessagesSecure", "alice", auth_user="alice")  # R7 ok
    return profiles_env


class TestUserProfilesPattern:
    def test_paper_query_finds_the_insecure_update(self, attacked_profiles):
        _db, _runtime, trod = attacked_profiles
        violations = trod.security.user_profiles("profiles")
        assert len(violations) == 1
        violation = violations[0]
        assert violation.req_id == "R4"
        assert violation.handler == "updateProfileInsecure"
        assert violation.pattern == "user-profiles"

    def test_verbatim_paper_sql(self, attacked_profiles):
        """The exact §4.2 query text."""
        _db, _runtime, trod = attacked_profiles
        rs = trod.query(
            "SELECT Timestamp, ReqId, HandlerName\n"
            "FROM Executions as E, ProfileEvents as P\n"
            "ON E.TxnId = P.TxnId\n"
            "WHERE P.UserName != P.UpdatedBy AND P.Type = 'Update'"
        )
        assert rs.column("ReqId") == ["R4"]

    def test_secure_updates_not_flagged(self, profiles_env):
        _db, runtime, trod = profiles_env
        runtime.submit("createProfile", "carol", "c@x", auth_user="carol")
        runtime.submit("updateProfile", "carol", "bio", auth_user="carol")
        assert trod.security.user_profiles("profiles") == []

    def test_rejected_insecure_attempt_leaves_no_update_event(self, profiles_env):
        _db, runtime, trod = profiles_env
        runtime.submit("createProfile", "dave", "d@x", auth_user="dave")
        result = runtime.submit("updateProfile", "dave", "x", auth_user="eve")
        assert not result.ok  # secure handler rejected it
        assert trod.security.user_profiles("profiles") == []


class TestAuthenticationPattern:
    def test_unauthenticated_read_flagged(self, attacked_profiles):
        _db, _runtime, trod = attacked_profiles
        violations = trod.security.authentication("messages")
        assert [v.req_id for v in violations] == ["R6"]
        assert violations[0].handler == "readMessages"

    def test_authenticated_reads_not_flagged(self, attacked_profiles):
        _db, _runtime, trod = attacked_profiles
        flagged = {v.req_id for v in trod.security.authentication("messages")}
        assert "R7" not in flagged

    def test_custom_pattern_registration(self, attacked_profiles):
        _db, _runtime, trod = attacked_profiles
        trod.security.register_pattern(
            "bulk-writers",
            "SELECT ReqId, HandlerName, COUNT(*) AS n FROM Executions"
            " WHERE Status = 'Committed' GROUP BY ReqId, HandlerName"
            " HAVING COUNT(*) > 0",
        )
        results = trod.security.run_all()
        assert "bulk-writers" in results
        assert results["bulk-writers"]


class TestExfiltration:
    @pytest.fixture
    def attacked_shop(self, ecommerce_env):
        _db, runtime, trod = ecommerce_env
        runtime.submit("registerUser", "U1", "u1@x.com", "4111-1111")  # R1
        runtime.submit("registerUser", "U2", "u2@x.com", "4222-2222")  # R2
        runtime.submit("weeklyReport")  # R3: benign email
        runtime.submit("harvestData", "ex1")  # R4: reads users -> staging
        runtime.submit("exportReport", "ex1")  # R5: staging -> export channel
        return ecommerce_env

    def test_two_hop_flow_detected(self, attacked_shop):
        _db, _runtime, trod = attacked_shop
        flows = trod.taint.find_flows(["users"])
        assert len(flows) == 1
        flow = flows[0]
        assert flow.req_id == "R5"
        assert flow.handler == "exportReport"
        assert flow.sources == ["staging"]  # tainted via lateral movement
        assert flow.hops == 2
        assert flow.sinks[0]["Channel"] == "export"

    def test_benign_report_not_flagged(self, attacked_shop):
        _db, _runtime, trod = attacked_shop
        flows = trod.taint.find_flows(["users"])
        assert all(f.req_id != "R3" for f in flows)

    def test_taint_state_fixpoint(self, attacked_shop):
        _db, _runtime, trod = attacked_shop
        state = trod.taint.compute_taint(["users"])
        assert "staging" in state.tainted_tables
        assert state.tainted_requests["R4"] == 1  # read users directly
        assert state.tainted_requests["R5"] == 2  # read tainted staging

    def test_track_request_forensics(self, attacked_shop):
        _db, _runtime, trod = attacked_shop
        record = trod.taint.track_request("R4")
        assert record["tables_read"] == ["users"]
        assert record["tables_written"] == ["staging"]
        assert record["workflow"] == ["harvestData"]

    def test_workflow_chain_includes_rpc_callees(self, ecommerce_env):
        _db, runtime, trod = ecommerce_env
        runtime.submit("registerUser", "U1", "u@x", "4111")
        runtime.submit("addToCart", "C1", "U1", "S1", 1, 3.0)
        runtime.submit("restock", "S1", 5)
        runtime.submit("checkout", "C1", "U1")
        trod.flush()
        chain = trod.taint.workflow_chain("R4")
        assert chain == [
            "checkout", "validateCart", "reserveInventory",
            "chargePayment", "createOrder",
        ]

    def test_sensitive_read_without_sink_is_not_a_flow(self, ecommerce_env):
        _db, runtime, trod = ecommerce_env
        runtime.submit("registerUser", "U1", "u@x", "4111")
        runtime.submit("harvestData", "h")  # stages but never exports
        assert trod.taint.find_flows(["users"]) == []
