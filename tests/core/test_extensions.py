"""Tests for the §5 extensions: profiling, data quality, privacy."""

import pytest

from repro.core.privacy import REDACTED
from repro.workload.generators import ForumWorkload


class TestPerformanceProfiler:
    def test_request_latencies_recorded(self, moodle_env):
        _db, runtime, trod = moodle_env
        profiler = trod.enable_profiling()
        for i in range(5):
            runtime.submit("subscribeUser", f"U{i}", "F1")
        slowest = profiler.slowest_requests(3)
        assert len(slowest) == 3
        assert all(row["DurationUs"] > 0 for row in slowest)
        assert slowest[0]["DurationUs"] >= slowest[-1]["DurationUs"]

    def test_handler_stats_grouped(self, moodle_env):
        _db, runtime, trod = moodle_env
        profiler = trod.enable_profiling()
        runtime.submit("subscribeUser", "U1", "F1")
        runtime.submit("fetchSubscribers", "F1")
        stats = {row["HandlerName"]: row for row in profiler.handler_stats()}
        assert set(stats) == {"subscribeUser", "fetchSubscribers"}
        assert stats["subscribeUser"]["n"] == 1

    def test_txn_label_stats(self, moodle_env):
        _db, runtime, trod = moodle_env
        profiler = trod.enable_profiling()
        runtime.submit("subscribeUser", "U1", "F1")
        labels = {row["Label"] for row in profiler.txn_label_stats()}
        assert {"isSubscribed", "DB.insert"} <= labels

    def test_rpc_handler_spans(self, ecommerce_env):
        _db, runtime, trod = ecommerce_env
        profiler = trod.enable_profiling()
        runtime.submit("registerUser", "U1", "u@x", "4111")
        runtime.submit("restock", "S1", 5)
        runtime.submit("addToCart", "C1", "U1", "S1", 1, 2.0)
        runtime.submit("checkout", "C1", "U1")
        breakdown = profiler.request_breakdown("R4")
        kinds = {row["Kind"] for row in breakdown}
        assert kinds == {"request", "handler", "txn"}
        handlers = {
            row["HandlerName"] for row in breakdown if row["Kind"] == "handler"
        }
        assert "chargePayment" in handlers

    def test_profiler_is_optional_and_detachable(self, moodle_env):
        _db, runtime, trod = moodle_env
        profiler = trod.enable_profiling()
        runtime.submit("subscribeUser", "U1", "F1")
        profiler.detach()
        runtime.submit("subscribeUser", "U2", "F1")
        stats = profiler.handler_stats()
        assert sum(row["n"] for row in stats) == 1  # second request unmeasured

    def test_profiling_before_attach_rejected(self):
        from repro.core import Trod
        from repro.db import Database

        trod = Trod(Database())
        with pytest.raises(RuntimeError):
            trod.enable_profiling()


class TestDataQuality:
    def test_unique_check_finds_first_degrading_request(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        trod.quality.add_unique_check(
            "one-sub-per-user-forum", "forum_sub", ["userId", "forum"]
        )
        violation = trod.quality.first_degradation("one-sub-per-user-forum")
        assert violation is not None
        # The SECOND insert (R1's, committed at csn 2 of the pair) is the
        # degrading write; its request is identified.
        assert violation.req_id == "R1"
        assert violation.handler == "subscribeUser"
        assert "appears 2 times" in violation.detail

    def test_unique_check_clean_history(self, moodle_env):
        _db, runtime, trod = moodle_env
        runtime.submit("subscribeUser", "U1", "F1")
        runtime.submit("subscribeUser", "U2", "F1")
        trod.quality.add_unique_check("uq", "forum_sub", ["userId", "forum"])
        assert trod.quality.first_degradation("uq") is None

    def test_row_check(self, moodle_env):
        _db, runtime, trod = moodle_env
        runtime.submit("subscribeUser", "U1", "F1")
        runtime.submit("subscribeUser", "BAD USER", "F1")
        trod.quality.add_row_check(
            "no-spaces", "forum_sub", lambda row: " " not in row["userId"]
        )
        violation = trod.quality.first_degradation("no-spaces")
        assert violation is not None
        assert violation.req_id == "R2"

    def test_delete_heals_unique_violation_history(self, racy_moodle):
        """A later unsubscribe removes the duplicate, but the scan still
        finds the original degradation point."""
        _db, runtime, trod = racy_moodle
        runtime.submit("unsubscribeUser", "U1", "F2")
        trod.quality.add_unique_check("uq", "forum_sub", ["userId", "forum"])
        violation = trod.quality.first_degradation("uq")
        assert violation is not None  # history still shows the degradation
        current = trod.quality.validate_current_state()
        assert current["uq"] == []  # but the current state is clean

    def test_scan_runs_all_checks(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        trod.quality.add_unique_check("uq", "forum_sub", ["userId", "forum"])
        trod.quality.add_row_check(
            "user-prefix", "forum_sub", lambda row: row["userId"].startswith("U")
        )
        violations = trod.quality.scan()
        assert [v.check for v in violations] == ["uq"]

    def test_upto_csn_bounds_the_scan(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        trod.quality.add_unique_check("uq", "forum_sub", ["userId", "forum"])
        violation = trod.quality.first_degradation("uq")
        before = trod.quality.first_degradation("uq", upto_csn=violation.csn - 1)
        assert before is None


class TestPrivacy:
    def test_forget_value_redacts_events_but_keeps_metadata(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        report = trod.privacy.forget_value("forum_sub", "userId", "U1")
        assert report.events_redacted >= 2  # both inserts at minimum
        rows = trod.query(
            "SELECT Type, Query, UserId FROM ForumEvents WHERE Query = ?",
            (REDACTED,),
        ).as_dicts()
        assert rows
        assert all(r["UserId"] is None for r in rows)
        # Metadata survives: the execution log still shows who ran what.
        count = trod.query(
            "SELECT COUNT(*) FROM Executions WHERE HandlerName = 'subscribeUser'"
        ).scalar()
        assert count == 4

    def test_request_args_scrubbed(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        report = trod.privacy.forget_value("forum_sub", "userId", "U1")
        assert report.requests_scrubbed == 2
        handler, args, _kwargs, _auth = trod.provenance.request_args("R1")
        assert args == (REDACTED, "F2")

    def test_audit_log_has_no_sensitive_values(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        trod.privacy.forget_value("forum_sub", "userId", "U1")
        log = trod.privacy.audit_log()
        assert len(log) == 1
        assert "U1" not in str(log)  # the value itself is never stored
        assert log[0]["EventsRedacted"] >= 2

    def test_reconstruction_from_partial_data(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        trod.privacy.forget_value("forum_sub", "userId", "U1")
        rows = trod.provenance.reconstruct_rows("forum_sub", upto_csn=1 << 60)
        assert rows == []  # the erased rows are simply absent

    def test_replay_degrades_gracefully_after_redaction(self, racy_moodle):
        """§5: 'support debugging from partial data' — replay of a request
        whose dependencies were erased reports divergence, not a crash."""
        _db, _runtime, trod = racy_moodle
        trod.privacy.forget_value("forum_sub", "userId", "U1")
        result = trod.replayer.replay_request("R1")
        assert not result.fidelity  # the injected write is gone
        assert result.error is None or isinstance(result.error, str)

    def test_redacted_count(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        assert trod.privacy.redacted_event_count("forum_sub") == 0
        trod.privacy.forget_value("forum_sub", "userId", "U1")
        assert trod.privacy.redacted_event_count("forum_sub") >= 2

    def test_untraced_table_rejected(self, racy_moodle):
        from repro.errors import ProvenanceError

        _db, _runtime, trod = racy_moodle
        with pytest.raises(ProvenanceError):
            trod.privacy.forget_value("nonexistent", "x", "v")
