"""Retroactive programming tests (§3.6, Figure 3 bottom)."""

import pytest

from repro.apps.moodle import subscribe_user_fixed
from repro.errors import RetroactiveError


class TestPaperScenario:
    def test_fix_validated_over_both_orderings(self, racy_moodle):
        """Figure 3 bottom: patched subscribeUser over R1, R2 with R3'
        after — no ordering errors, no duplicates."""
        _db, _runtime, trod = racy_moodle
        result = trod.retroactive.run(
            ["R1", "R2"],
            patches={"subscribeUser": subscribe_user_fixed},
            followups=["R3"],
        )
        assert result.explored == 2  # R1' first and R2' first
        assert result.all_ok
        assert result.states_agree()
        for outcome in result.outcomes:
            assert outcome.final_state["forum_sub"] == [("U1", "F2")]
            followup = outcome.followups[0]
            assert followup.ok
            assert followup.output_repr == "['U1']"
            # Originally R3 errored; now it succeeds — behaviour changed.
            assert followup.changed

    def test_unpatched_code_still_fails_under_racy_ordering(self, racy_moodle):
        """Running the ORIGINAL buggy code retroactively shows at least
        one ordering reproducing the duplicate."""
        _db, _runtime, trod = racy_moodle
        result = trod.retroactive.run(["R1", "R2"], followups=["R3"])
        assert not result.all_ok
        bad = [o for o in result.outcomes if not o.ok]
        assert bad
        for outcome in bad:
            assert outcome.final_state["forum_sub"] == [
                ("U1", "F2"), ("U1", "F2"),
            ]

    def test_ordering_space_accounting(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        result = trod.retroactive.run(
            ["R1", "R2"], patches={"subscribeUser": subscribe_user_fixed}
        )
        # Patched handler has 1 txn per request -> 2 naive interleavings.
        assert result.naive_orderings == 2
        assert result.explored == 2
        assert not result.truncated

    def test_summary_renders(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        result = trod.retroactive.run(
            ["R1", "R2"], patches={"subscribeUser": subscribe_user_fixed}
        )
        text = result.summary()
        assert "naive=2" in text and "explored=2" in text


class TestEngineMechanics:
    def test_empty_request_list_rejected(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        with pytest.raises(RetroactiveError):
            trod.retroactive.run([])

    def test_unknown_orderings_mode_rejected(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        with pytest.raises(RetroactiveError):
            trod.retroactive.run(["R1"], orderings="bogus")

    def test_explicit_orderings_respected(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        result = trod.retroactive.run(
            ["R1", "R2"],
            orderings=[[0, 1, 1, 0]],  # replay exactly the racy schedule
        )
        assert result.explored == 1
        outcome = result.outcomes[0]
        assert outcome.final_state["forum_sub"] == [("U1", "F2"), ("U1", "F2")]

    def test_max_orderings_cap(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        result = trod.retroactive.run(
            ["R1", "R2"], orderings="all", max_orderings=1
        )
        assert result.explored == 1
        assert result.truncated

    def test_invariant_checker_runs_per_ordering(self, racy_moodle):
        _db, _runtime, trod = racy_moodle

        def no_duplicates(dev_db):
            rows = dev_db.execute(
                "SELECT userId, forum, COUNT(*) FROM forum_sub"
                " GROUP BY userId, forum HAVING COUNT(*) > 1"
            ).rows
            return [f"duplicate {r[:2]}" for r in rows]

        result = trod.retroactive.run(
            ["R1", "R2"], invariant=no_duplicates
        )
        violating = [o for o in result.outcomes if o.invariant_violations]
        assert violating  # the buggy code violates under some ordering
        fixed = trod.retroactive.run(
            ["R1", "R2"],
            patches={"subscribeUser": subscribe_user_fixed},
            invariant=no_duplicates,
        )
        assert fixed.all_ok

    def test_retroactive_leaves_production_untouched(self, racy_moodle):
        database, _runtime, trod = racy_moodle
        before = database.table_rows("forum_sub")
        trod.retroactive.run(
            ["R1", "R2"], patches={"subscribeUser": subscribe_user_fixed}
        )
        assert database.table_rows("forum_sub") == before

    def test_original_outcomes_available_for_comparison(self, racy_moodle):
        _db, _runtime, trod = racy_moodle
        result = trod.retroactive.run(
            ["R1", "R2"], patches={"subscribeUser": subscribe_user_fixed}
        )
        outcome = result.outcomes[0].requests[0]
        assert outcome.original_output == "True"
        assert outcome.output_repr == "True"
        assert not outcome.changed


class TestRegressionScenario:
    def test_mdl_60669_regression_found_by_wider_retroactive_test(self, moodle_env):
        """§4.1: the MDL-59854 patch regressed course restore. Testing the
        patch only on the subscription requests passes; widening the
        retroactive test to requests touching the same table (the paper's
        advice) catches the restore failure before production."""
        _db, runtime, trod = moodle_env
        from repro.runtime import Request
        from repro.workload.generators import ForumWorkload

        runtime.submit("createCourse", "C1", "Intro", ["F2"])
        runtime.run_concurrent(
            ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
        )  # R2, R3 (R1 was createCourse)
        runtime.submit("deleteCourse", "C1")  # R4
        runtime.submit("restoreCourse", "C1")  # R5: fails in production!
        trod.flush()
        assert trod.provenance.request_row("R5")["Status"] == "Error"

        # Narrow retroactive test (subscriptions only): everything passes.
        narrow = trod.retroactive.run(
            ["R2", "R3"], patches={"subscribeUser": subscribe_user_fixed}
        )
        assert narrow.all_ok

        # Wide test including the restore request over the same table:
        # the pre-existing duplicates still break restoreCourse.
        wide = trod.retroactive.run(
            ["R2", "R3"],
            patches={"subscribeUser": subscribe_user_fixed},
            orderings=[[0, 1]],
            followups=["R4", "R5"],
        )
        assert wide.all_ok  # fixed code prevents NEW duplicates...

        # ...but replaying the patch against the ORIGINAL duplicated state
        # (restore runs after the original buggy requests) shows the crash.
        original_state = trod.retroactive.run(
            ["R2", "R3"],  # unpatched originals recreate the duplicates
            orderings=[[0, 1, 1, 0]],
            followups=["R4", "R5"],
        )
        assert not original_state.all_ok
        restore_outcome = original_state.outcomes[0].followups[-1]
        assert restore_outcome.error is not None
        assert "duplicate" in restore_outcome.error
