"""Provenance corner cases: name collisions, kwargs, self-containment."""

import pytest

from repro.core import Trod
from repro.db import Database
from repro.runtime import Runtime


class TestColumnCollisions:
    """App tables whose columns collide with event-table metadata."""

    @pytest.fixture
    def colliding_env(self):
        db = Database()
        # 'Type' and 'Query' collide with event metadata columns.
        db.execute(
            "CREATE TABLE audit (Type TEXT, Query TEXT, detail TEXT)"
        )
        runtime = Runtime(db)

        def log_audit(ctx, kind, query, detail):
            with ctx.txn(label="log") as t:
                t.execute(
                    "INSERT INTO audit (Type, Query, detail) VALUES (?, ?, ?)",
                    (kind, query, detail),
                )

        runtime.register("logAudit", log_audit)
        trod = Trod(db).attach(runtime)
        return db, runtime, trod

    def test_collision_columns_renamed_in_event_table(self, colliding_env):
        _db, runtime, trod = colliding_env
        runtime.submit("logAudit", "login", "who?", "ok")
        rows = trod.query(
            "SELECT Type, Type_, Query_, detail FROM AuditEvents"
            " WHERE Type = 'Insert'"
        ).as_dicts()
        assert rows == [
            {"Type": "Insert", "Type_": "login", "Query_": "who?", "detail": "ok"}
        ]

    def test_collision_replay_roundtrip(self, colliding_env):
        _db, runtime, trod = colliding_env
        runtime.submit("logAudit", "login", "who?", "ok")
        result = trod.replayer.replay_request("R1")
        assert result.fidelity, result.divergences
        assert result.dev_db.table_rows("audit") == [
            {"Type": "login", "Query": "who?", "detail": "ok"}
        ]


class TestKwargsAndAuth:
    def test_kwargs_traced_and_reexecuted(self, moodle_env):
        _db, runtime, trod = moodle_env

        def flexible(ctx, user, forum="F-default"):
            with ctx.txn(label="ins") as t:
                t.execute(
                    "INSERT INTO forum_sub (userId, forum) VALUES (?, ?)",
                    (user, forum),
                )
            return forum

        runtime.register("flexible", flexible)
        runtime.submit("flexible", "U1", forum="F9")
        trod.flush()
        handler, args, kwargs, _auth = trod.provenance.request_args("R1")
        assert args == ("U1",)
        assert kwargs == {"forum": "F9"}
        # Retroactive re-execution uses the kwargs.
        retro = trod.retroactive.run(["R1"])
        assert retro.outcomes[0].final_state["forum_sub"] == [("U1", "F9")]

    def test_auth_user_lands_in_executions(self, profiles_env):
        _db, runtime, trod = profiles_env
        runtime.submit("createProfile", "alice", "a@x", auth_user="alice")
        users = trod.query(
            "SELECT DISTINCT AuthUser FROM Executions"
            " WHERE Status = 'Committed'"
        ).column("AuthUser")
        assert users == ["alice"]


class TestSelfContainment:
    def test_replay_survives_production_vacuum(self, racy_moodle):
        """§3.5's model: the dev environment needs only provenance. Even
        after the production store garbage-collects all history, replay
        still reconstructs the snapshot and reproduces the bug."""
        from repro.errors import TimeTravelError

        db, _runtime, trod = racy_moodle
        trod.flush()
        db.vacuum(keep_after_csn=db.last_csn)
        # Production time travel to the pre-bug state is now impossible...
        with pytest.raises(TimeTravelError):
            db.time_travel.rows_as_of("forum_sub", 0)
        # ...but replay never needed it: provenance is self-contained.
        result = trod.replayer.replay_request("R1")
        assert result.fidelity, result.divergences
        assert len(result.dev_db.table_rows("forum_sub")) == 2

    def test_retroactive_survives_production_vacuum(self, racy_moodle):
        from repro.apps.moodle import subscribe_user_fixed

        db, _runtime, trod = racy_moodle
        trod.flush()
        db.vacuum(keep_after_csn=db.last_csn)
        retro = trod.retroactive.run(
            ["R1", "R2"], patches={"subscribeUser": subscribe_user_fixed}
        )
        assert retro.all_ok

    def test_provenance_restore_matches_timetravel_restore(self, racy_moodle):
        """Two independent reconstruction paths must agree: the version
        store's time travel and the provenance roll-forward."""
        db, _runtime, trod = racy_moodle
        trod.flush()
        for csn in range(trod.base_csn, db.last_csn + 1):
            via_store = {
                rid: values for rid, values in db.store("forum_sub").scan(csn)
            }
            via_prov = dict(trod.provenance.reconstruct_rows("forum_sub", csn))
            assert via_store == via_prov, f"divergence at csn {csn}"


class TestNestedWorkflows:
    def test_three_level_rpc_edges(self, moodle_env):
        _db, runtime, trod = moodle_env

        def top(ctx):
            return ctx.call("middle")

        def middle(ctx):
            return ctx.call("leaf")

        def leaf(ctx):
            with ctx.txn(label="leafWork") as t:
                t.execute(
                    "INSERT INTO forum_sub (userId, forum) VALUES ('U', 'F')"
                )
            return "done"

        runtime.register("top", top)
        runtime.register("middle", middle)
        runtime.register("leaf", leaf)
        result = runtime.submit("top")
        assert result.output == "done"
        edges = trod.debugger.workflow(result.req_id)
        assert [(e["Caller"], e["Callee"]) for e in edges] == [
            ("top", "middle"), ("middle", "leaf"),
        ]
        # The leaf's transaction is attributed to the leaf handler but
        # the request id is the root's.
        rows = trod.query(
            "SELECT HandlerName, ReqId FROM Executions"
            " WHERE Status = 'Committed' AND Metadata = 'func:leafWork'"
        ).rows
        assert rows == [("leaf", result.req_id)]

    def test_nested_workflow_replays(self, moodle_env):
        _db, runtime, trod = moodle_env

        def top(ctx, n):
            total = 0
            for i in range(n):
                total += ctx.call("worker", i)
            return total

        def worker(ctx, i):
            with ctx.txn(label=f"w{i}") as t:
                t.execute(
                    "INSERT INTO forum_sub (userId, forum) VALUES (?, 'W')",
                    (f"U{i}",),
                )
            return i

        runtime.register("top", top)
        runtime.register("worker", worker)
        runtime.submit("top", 3)
        result = trod.replayer.replay_request("R1")
        assert result.fidelity, result.divergences
        assert result.output == 3
        assert len(result.dev_db.table_rows("forum_sub")) == 3


class TestAbortedTransactions:
    def test_aborted_txns_interleave_correctly_in_executions(self, moodle_env):
        _db, runtime, trod = moodle_env

        def flaky(ctx, should_fail):
            with ctx.txn(label="attempt") as t:
                t.execute(
                    "INSERT INTO forum_sub (userId, forum) VALUES ('U', 'F')"
                )
                if should_fail:
                    raise ValueError("rollback!")
            return True

        runtime.register("flaky", flaky)
        runtime.submit("flaky", False)
        runtime.submit("flaky", True)
        runtime.submit("flaky", False)
        statuses = trod.query(
            "SELECT Status FROM Executions ORDER BY TxnNum"
        ).column("Status")
        assert statuses == ["Committed", "Aborted", "Committed"]
        # Aborted work contributed no write events.
        inserts = trod.query(
            "SELECT COUNT(*) FROM ForumSubEvents WHERE Type = 'Insert'"
        ).scalar() if False else trod.query(
            "SELECT COUNT(*) FROM ForumEvents WHERE Type = 'Insert'"
        ).scalar()
        assert inserts == 2
