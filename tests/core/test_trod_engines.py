"""TROD interposition on every engine (the ROADMAP's facade gap).

The debugger attaches to a sharded facade or a replicated cluster with
the same ``Trod(engine).attach()`` + ``repro.connect(engine, trod=...)``
it uses on a single database, and the debugger-visible event stream —
reads, writes, transaction outcomes in the provenance store — has the
same shape.
"""

from repro.core import Trod
from repro.db import Database, ReplicatedDatabase, ShardedDatabase, connect


def drive(conn) -> None:
    """The statement stream every engine runs identically."""
    conn.execute("CREATE TABLE acct (id INTEGER, bal INTEGER)")
    for i in range(4):
        conn.execute("INSERT INTO acct VALUES (?, ?)", (i, 100))
    with conn.transaction(label="transfer") as txn:
        txn.execute("UPDATE acct SET bal = bal - 30 WHERE id = 0")
        txn.execute("UPDATE acct SET bal = bal + 30 WHERE id = 3")
    conn.execute("SELECT bal FROM acct WHERE id = 0")
    conn.execute("DELETE FROM acct WHERE id = 2")


def write_events(trod: Trod) -> list[tuple]:
    """(kind, id-column, bal-column) of every write event, sorted."""
    trod.flush()
    result = trod.query(
        "SELECT Type, Id, Bal FROM AcctEvents "
        "WHERE Type != 'Read' AND Type != 'Snapshot'"
    )
    return sorted(result.rows)


def read_events(trod: Trod) -> list[tuple]:
    trod.flush()
    return sorted(
        trod.query(
            "SELECT Id, Bal FROM AcctEvents WHERE Type = 'Read'"
        ).rows
    )


def run_engine(engine) -> Trod:
    trod = Trod(engine)
    conn = connect(engine, trod=trod)
    drive(conn)
    return trod


class TestEventStreamParity:
    def test_sharded_facade_matches_single_node(self):
        single = run_engine(Database())
        sharded = run_engine(ShardedDatabase(3, shard_keys={"acct": "id"}))
        assert write_events(sharded) == write_events(single)
        assert read_events(sharded) == read_events(single)

    def test_single_shard_facade_matches_exactly(self):
        # With one shard there is no id-space caveat at all: the whole
        # event stream (incl. unsorted order of writes) must line up.
        single = run_engine(Database())
        facade = run_engine(ShardedDatabase(1, shard_keys={"acct": "id"}))
        assert write_events(facade) == write_events(single)

    def test_replicated_engine_matches_single_node(self):
        single = run_engine(Database())
        replicated = run_engine(ReplicatedDatabase(n_replicas=2))
        assert write_events(replicated) == write_events(single)

    def test_txn_outcomes_are_visible_on_the_sharded_facade(self):
        trod = run_engine(ShardedDatabase(2, shard_keys={"acct": "id"}))
        statuses = set(
            trod.query("SELECT DISTINCT Status FROM Executions").column(
                "Status"
            )
        )
        # Commits from the writes; aborts from the CSN-free read path.
        assert "Committed" in statuses

    def test_attach_registers_every_shard(self):
        sharded = ShardedDatabase(3, shard_keys={"acct": "id"})
        trod = Trod(sharded)
        trod.attach()
        assert all(
            trod.interposition in shard.observers for shard in sharded.shards
        )
        assert sharded.track_reads
        trod.detach()
        assert not any(
            trod.interposition in shard.observers for shard in sharded.shards
        )
        assert not sharded.track_reads

    def test_attach_to_populated_multi_shard_engine_is_rejected(self):
        # Pre-attach rows would snapshot under the global CSN space while
        # per-shard commit events carry local CSNs; refuse rather than
        # record a silently inconsistent provenance baseline.
        import pytest

        from repro.errors import TrodError

        sharded = ShardedDatabase(2, shard_keys={"acct": "id"})
        sharded.execute("CREATE TABLE acct (id INTEGER, bal INTEGER)")
        sharded.execute("INSERT INTO acct VALUES (1, 100)")
        with pytest.raises(TrodError, match="before loading"):
            Trod(sharded).attach()

    def test_attach_to_empty_multi_shard_engine_is_fine(self):
        sharded = ShardedDatabase(2, shard_keys={"acct": "id"})
        sharded.execute("CREATE TABLE acct (id INTEGER, bal INTEGER)")
        trod = Trod(sharded)
        assert trod.attach() is trod

    def test_standalone_attach_without_runtime(self):
        db = Database()
        trod = Trod(db)
        assert trod.attach() is trod
        assert trod.attached and trod.runtime is None
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        trod.flush()
        assert (
            trod.query(
                "SELECT COUNT(*) FROM TEvents WHERE Type = 'Insert'"
            ).scalar()
            == 1
        )
