"""MediaWiki app behaviour: MW-44325 and MW-39225 reproduce on schedule."""

import pytest

from repro.runtime import Request

RACY_EDITS = [
    Request("editPage", ("P1", "hello world", "http://x.org")),
    Request("editPage", ("P1", "hello!", "http://x.org")),
]
#: Interleave the two 3-txn edits: both read before either writes.
RACY_SCHEDULE = [0, 1, 0, 1, 0, 1]
SERIAL_SCHEDULE = [0, 0, 0, 1, 1, 1]


@pytest.fixture
def with_page(mediawiki_env):
    _db, runtime, _trod = mediawiki_env
    runtime.submit("createPage", "P1", "Title", "hello")  # size 5
    return mediawiki_env


class TestEditPage:
    def test_serial_edits_are_consistent(self, with_page):
        _db, runtime, _trod = with_page
        runtime.run_concurrent(
            [
                Request("editPage", ("P1", "hello world", "http://x.org")),
                Request("editPage", ("P1", "hello!", "http://x.org")),
            ],
            schedule=SERIAL_SCHEDULE,
        )
        assert runtime.submit("fetchSiteLinks", "P1").output == ["http://x.org"]
        assert runtime.submit("checkSizeConsistency", "P1", 5).ok

    def test_racy_edits_create_duplicate_sitelinks(self, with_page):
        """MW-44325."""
        _db, runtime, _trod = with_page
        runtime.run_concurrent(
            [
                Request("editPage", ("P1", "hello world", "http://x.org")),
                Request("editPage", ("P1", "hello!", "http://x.org")),
            ],
            schedule=RACY_SCHEDULE,
        )
        result = runtime.submit("fetchSiteLinks", "P1")
        assert not result.ok
        assert "duplicate site links" in result.error

    def test_racy_edits_corrupt_size_history(self, with_page):
        """MW-39225."""
        _db, runtime, _trod = with_page
        runtime.run_concurrent(
            [
                Request("editPage", ("P1", "hello world", None)),
                Request("editPage", ("P1", "hello!", None)),
            ],
            schedule=RACY_SCHEDULE,
        )
        result = runtime.submit("checkSizeConsistency", "P1", 5)
        assert not result.ok
        assert "inconsistent size history" in result.error

    def test_fixed_editor_is_safe_under_any_schedule(self, with_page):
        _db, runtime, _trod = with_page
        runtime.run_concurrent(
            [
                Request("editPageFixed", ("P1", "hello world", "http://x.org")),
                Request("editPageFixed", ("P1", "hello!", "http://x.org")),
            ],
            schedule=[0, 1],
        )
        assert runtime.submit("fetchSiteLinks", "P1").output == ["http://x.org"]
        assert runtime.submit("checkSizeConsistency", "P1", 5).ok

    def test_edit_missing_page_fails(self, mediawiki_env):
        _db, runtime, _trod = mediawiki_env
        result = runtime.submit("editPage", "ghost", "content", None)
        assert not result.ok

    def test_page_history_revision_numbers(self, with_page):
        _db, runtime, _trod = with_page
        runtime.submit("editPage", "P1", "v2 content", None)
        runtime.submit("editPage", "P1", "v3 content!", None)
        history = runtime.submit("pageHistory", "P1").output
        assert [h["revId"] for h in history] == [1, 2]
        assert history[0]["newSize"] == len("v2 content")

    def test_size_deltas_correct_when_serial(self, with_page):
        _db, runtime, _trod = with_page
        runtime.submit("editPage", "P1", "1234567890", None)  # 5 -> 10
        history = runtime.submit("pageHistory", "P1").output
        assert history[0]["sizeDelta"] == 5


class TestDebuggingTheRace:
    def test_trod_locates_duplicate_link_writers(self, with_page):
        _db, runtime, trod = with_page
        runtime.run_concurrent(
            [
                Request("editPage", ("P1", "hello world", "http://x.org")),
                Request("editPage", ("P1", "hello!", "http://x.org")),
            ],
            schedule=RACY_SCHEDULE,
        )
        dupes = trod.debugger.duplicate_inserts("site_links", ["PageId", "Url"])
        assert len(dupes) == 1
        writers = {w["ReqId"] for w in dupes[0]["writers"]}
        assert writers == {"R2", "R3"}

    def test_replay_of_racy_edit_is_faithful(self, with_page):
        _db, runtime, trod = with_page
        runtime.run_concurrent(
            [
                Request("editPage", ("P1", "hello world", "http://x.org")),
                Request("editPage", ("P1", "hello!", "http://x.org")),
            ],
            schedule=RACY_SCHEDULE,
        )
        result = trod.replayer.replay_request("R2")
        assert result.fidelity, result.divergences

    def test_retroactive_fix_validation(self, with_page):
        from repro.apps.mediawiki import edit_page_fixed

        _db, runtime, trod = with_page
        runtime.run_concurrent(
            [
                Request("editPage", ("P1", "hello world", "http://x.org")),
                Request("editPage", ("P1", "hello!", "http://x.org")),
            ],
            schedule=RACY_SCHEDULE,
        )
        runtime.submit("fetchSiteLinks", "P1")  # R4: the error report
        result = trod.retroactive.run(
            ["R2", "R3"],
            patches={"editPage": edit_page_fixed},
            followups=["R4"],
        )
        assert result.all_ok
        for outcome in result.outcomes:
            links = outcome.final_state["site_links"]
            assert links == [("P1", "http://x.org")]
