"""E-commerce workflow and profile app behaviour tests."""

import pytest

from repro.runtime import Request


@pytest.fixture
def stocked_shop(ecommerce_env):
    _db, runtime, _trod = ecommerce_env
    runtime.submit("registerUser", "U1", "u1@x.com", "4111")
    runtime.submit("restock", "SKU1", 10)
    runtime.submit("addToCart", "C1", "U1", "SKU1", 2, 5.0)
    return ecommerce_env


class TestCheckout:
    def test_happy_path(self, stocked_shop):
        db, runtime, _trod = stocked_shop
        result = runtime.submit("checkout", "C1", "U1")
        assert result.ok
        assert result.output["total"] == 10.0
        assert db.table_rows("orders")[0]["status"] == "placed"
        assert db.table_rows("payments")[0]["amount"] == 10.0
        assert db.table_rows("inventory")[0]["stock"] == 8

    def test_checkout_emits_receipt_email(self, stocked_shop):
        _db, runtime, _trod = stocked_shop
        runtime.submit("checkout", "C1", "U1")
        emails = [e for e in runtime.side_effects if e.channel == "email"]
        assert len(emails) == 1

    def test_wrong_user_rejected(self, stocked_shop):
        _db, runtime, _trod = stocked_shop
        result = runtime.submit("checkout", "C1", "U2")
        assert not result.ok
        assert "does not belong" in result.error

    def test_missing_cart_rejected(self, stocked_shop):
        _db, runtime, _trod = stocked_shop
        assert not runtime.submit("checkout", "ghost", "U1").ok

    def test_insufficient_stock_aborts_everything(self, ecommerce_env):
        db, runtime, _trod = ecommerce_env
        runtime.submit("registerUser", "U1", "u@x", "4111")
        runtime.submit("restock", "SKU1", 1)
        runtime.submit("addToCart", "C1", "U1", "SKU1", 5, 2.0)
        result = runtime.submit("checkout", "C1", "U1")
        assert not result.ok
        assert "insufficient stock" in result.error
        # The failed reservation aborted; no partial effects anywhere.
        assert db.table_rows("orders") == []
        assert db.table_rows("inventory")[0]["stock"] == 1

    def test_multiple_items_total(self, ecommerce_env):
        _db, runtime, _trod = ecommerce_env
        runtime.submit("registerUser", "U1", "u@x", "4111")
        runtime.submit("restock", "A", 10)
        runtime.submit("restock", "B", 10)
        runtime.submit("addToCart", "C1", "U1", "A", 2, 3.0)
        runtime.submit("addToCart", "C1", "U1", "B", 1, 4.0)
        result = runtime.submit("checkout", "C1", "U1")
        assert result.output["total"] == 10.0

    def test_order_status(self, stocked_shop):
        _db, runtime, _trod = stocked_shop
        runtime.submit("checkout", "C1", "U1")
        assert runtime.submit("orderStatus", "order-C1").output == "placed"
        assert runtime.submit("orderStatus", "ghost").output is None

    def test_restock_accumulates(self, ecommerce_env):
        _db, runtime, _trod = ecommerce_env
        assert runtime.submit("restock", "S", 5).output == 5
        assert runtime.submit("restock", "S", 3).output == 8

    def test_concurrent_checkouts_on_disjoint_carts(self, ecommerce_env):
        db, runtime, _trod = ecommerce_env
        runtime.submit("registerUser", "U1", "u@x", "4111")
        runtime.submit("restock", "SKU1", 100)
        runtime.submit("addToCart", "C1", "U1", "SKU1", 1, 1.0)
        runtime.submit("addToCart", "C2", "U1", "SKU1", 1, 1.0)
        results = runtime.run_concurrent(
            [Request("checkout", ("C1", "U1")), Request("checkout", ("C2", "U1"))],
            seed=5,
        )
        assert all(r.ok for r in results)
        assert db.table_rows("inventory")[0]["stock"] == 98
        assert len(db.table_rows("orders")) == 2


class TestProfilesApp:
    def test_create_and_view(self, profiles_env):
        _db, runtime, _trod = profiles_env
        runtime.submit("createProfile", "alice", "a@x.com", auth_user="alice")
        profile = runtime.submit("viewProfile", "alice").output
        assert profile == {"UserName": "alice", "Email": "a@x.com", "Bio": ""}

    def test_view_missing_profile(self, profiles_env):
        _db, runtime, _trod = profiles_env
        assert runtime.submit("viewProfile", "nobody").output is None

    def test_secure_update_by_owner(self, profiles_env):
        _db, runtime, _trod = profiles_env
        runtime.submit("createProfile", "alice", "a@x.com", auth_user="alice")
        assert runtime.submit(
            "updateProfile", "alice", "new bio", auth_user="alice"
        ).ok
        assert runtime.submit("viewProfile", "alice").output["Bio"] == "new bio"

    def test_secure_update_by_other_rejected(self, profiles_env):
        _db, runtime, _trod = profiles_env
        runtime.submit("createProfile", "alice", "a@x.com", auth_user="alice")
        result = runtime.submit(
            "updateProfile", "alice", "pwn", auth_user="mallory"
        )
        assert not result.ok
        assert runtime.submit("viewProfile", "alice").output["Bio"] == ""

    def test_insecure_update_succeeds_and_records_updater(self, profiles_env):
        db, runtime, _trod = profiles_env
        runtime.submit("createProfile", "alice", "a@x.com", auth_user="alice")
        runtime.submit(
            "updateProfileInsecure", "alice", "pwn", auth_user="mallory"
        )
        row = db.table_rows("profiles")[0]
        assert row["Bio"] == "pwn"
        assert row["UpdatedBy"] == "mallory"  # the forensic breadcrumb

    def test_message_read_paths(self, profiles_env):
        _db, runtime, _trod = profiles_env
        runtime.submit("sendMessage", "M1", "alice", "hi", auth_user="bob")
        assert runtime.submit("readMessages", "alice").output == ["hi"]
        secure = runtime.submit("readMessagesSecure", "alice")
        assert not secure.ok  # unauthenticated
        owner = runtime.submit("readMessagesSecure", "alice", auth_user="alice")
        assert owner.output == ["hi"]
        other = runtime.submit("readMessagesSecure", "alice", auth_user="eve")
        assert not other.ok
