"""Moodle app behaviour: the MDL-59854 race and MDL-60669 regression."""

import pytest

from repro.runtime import Request
from repro.workload.generators import ForumWorkload


class TestSubscribe:
    def test_single_subscribe(self, moodle_env):
        db, runtime, _trod = moodle_env
        result = runtime.submit("subscribeUser", "U1", "F1")
        assert result.output is True
        assert db.table_rows("forum_sub") == [{"userId": "U1", "forum": "F1"}]

    def test_repeat_subscribe_is_idempotent_when_serial(self, moodle_env):
        db, runtime, _trod = moodle_env
        runtime.submit("subscribeUser", "U1", "F1")
        runtime.submit("subscribeUser", "U1", "F1")
        assert len(db.table_rows("forum_sub")) == 1

    def test_racy_schedule_creates_duplicates(self, moodle_env):
        db, runtime, _trod = moodle_env
        results = runtime.run_concurrent(
            ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
        )
        assert all(r.ok for r in results)  # silently wrong, as in the report
        assert len(db.table_rows("forum_sub")) == 2

    def test_serial_schedule_is_safe(self, moodle_env):
        db, runtime, _trod = moodle_env
        runtime.run_concurrent(
            ForumWorkload.racy_pair(), schedule=ForumWorkload.SERIAL_SCHEDULE
        )
        assert len(db.table_rows("forum_sub")) == 1

    def test_fixed_handler_is_race_free_under_racy_schedule(self, moodle_env):
        db, runtime, _trod = moodle_env
        requests = [
            Request("subscribeUserFixed", ("U1", "F2")),
            Request("subscribeUserFixed", ("U1", "F2")),
        ]
        # The fixed handler has one txn; any schedule serializes them.
        runtime.run_concurrent(requests, schedule=[0, 1])
        assert len(db.table_rows("forum_sub")) == 1

    def test_fetch_subscribers_ok_without_duplicates(self, moodle_env):
        _db, runtime, _trod = moodle_env
        runtime.submit("subscribeUser", "U1", "F1")
        runtime.submit("subscribeUser", "U2", "F1")
        result = runtime.submit("fetchSubscribers", "F1")
        assert sorted(result.output) == ["U1", "U2"]

    def test_fetch_subscribers_raises_on_duplicates(self, racy_moodle):
        _db, runtime, _trod = racy_moodle
        result = runtime.submit("fetchSubscribers", "F2")
        assert not result.ok
        assert "duplicated" in result.error

    def test_unsubscribe_removes_all_matching(self, racy_moodle):
        db, runtime, _trod = racy_moodle
        result = runtime.submit("unsubscribeUser", "U1", "F2")
        assert result.output == 2  # removes both duplicates
        assert db.table_rows("forum_sub") == []


class TestCourses:
    def test_course_lifecycle(self, moodle_env):
        db, runtime, _trod = moodle_env
        runtime.submit("createCourse", "C1", "Intro", ["F1", "F2"])
        assert db.table_rows("courses")[0]["status"] == "active"
        runtime.submit("deleteCourse", "C1")
        assert db.table_rows("courses")[0]["status"] == "deleted"
        result = runtime.submit("restoreCourse", "C1")
        assert result.ok
        assert db.table_rows("courses")[0]["status"] == "active"

    def test_delete_unknown_course(self, moodle_env):
        _db, runtime, _trod = moodle_env
        assert runtime.submit("deleteCourse", "nope").output is False

    def test_restore_fails_with_duplicate_subscriptions(self, moodle_env):
        """MDL-60669: the patch regression scenario."""
        _db, runtime, _trod = moodle_env
        runtime.submit("createCourse", "C1", "Intro", ["F2"])
        runtime.run_concurrent(
            ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
        )
        runtime.submit("deleteCourse", "C1")
        result = runtime.submit("restoreCourse", "C1")
        assert not result.ok
        assert "duplicate subscriptions" in result.error
        # And the course stays deleted (the restore txn aborted).
        db = runtime.database
        assert db.table_rows("courses")[0]["status"] == "deleted"

    def test_restore_ok_for_other_forums(self, moodle_env):
        db, runtime, _trod = moodle_env
        runtime.submit("createCourse", "C1", "Intro", ["F9"])
        runtime.run_concurrent(
            ForumWorkload.racy_pair(), schedule=ForumWorkload.RACY_SCHEDULE
        )  # duplicates in F2, not F9
        runtime.submit("deleteCourse", "C1")
        assert runtime.submit("restoreCourse", "C1").ok
