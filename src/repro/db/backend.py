"""Simulated backend cost models.

The paper's §3.7 reports tracing overhead relative to two real backends:
the in-memory VoltDB (<15% overhead) and the on-disk Postgres (negligible).
Neither is available offline, so this module substitutes calibrated
busy-wait latency profiles: a "voltdb"-like profile with microsecond-scale
per-operation costs and a "postgres"-like profile whose commit cost is
dominated by a simulated fsync + client round trip. Because TROD's tracing
cost is a roughly fixed number of microseconds per request, its *relative*
overhead shrinks as backend cost grows — exactly the effect the paper
reports, and what benchmark E7 measures.

Busy-waiting (rather than ``time.sleep``) is used because sleep granularity
on most systems is far coarser than the microsecond costs being modeled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyProfile:
    """Per-operation costs, in microseconds."""

    name: str
    begin_us: float
    statement_us: float
    row_write_us: float
    commit_us: float
    description: str = ""


#: In-memory, single-threaded execution engine: cheap everywhere.
VOLTDB_PROFILE = LatencyProfile(
    name="voltdb",
    begin_us=2.0,
    statement_us=10.0,
    row_write_us=1.0,
    commit_us=15.0,
    description="in-memory store; µs-scale statement and commit costs",
)

#: Conventional disk-based engine: commit pays a simulated fsync.
POSTGRES_PROFILE = LatencyProfile(
    name="postgres",
    begin_us=30.0,
    statement_us=80.0,
    row_write_us=10.0,
    commit_us=2000.0,
    description="on-disk store; ms-scale durable commit",
)

#: Zero-cost profile, useful to measure the engine's own raw speed.
NULL_PROFILE = LatencyProfile(
    name="null", begin_us=0.0, statement_us=0.0, row_write_us=0.0, commit_us=0.0
)

PROFILES = {p.name: p for p in (VOLTDB_PROFILE, POSTGRES_PROFILE, NULL_PROFILE)}


def busy_wait_us(microseconds: float) -> None:
    """Spin for ``microseconds`` of wall time."""
    if microseconds <= 0:
        return
    deadline = time.perf_counter_ns() + int(microseconds * 1000)
    while time.perf_counter_ns() < deadline:
        pass


class SimulatedBackend:
    """Injects a latency profile into the database's hot paths.

    The transaction manager and ``Database.execute`` call the ``on_*``
    hooks; total simulated time is tracked so benchmarks can report both
    wall-clock and modeled costs.
    """

    def __init__(self, profile: LatencyProfile):
        self.profile = profile
        self.total_simulated_us = 0.0
        self.calls = {"begin": 0, "statement": 0, "commit": 0, "abort": 0}

    def _spend(self, microseconds: float) -> None:
        self.total_simulated_us += microseconds
        busy_wait_us(microseconds)

    def on_begin(self) -> None:
        self.calls["begin"] += 1
        self._spend(self.profile.begin_us)

    def on_statement(self) -> None:
        self.calls["statement"] += 1
        self._spend(self.profile.statement_us)

    def on_commit(self, row_writes: int) -> None:
        self.calls["commit"] += 1
        self._spend(self.profile.commit_us + row_writes * self.profile.row_write_us)

    def on_abort(self) -> None:
        self.calls["abort"] += 1

    @staticmethod
    def named(profile_name: str) -> "SimulatedBackend":
        return SimulatedBackend(PROFILES[profile_name])
