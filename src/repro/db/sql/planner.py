"""Row layouts and expression compilation.

The executor works on flat row tuples. A :class:`Layout` maps qualified and
unqualified column names to tuple slots; :func:`compile_expr` translates an
expression tree into a Python closure over ``(row, params)``, which is
considerably faster than interpreting the tree per row — the declarative
debugging benchmark joins provenance tables with 10^5 rows, so per-row cost
matters.

This module also hosts the aggregate rewrite: expressions over GROUP BY
results are rebuilt so aggregate calls and group keys become direct slot
references into the aggregated row.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Sequence

from repro.db.expr import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Param,
    Star,
    UnaryOp,
    _ARITH_OPS,
    _COMPARISONS,
)
from repro.db.sql.functions import AGGREGATE_NAMES, call_scalar
from repro.db.types import compare_values
from repro.errors import ExecutionError, PlanningError

#: A compiled expression: (row_tuple, params) -> value.
CompiledExpr = Callable[[tuple, Sequence[Any]], Any]


class Layout:
    """Slot assignment for the columns flowing through a plan node."""

    def __init__(self):
        self._slots: list[tuple[str | None, str]] = []
        self._qualified: dict[tuple[str, str], int] = {}
        self._unqualified: dict[str, int | None] = {}  # None = ambiguous

    @staticmethod
    def for_table(binding: str, columns: Sequence[str]) -> "Layout":
        layout = Layout()
        for column in columns:
            layout.add(binding, column)
        return layout

    def add(self, qualifier: str | None, column: str) -> int:
        slot = len(self._slots)
        self._slots.append((qualifier, column))
        col = column.lower()
        if qualifier is not None:
            key = (qualifier.lower(), col)
            if key in self._qualified:
                raise PlanningError(f"duplicate column {qualifier}.{column}")
            self._qualified[key] = slot
        if col in self._unqualified:
            self._unqualified[col] = None  # ambiguous from now on
        else:
            self._unqualified[col] = slot
        return slot

    def concat(self, other: "Layout") -> "Layout":
        merged = Layout()
        for qualifier, column in self._slots:
            merged.add(qualifier, column)
        for qualifier, column in other._slots:
            merged.add(qualifier, column)
        return merged

    def slot(self, qualifier: str | None, column: str) -> int:
        col = column.lower()
        if qualifier is not None:
            key = (qualifier.lower(), col)
            if key in self._qualified:
                return self._qualified[key]
            raise PlanningError(f"unknown column {qualifier}.{column}")
        if col in self._unqualified:
            slot = self._unqualified[col]
            if slot is None:
                raise PlanningError(f"ambiguous column reference: {column}")
            return slot
        raise PlanningError(f"unknown column {column}")

    def has(self, qualifier: str | None, column: str) -> bool:
        try:
            self.slot(qualifier, column)
            return True
        except PlanningError:
            return False

    def qualifiers(self) -> set[str]:
        return {q.lower() for q, _ in self._slots if q is not None}

    def columns_of(self, qualifier: str) -> list[tuple[str, int]]:
        wanted = qualifier.lower()
        return [
            (column, index)
            for index, (q, column) in enumerate(self._slots)
            if q is not None and q.lower() == wanted
        ]

    def names(self) -> list[str]:
        return [column for _, column in self._slots]

    def __len__(self) -> int:
        return len(self._slots)


class SlotRef(Expr):
    """Direct slot reference produced by the aggregate rewrite."""

    __slots__ = ("index", "label")

    def __init__(self, index: int, label: str = ""):
        self.index = index
        self.label = label

    def eval(self, scope) -> Any:  # pragma: no cover - compiled path only
        raise ExecutionError("SlotRef cannot be interpreted")

    def sql(self) -> str:
        return self.label or f"$slot{self.index}"


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def compile_expr(expr: Expr, layout: Layout) -> CompiledExpr:
    """Compile ``expr`` into a closure over ``(row, params)``."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row, params: value
    if isinstance(expr, Param):
        index = expr.index
        def eval_param(row: tuple, params: Sequence[Any]) -> Any:
            try:
                return params[index]
            except IndexError:
                raise ExecutionError(
                    f"statement uses parameter #{index + 1} but only "
                    f"{len(params)} were supplied"
                ) from None
        return eval_param
    if isinstance(expr, SlotRef):
        slot = expr.index
        return lambda row, params: row[slot]
    if isinstance(expr, ColumnRef):
        slot = layout.slot(expr.qualifier, expr.column)
        return lambda row, params: row[slot]
    if isinstance(expr, Star):
        raise PlanningError("'*' is not a scalar expression")
    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, layout)
    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, layout)
        if expr.op == "NOT":
            def eval_not(row: tuple, params: Sequence[Any]) -> Any:
                value = operand(row, params)
                return None if value is None else not value
            return eval_not
        if expr.op == "-":
            def eval_neg(row: tuple, params: Sequence[Any]) -> Any:
                value = operand(row, params)
                return None if value is None else -value
            return eval_neg
        return operand  # unary '+'
    if isinstance(expr, IsNull):
        operand = compile_expr(expr.operand, layout)
        if expr.negated:
            return lambda row, params: operand(row, params) is not None
        return lambda row, params: operand(row, params) is None
    if isinstance(expr, InList):
        return _compile_in_list(expr, layout)
    if isinstance(expr, Between):
        return _compile_between(expr, layout)
    if isinstance(expr, Like):
        return _compile_like(expr, layout)
    if isinstance(expr, Case):
        return _compile_case(expr, layout)
    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_NAMES:
            raise PlanningError(
                f"aggregate {expr.name}() is not allowed in this context"
            )
        args = [compile_expr(a, layout) for a in expr.args]
        name = expr.name
        return lambda row, params: call_scalar(
            name, [a(row, params) for a in args]
        )
    raise PlanningError(f"cannot compile expression {expr!r}")  # pragma: no cover


def _compile_binary(expr: BinaryOp, layout: Layout) -> CompiledExpr:
    op = expr.op
    left = compile_expr(expr.left, layout)
    right = compile_expr(expr.right, layout)
    if op == "AND":
        def eval_and(row: tuple, params: Sequence[Any]) -> Any:
            a = left(row, params)
            if a is False:
                return False
            b = right(row, params)
            if b is False:
                return False
            if a is None or b is None:
                return None
            return True
        return eval_and
    if op == "OR":
        def eval_or(row: tuple, params: Sequence[Any]) -> Any:
            a = left(row, params)
            if a is True:
                return True
            b = right(row, params)
            if b is True:
                return True
            if a is None or b is None:
                return None
            return False
        return eval_or
    if op in _COMPARISONS:
        test = _COMPARISONS[op]
        def eval_cmp(row: tuple, params: Sequence[Any]) -> Any:
            a = left(row, params)
            b = right(row, params)
            if a is None or b is None:
                return None
            return test(compare_values(a, b))
        return eval_cmp
    if op in _ARITH_OPS:
        fn = _ARITH_OPS[op]
        def eval_arith(row: tuple, params: Sequence[Any]) -> Any:
            try:
                return fn(left(row, params), right(row, params))
            except TypeError:
                raise ExecutionError(f"invalid operands for {op}") from None
        return eval_arith
    raise PlanningError(f"unknown operator {op!r}")  # pragma: no cover


def _compile_in_list(expr: InList, layout: Layout) -> CompiledExpr:
    operand = compile_expr(expr.operand, layout)
    items = [compile_expr(item, layout) for item in expr.items]
    negated = expr.negated

    def eval_in(row: tuple, params: Sequence[Any]) -> Any:
        value = operand(row, params)
        if value is None:
            return None
        saw_null = False
        for item in items:
            candidate = item(row, params)
            if candidate is None:
                saw_null = True
            elif compare_values(value, candidate) == 0:
                return not negated
        if saw_null:
            return None
        return negated

    return eval_in


def _compile_between(expr: Between, layout: Layout) -> CompiledExpr:
    operand = compile_expr(expr.operand, layout)
    low = compile_expr(expr.low, layout)
    high = compile_expr(expr.high, layout)
    negated = expr.negated

    def eval_between(row: tuple, params: Sequence[Any]) -> Any:
        value = operand(row, params)
        lo = low(row, params)
        hi = high(row, params)
        if value is None or lo is None or hi is None:
            return None
        inside = compare_values(value, lo) >= 0 and compare_values(value, hi) <= 0
        return not inside if negated else inside

    return eval_between


def _like_regex(pattern: str) -> re.Pattern:
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("".join(out), re.DOTALL)


def _compile_like(expr: Like, layout: Layout) -> CompiledExpr:
    operand = compile_expr(expr.operand, layout)
    negated = expr.negated
    if isinstance(expr.pattern, Literal) and expr.pattern.value is not None:
        regex = _like_regex(str(expr.pattern.value))

        def eval_like_const(row: tuple, params: Sequence[Any]) -> Any:
            value = operand(row, params)
            if value is None:
                return None
            matched = bool(regex.fullmatch(str(value)))
            return not matched if negated else matched

        return eval_like_const
    pattern_fn = compile_expr(expr.pattern, layout)

    def eval_like(row: tuple, params: Sequence[Any]) -> Any:
        value = operand(row, params)
        pattern = pattern_fn(row, params)
        if value is None or pattern is None:
            return None
        matched = bool(_like_regex(str(pattern)).fullmatch(str(value)))
        return not matched if negated else matched

    return eval_like


def _compile_case(expr: Case, layout: Layout) -> CompiledExpr:
    branches = [
        (compile_expr(cond, layout), compile_expr(value, layout))
        for cond, value in expr.branches
    ]
    default = compile_expr(expr.default, layout) if expr.default else None

    def eval_case(row: tuple, params: Sequence[Any]) -> Any:
        for cond, value in branches:
            if cond(row, params) is True:
                return value(row, params)
        if default is not None:
            return default(row, params)
        return None

    return eval_case


# ---------------------------------------------------------------------------
# Conjunct classification (predicate pushdown) helpers
# ---------------------------------------------------------------------------


def bindings_used(expr: Expr, layout: Layout) -> set[str] | None:
    """The set of table bindings an expression references.

    Unqualified columns are resolved through ``layout`` (the full FROM
    layout). Returns None when the expression references something the
    layout cannot resolve — the caller then reports the error by compiling.
    """
    out: set[str] = set()
    for node in expr.walk():
        if isinstance(node, ColumnRef):
            if node.qualifier is not None:
                out.add(node.qualifier.lower())
                continue
            col = node.column.lower()
            owner = None
            for (q, c), _slot in layout._qualified.items():
                if c == col:
                    if owner is not None and owner != q:
                        return None  # ambiguous; let compilation report it
                    owner = q
            if owner is None:
                return None
            out.add(owner)
    return out


def extract_equi_pairs(
    conjuncts: list[Expr],
    left_bindings: set[str],
    right_bindings: set[str],
    layout: Layout,
) -> tuple[list[tuple[Expr, Expr]], list[Expr]]:
    """Split conjuncts into hash-join equi pairs and residual predicates.

    A conjunct ``a = b`` becomes an equi pair when one side only touches
    ``left_bindings`` and the other only ``right_bindings``.
    """
    pairs: list[tuple[Expr, Expr]] = []
    residual: list[Expr] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, BinaryOp) and conjunct.op in ("=", "=="):
            lhs_bind = bindings_used(conjunct.left, layout)
            rhs_bind = bindings_used(conjunct.right, layout)
            if lhs_bind is not None and rhs_bind is not None:
                if lhs_bind <= left_bindings and rhs_bind <= right_bindings:
                    pairs.append((conjunct.left, conjunct.right))
                    continue
                if lhs_bind <= right_bindings and rhs_bind <= left_bindings:
                    pairs.append((conjunct.right, conjunct.left))
                    continue
        residual.append(conjunct)
    return pairs, residual


# ---------------------------------------------------------------------------
# Aggregate rewrite
# ---------------------------------------------------------------------------


def find_aggregates(exprs: list[Expr | None]) -> list[FuncCall]:
    """Distinct aggregate calls (by SQL text) across ``exprs``, in order."""
    seen: dict[str, FuncCall] = {}
    for expr in exprs:
        if expr is None:
            continue
        for node in expr.walk():
            if isinstance(node, FuncCall) and node.name in AGGREGATE_NAMES:
                seen.setdefault(node.sql(), node)
    return list(seen.values())


def map_children(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild one expression node with ``fn`` applied to each subtree.

    Leaves (and unknown node types) are returned as-is; recursion policy
    stays with the caller, which is what lets both aggregate rewrites
    below share this single structural walk.
    """
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, fn(expr.left), fn(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, fn(expr.operand))
    if isinstance(expr, IsNull):
        return IsNull(fn(expr.operand), negated=expr.negated)
    if isinstance(expr, InList):
        return InList(
            fn(expr.operand), [fn(item) for item in expr.items], negated=expr.negated
        )
    if isinstance(expr, Between):
        return Between(
            fn(expr.operand), fn(expr.low), fn(expr.high), negated=expr.negated
        )
    if isinstance(expr, Like):
        return Like(fn(expr.operand), fn(expr.pattern), negated=expr.negated)
    if isinstance(expr, Case):
        return Case(
            [(fn(cond), fn(value)) for cond, value in expr.branches],
            fn(expr.default) if expr.default else None,
        )
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            [fn(a) for a in expr.args],
            distinct=expr.distinct,
            star=expr.star,
        )
    if isinstance(expr, (Literal, Param, ColumnRef, SlotRef, Star)):
        return expr
    # A new Expr node type must be taught here explicitly; passing it
    # through silently would let column references escape rewrites.
    raise PlanningError(f"cannot rewrite expression {expr!r}")


def is_const_expr(expr: Expr) -> bool:
    """Whether ``expr`` evaluates to the same value on every row.

    Function calls are excluded even when their arguments are constant:
    folding one would surface unknown-function and arity errors at plan
    time, and ``EXPLAIN`` builds plans without executing.
    """
    if isinstance(expr, (ColumnRef, SlotRef, Star, Param, FuncCall)):
        return False
    if isinstance(expr, Literal):
        return True
    return all(is_const_expr(child) for child in expr.children())


def fold_constants(expr: Expr) -> Expr:
    """Bottom-up constant folding with SQL three-valued identities.

    Constant subtrees are evaluated once at plan time and replaced by
    literals; any evaluation error leaves the subtree unfolded so the
    error still surfaces at execution, exactly where it used to. The only
    non-constant rewrites applied are the left-literal short circuits
    ``FALSE AND x -> FALSE`` and ``TRUE OR x -> TRUE``, which the
    row-at-a-time evaluator performs without touching ``x`` anyway.
    (``TRUE AND x`` is *not* ``x``: AND normalizes truthy operands.)
    """
    from repro.db.expr import Scope

    folded = map_children(expr, fold_constants)
    if isinstance(folded, BinaryOp) and isinstance(folded.left, Literal):
        if folded.op == "AND" and folded.left.value is False:
            return Literal(False)
        if folded.op == "OR" and folded.left.value is True:
            return Literal(True)
    if isinstance(folded, Literal) or not is_const_expr(folded):
        return folded
    try:
        value = folded.eval(Scope())
    except Exception:
        return folded
    return Literal(value)


def rewrite_aggregate_expr(
    expr: Expr,
    group_slots: dict[str, int],
    agg_slots: dict[str, int],
) -> Expr:
    """Rebuild ``expr`` over the aggregated row.

    Group-by expressions and aggregate calls (matched by their SQL text)
    become :class:`SlotRef`; any other column reference is an error, per
    standard SQL grouping rules.
    """
    key = expr.sql()
    if key in group_slots:
        return SlotRef(group_slots[key], label=key)
    if isinstance(expr, FuncCall) and expr.name in AGGREGATE_NAMES:
        if key in agg_slots:
            return SlotRef(agg_slots[key], label=key)
        raise PlanningError(f"aggregate {key} not computed")  # pragma: no cover
    if isinstance(expr, ColumnRef):
        raise PlanningError(
            f"column {expr.sql()} must appear in GROUP BY or inside an aggregate"
        )
    return map_children(
        expr, lambda child: rewrite_aggregate_expr(child, group_slots, agg_slots)
    )


def substitute_by_sql(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Replace subtrees whose SQL text appears in ``mapping``.

    The sharded aggregate pushdown uses this to rebuild final-stage
    expressions over partial-aggregate columns: group-by expressions map
    to partial group columns and aggregate calls map to combine
    expressions (e.g. ``COUNT(x)`` -> ``SUM(_p0)``). Unmapped leaves pass
    through untouched; the final aggregate rewrite validates them.
    """
    key = expr.sql()
    if key in mapping:
        return mapping[key]
    return map_children(expr, lambda child: substitute_by_sql(child, mapping))
