"""Recursive-descent SQL parser.

Covers the dialect the paper's applications and debugging queries need:
SELECT (joins — including the paper's ``FROM A as E, B as F ON …`` comma
idiom — aggregation, HAVING, ORDER BY, LIMIT/OFFSET, DISTINCT), INSERT,
UPDATE, DELETE, CREATE/DROP TABLE, and CREATE/DROP INDEX. ``?``
placeholders are
numbered left to right in parse order.
"""

from __future__ import annotations

from repro.db.expr import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Param,
    Star,
    UnaryOp,
)
from repro.db.sql.lexer import Token, tokenize
from repro.db.sql.nodes import (
    ColumnDef,
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropIndexStmt,
    DropTableStmt,
    InsertStmt,
    Join,
    OrderItem,
    SelectItem,
    SelectStmt,
    Statement,
    TableRef,
    UpdateStmt,
)
from repro.errors import SqlSyntaxError

#: Words that terminate an expression/alias context; a bare identifier in
#: alias position must not be one of these.
_RESERVED = {
    "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET",
    "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON", "AND", "OR",
    "NOT", "IN", "IS", "NULL", "LIKE", "BETWEEN", "AS", "DISTINCT", "BY",
    "ASC", "DESC", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "CREATE", "DROP", "TABLE", "INDEX", "UNIQUE", "PRIMARY", "KEY", "CASE",
    "WHEN", "THEN", "ELSE", "END", "UNION", "EXISTS",
}


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement (a trailing semicolon is allowed)."""
    parser = _Parser(tokenize(sql), sql)
    statement = parser.parse_statement()
    parser.expect_end()
    statement.param_count = parser.param_count
    return statement


class _Parser:
    def __init__(self, tokens: list[Token], sql: str):
        self._tokens = tokens
        self._sql = sql
        self._pos = 0
        self.param_count = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._peek()
        context = self._sql[max(0, token.pos - 20) : token.pos + 20]
        return SqlSyntaxError(f"{message} near ...{context!r}", token.pos)

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind == "IDENT" and token.value.upper() in words

    def _take_keyword(self, *words: str) -> bool:
        if self._at_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._take_keyword(word):
            raise self._error(f"expected {word}")

    def _at_op(self, *ops: str) -> bool:
        token = self._peek()
        return token.kind == "OP" and token.value in ops

    def _take_op(self, *ops: str) -> str | None:
        if self._at_op(*ops):
            return self._advance().value  # type: ignore[return-value]
        return None

    def _expect_op(self, op: str) -> None:
        if self._take_op(op) is None:
            raise self._error(f"expected {op!r}")

    def _expect_ident(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.kind != "IDENT":
            raise self._error(f"expected {what}")
        self._advance()
        return token.value  # type: ignore[return-value]

    def expect_end(self) -> None:
        self._take_op(";")
        if self._peek().kind != "EOF":
            raise self._error("unexpected trailing input")

    def _at_as_of(self) -> bool:
        """Is the cursor at an ``AS OF <csn>`` clause (vs ``AS alias``)?

        ``OF`` is deliberately not a reserved word, so ``AS OF`` is
        disambiguated from an alias literally named "of" by requiring a
        CSN-shaped operand (number or parameter) right after it.
        """
        return (
            self._at_keyword("AS")
            and self._peek(1).kind == "IDENT"
            and str(self._peek(1).value).upper() == "OF"
            and self._peek(2).kind in ("NUMBER", "PARAM")
        )

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self._at_keyword("SELECT"):
            return self._parse_select()
        if self._at_keyword("INSERT"):
            return self._parse_insert()
        if self._at_keyword("UPDATE"):
            return self._parse_update()
        if self._at_keyword("DELETE"):
            return self._parse_delete()
        if self._at_keyword("CREATE"):
            return self._parse_create()
        if self._at_keyword("DROP"):
            return self._parse_drop()
        raise self._error("expected a SQL statement")

    # -- SELECT ----------------------------------------------------------------

    def _parse_select(self) -> SelectStmt:
        self._expect_keyword("SELECT")
        stmt = SelectStmt()
        stmt.distinct = self._take_keyword("DISTINCT")
        stmt.items.append(self._parse_select_item())
        while self._take_op(","):
            stmt.items.append(self._parse_select_item())
        if self._take_keyword("FROM"):
            stmt.from_table = self._parse_table_ref()
            self._parse_joins(stmt)
            if self._at_as_of():
                # ``FROM ... AS OF <csn>`` ahead of WHERE/GROUP/ORDER.
                self._advance()  # AS
                self._advance()  # OF
                stmt.as_of = self._parse_primary()
        if self._take_keyword("WHERE"):
            stmt.where = self._parse_expr()
        if self._take_keyword("GROUP"):
            self._expect_keyword("BY")
            stmt.group_by.append(self._parse_expr())
            while self._take_op(","):
                stmt.group_by.append(self._parse_expr())
        if self._take_keyword("HAVING"):
            stmt.having = self._parse_expr()
        if self._take_keyword("ORDER"):
            self._expect_keyword("BY")
            stmt.order_by.append(self._parse_order_item())
            while self._take_op(","):
                stmt.order_by.append(self._parse_order_item())
        if self._take_keyword("LIMIT"):
            stmt.limit = self._parse_expr()
        if self._take_keyword("OFFSET"):
            stmt.offset = self._parse_expr()
        if self._at_as_of():
            if stmt.as_of is not None:
                raise self._error("duplicate AS OF clause")
            self._advance()  # AS
            self._advance()  # OF
            stmt.as_of = self._parse_primary()
        return stmt

    def _parse_select_item(self) -> SelectItem:
        if self._at_op("*"):
            self._advance()
            return SelectItem(expr=None, star=True)
        # alias.* form
        token = self._peek()
        if (
            token.kind == "IDENT"
            and self._peek(1).kind == "OP"
            and self._peek(1).value == "."
            and self._peek(2).kind == "OP"
            and self._peek(2).value == "*"
        ):
            qualifier = self._expect_ident()
            self._advance()  # '.'
            self._advance()  # '*'
            return SelectItem(expr=None, star=True, star_qualifier=qualifier)
        expr = self._parse_expr()
        alias = None
        if self._take_keyword("AS"):
            alias = self._expect_ident("alias")
        elif (
            self._peek().kind == "IDENT"
            and self._peek().value.upper() not in _RESERVED
        ):
            alias = self._expect_ident()
        return SelectItem(expr=expr, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        table = self._expect_ident("table name")
        alias = None
        if self._at_as_of():
            # ``FROM items AS OF 5``: the AS belongs to the statement's
            # trailing AS-OF clause, not to a table alias named "of".
            pass
        elif self._take_keyword("AS"):
            alias = self._expect_ident("alias")
        elif (
            self._peek().kind == "IDENT"
            and self._peek().value.upper() not in _RESERVED
        ):
            alias = self._expect_ident()
        return TableRef(table=table, alias=alias)

    def _parse_joins(self, stmt: SelectStmt) -> None:
        while True:
            if self._take_op(","):
                table = self._parse_table_ref()
                on = None
                kind = "cross"
                if self._take_keyword("ON"):
                    # Paper idiom: comma join with an ON clause is an
                    # inner join.
                    on = self._parse_expr()
                    kind = "inner"
                stmt.joins.append(Join(kind=kind, table=table, on=on))
                continue
            if self._at_keyword("JOIN", "INNER", "LEFT", "CROSS"):
                kind = "inner"
                if self._take_keyword("LEFT"):
                    self._take_keyword("OUTER")
                    kind = "left"
                elif self._take_keyword("CROSS"):
                    kind = "cross"
                else:
                    self._take_keyword("INNER")
                self._expect_keyword("JOIN")
                table = self._parse_table_ref()
                on = None
                if kind != "cross":
                    self._expect_keyword("ON")
                    on = self._parse_expr()
                stmt.joins.append(Join(kind=kind, table=table, on=on))
                continue
            break

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expr()
        ascending = True
        if self._take_keyword("DESC"):
            ascending = False
        else:
            self._take_keyword("ASC")
        return OrderItem(expr=expr, ascending=ascending)

    # -- INSERT -----------------------------------------------------------------

    def _parse_insert(self) -> InsertStmt:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        stmt = InsertStmt()
        stmt.table = self._expect_ident("table name")
        if self._at_op("("):
            self._advance()
            columns = [self._expect_ident("column name")]
            while self._take_op(","):
                columns.append(self._expect_ident("column name"))
            self._expect_op(")")
            stmt.columns = columns
        if self._at_keyword("SELECT"):
            stmt.select = self._parse_select()
            return stmt
        self._expect_keyword("VALUES")
        stmt.rows.append(self._parse_value_tuple())
        while self._take_op(","):
            stmt.rows.append(self._parse_value_tuple())
        return stmt

    def _parse_value_tuple(self) -> list[Expr]:
        self._expect_op("(")
        values = [self._parse_expr()]
        while self._take_op(","):
            values.append(self._parse_expr())
        self._expect_op(")")
        return values

    # -- UPDATE / DELETE -----------------------------------------------------------

    def _parse_update(self) -> UpdateStmt:
        self._expect_keyword("UPDATE")
        stmt = UpdateStmt()
        stmt.table = self._parse_table_ref()
        self._expect_keyword("SET")
        stmt.assignments.append(self._parse_assignment())
        while self._take_op(","):
            stmt.assignments.append(self._parse_assignment())
        if self._take_keyword("WHERE"):
            stmt.where = self._parse_expr()
        return stmt

    def _parse_assignment(self) -> tuple[str, Expr]:
        column = self._expect_ident("column name")
        self._expect_op("=")
        return column, self._parse_expr()

    def _parse_delete(self) -> DeleteStmt:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        stmt = DeleteStmt()
        stmt.table = self._parse_table_ref()
        if self._take_keyword("WHERE"):
            stmt.where = self._parse_expr()
        return stmt

    # -- DDL ------------------------------------------------------------------------

    def _parse_create(self) -> Statement:
        self._expect_keyword("CREATE")
        if self._take_keyword("TABLE"):
            return self._parse_create_table()
        unique = self._take_keyword("UNIQUE")
        sorted_index = self._take_keyword("SORTED")
        if self._take_keyword("INDEX"):
            return self._parse_create_index(unique, sorted_index)
        raise self._error("expected TABLE or INDEX after CREATE")

    def _parse_create_table(self) -> CreateTableStmt:
        stmt = CreateTableStmt()
        if self._take_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            stmt.if_not_exists = True
        stmt.name = self._expect_ident("table name")
        self._expect_op("(")
        self._parse_table_element(stmt)
        while self._take_op(","):
            self._parse_table_element(stmt)
        self._expect_op(")")
        return stmt

    def _parse_table_element(self, stmt: CreateTableStmt) -> None:
        if self._at_keyword("UNIQUE") and self._peek(1).value == "(":
            self._advance()
            stmt.unique_constraints.append(self._parse_column_name_list())
            return
        if self._at_keyword("PRIMARY"):
            self._advance()
            self._expect_keyword("KEY")
            if stmt.primary_key is not None:
                raise self._error("multiple PRIMARY KEY constraints")
            stmt.primary_key = self._parse_column_name_list()
            return
        name = self._expect_ident("column name")
        type_name = self._expect_ident("type name")
        column = ColumnDef(name=name, type_name=type_name)
        while True:
            if self._take_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                column.primary_key = True
            elif self._take_keyword("NOT"):
                self._expect_keyword("NULL")
                column.not_null = True
            elif self._take_keyword("UNIQUE"):
                column.unique = True
            elif self._take_keyword("DEFAULT"):
                column.default = self._parse_primary()
            else:
                break
        stmt.columns.append(column)

    def _parse_column_name_list(self) -> list[str]:
        self._expect_op("(")
        names = [self._expect_ident("column name")]
        while self._take_op(","):
            names.append(self._expect_ident("column name"))
        self._expect_op(")")
        return names

    def _parse_create_index(self, unique: bool, sorted_index: bool) -> CreateIndexStmt:
        stmt = CreateIndexStmt(unique=unique, sorted_index=sorted_index)
        stmt.name = self._expect_ident("index name")
        self._expect_keyword("ON")
        stmt.table = self._expect_ident("table name")
        stmt.columns = self._parse_column_name_list()
        return stmt

    def _parse_drop(self) -> Statement:
        self._expect_keyword("DROP")
        if self._take_keyword("INDEX"):
            index_stmt = DropIndexStmt()
            if self._take_keyword("IF"):
                self._expect_keyword("EXISTS")
                index_stmt.if_exists = True
            index_stmt.name = self._expect_ident("index name")
            self._expect_keyword("ON")
            index_stmt.table = self._expect_ident("table name")
            return index_stmt
        self._expect_keyword("TABLE")
        stmt = DropTableStmt()
        if self._take_keyword("IF"):
            self._expect_keyword("EXISTS")
            stmt.if_exists = True
        stmt.name = self._expect_ident("table name")
        return stmt

    # -- expressions -------------------------------------------------------------
    # Precedence (low to high): OR, AND, NOT, predicates/comparison,
    # additive (+ - ||), multiplicative (* / %), unary, primary.

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._take_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._take_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._take_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        op = self._take_op("=", "==", "!=", "<>", "<", "<=", ">", ">=")
        if op is not None:
            return BinaryOp(op, left, self._parse_additive())
        if self._take_keyword("IS"):
            negated = self._take_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNull(left, negated=negated)
        negated = False
        if self._at_keyword("NOT") and self._peek(1).kind == "IDENT" and str(
            self._peek(1).value
        ).upper() in ("IN", "BETWEEN", "LIKE"):
            self._advance()
            negated = True
        if self._take_keyword("IN"):
            self._expect_op("(")
            items = [self._parse_expr()]
            while self._take_op(","):
                items.append(self._parse_expr())
            self._expect_op(")")
            return InList(left, items, negated=negated)
        if self._take_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)
        if self._take_keyword("LIKE"):
            return Like(left, self._parse_additive(), negated=negated)
        if negated:  # pragma: no cover - 'NOT' consumed but no predicate
            raise self._error("expected IN, BETWEEN, or LIKE after NOT")
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            op = self._take_op("+", "-", "||")
            if op is None:
                return left
            left = BinaryOp(op, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            op = self._take_op("*", "/", "%")
            if op is None:
                return left
            left = BinaryOp(op, left, self._parse_unary())

    def _parse_unary(self) -> Expr:
        op = self._take_op("-", "+")
        if op is not None:
            operand = self._parse_unary()
            # Fold sign into numeric literals so "-1" round-trips as a
            # literal rather than a unary expression.
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ) and not isinstance(operand.value, bool):
                return Literal(-operand.value if op == "-" else operand.value)
            return UnaryOp(op, operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            return Literal(token.value)
        if token.kind == "STRING":
            self._advance()
            return Literal(token.value)
        if token.kind == "PARAM":
            self._advance()
            param = Param(self.param_count)
            self.param_count += 1
            return param
        if self._at_op("("):
            self._advance()
            expr = self._parse_expr()
            self._expect_op(")")
            return expr
        if token.kind == "IDENT":
            upper = str(token.value).upper()
            if upper == "NULL":
                self._advance()
                return Literal(None)
            if upper == "TRUE":
                self._advance()
                return Literal(True)
            if upper == "FALSE":
                self._advance()
                return Literal(False)
            if upper == "CASE":
                return self._parse_case()
            # Function call?
            if self._peek(1).kind == "OP" and self._peek(1).value == "(":
                return self._parse_func_call()
            name = self._expect_ident()
            if self._at_op(".") :
                self._advance()
                if self._at_op("*"):
                    raise self._error("'.*' is only allowed in SELECT lists")
                column = self._expect_ident("column name")
                return ColumnRef(column, qualifier=name)
            return ColumnRef(name)
        raise self._error("expected an expression")

    def _parse_case(self) -> Expr:
        self._expect_keyword("CASE")
        branches: list[tuple[Expr, Expr]] = []
        default: Expr | None = None
        while self._take_keyword("WHEN"):
            cond = self._parse_expr()
            self._expect_keyword("THEN")
            branches.append((cond, self._parse_expr()))
        if not branches:
            raise self._error("CASE requires at least one WHEN branch")
        if self._take_keyword("ELSE"):
            default = self._parse_expr()
        self._expect_keyword("END")
        return Case(branches, default)

    def _parse_func_call(self) -> Expr:
        name = self._expect_ident("function name")
        self._expect_op("(")
        if self._at_op("*"):
            self._advance()
            self._expect_op(")")
            return FuncCall(name, [], star=True)
        distinct = self._take_keyword("DISTINCT")
        args: list[Expr] = []
        if not self._at_op(")"):
            args.append(self._parse_expr())
            while self._take_op(","):
                args.append(self._parse_expr())
        self._expect_op(")")
        return FuncCall(name, args, distinct=distinct)
