"""Scalar and aggregate SQL functions."""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.db.types import compare_values
from repro.errors import ExecutionError

# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _upper(value: Any) -> Any:
    return None if value is None else str(value).upper()


def _lower(value: Any) -> Any:
    return None if value is None else str(value).lower()


def _length(value: Any) -> Any:
    return None if value is None else len(str(value))


def _abs(value: Any) -> Any:
    return None if value is None else abs(value)


def _round(value: Any, digits: Any = 0) -> Any:
    if value is None:
        return None
    result = round(float(value), int(digits))
    return int(result) if digits == 0 else result


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(a: Any, b: Any) -> Any:
    if a is not None and b is not None and compare_values(a, b) == 0:
        return None
    return a


def _ifnull(a: Any, b: Any) -> Any:
    return b if a is None else a


def _substr(value: Any, start: Any, length: Any = None) -> Any:
    """1-based SUBSTR, matching common SQL engines."""
    if value is None or start is None:
        return None
    text = str(value)
    begin = int(start) - 1
    if begin < 0:
        begin = 0
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


def _trim(value: Any) -> Any:
    return None if value is None else str(value).strip()


def _replace(value: Any, old: Any, new: Any) -> Any:
    if value is None or old is None or new is None:
        return None
    return str(value).replace(str(old), str(new))


def _concat(*args: Any) -> Any:
    return "".join("" if a is None else str(a) for a in args)


def _typeof(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "BOOLEAN"
    if isinstance(value, int):
        return "INTEGER"
    if isinstance(value, float):
        return "FLOAT"
    return "TEXT"


#: name -> (callable, min arity, max arity or None for variadic)
_SCALARS: dict[str, tuple[Callable[..., Any], int, int | None]] = {
    "UPPER": (_upper, 1, 1),
    "LOWER": (_lower, 1, 1),
    "LENGTH": (_length, 1, 1),
    "ABS": (_abs, 1, 1),
    "ROUND": (_round, 1, 2),
    "COALESCE": (_coalesce, 1, None),
    "NULLIF": (_nullif, 2, 2),
    "IFNULL": (_ifnull, 2, 2),
    "SUBSTR": (_substr, 2, 3),
    "SUBSTRING": (_substr, 2, 3),
    "TRIM": (_trim, 1, 1),
    "REPLACE": (_replace, 3, 3),
    "CONCAT": (_concat, 1, None),
    "TYPEOF": (_typeof, 1, 1),
}


def is_scalar_function(name: str) -> bool:
    return name.upper() in _SCALARS


def call_scalar(name: str, args: Sequence[Any]) -> Any:
    try:
        fn, lo, hi = _SCALARS[name.upper()]
    except KeyError:
        raise ExecutionError(f"unknown function {name}()") from None
    if len(args) < lo or (hi is not None and len(args) > hi):
        raise ExecutionError(
            f"{name}() takes {lo}{'+' if hi is None else f'..{hi}'} "
            f"arguments, got {len(args)}"
        )
    return fn(*args)


# ---------------------------------------------------------------------------
# Aggregate functions
# ---------------------------------------------------------------------------

AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


class Accumulator:
    """Streaming accumulator for one aggregate over one group."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class _CountAcc(Accumulator):
    def __init__(self, star: bool, distinct: bool):
        self._star = star
        self._distinct = distinct
        self._count = 0
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if self._star:
            self._count += 1
            return
        if value is None:
            return
        if self._distinct:
            self._seen.add(value)
        else:
            self._count += 1

    def result(self) -> int:
        return len(self._seen) if self._distinct else self._count


class _SumAcc(Accumulator):
    def __init__(self, distinct: bool, average: bool):
        self._distinct = distinct
        self._average = average
        self._values: list[Any] = []
        self._seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._values.append(value)

    def result(self) -> Any:
        if not self._values:
            return None
        total = sum(self._values)
        if self._average:
            return total / len(self._values)
        return total


class _MinMaxAcc(Accumulator):
    def __init__(self, want_max: bool):
        self._want_max = want_max
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None:
            self._best = value
            return
        cmp = compare_values(value, self._best)
        if (cmp > 0) if self._want_max else (cmp < 0):
            self._best = value

    def result(self) -> Any:
        return self._best


def make_accumulator(name: str, star: bool, distinct: bool) -> Accumulator:
    upper = name.upper()
    if upper == "COUNT":
        return _CountAcc(star=star, distinct=distinct)
    if upper == "SUM":
        return _SumAcc(distinct=distinct, average=False)
    if upper == "AVG":
        return _SumAcc(distinct=distinct, average=True)
    if upper == "MIN":
        return _MinMaxAcc(want_max=False)
    if upper == "MAX":
        return _MinMaxAcc(want_max=True)
    raise ExecutionError(f"unknown aggregate {name}()")  # pragma: no cover
