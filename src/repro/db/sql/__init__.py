"""SQL front end: lexing, parsing, planning, execution."""

from repro.db.sql.parser import parse_sql
from repro.db.sql.nodes import (
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
    Statement,
    UpdateStmt,
)

__all__ = [
    "parse_sql",
    "CreateIndexStmt",
    "CreateTableStmt",
    "DeleteStmt",
    "DropTableStmt",
    "InsertStmt",
    "SelectStmt",
    "Statement",
    "UpdateStmt",
]
