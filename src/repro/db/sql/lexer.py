"""Hand-written SQL tokenizer.

Produces a flat token list for the recursive-descent parser. Keywords are
not distinguished from identifiers here — the parser checks identifier
tokens against its keyword expectations, which keeps the lexer trivial and
lets column names shadow non-reserved words.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT | STRING | NUMBER | OP | PARAM | EOF
    value: str | int | float
    pos: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.value!r})"


#: Multi-character operators, longest first so matching is greedy.
_MULTI_OPS = ("<=", ">=", "<>", "!=", "==", "||")
_SINGLE_OPS = set("=<>+-*/%(),.;")


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SqlSyntaxError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token("STRING", value, i))
            continue
        if ch == '"':
            value, i = _read_quoted_ident(sql, i)
            tokens.append(Token("IDENT", value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token("NUMBER", value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            tokens.append(Token("IDENT", sql[start:i], start))
            continue
        if ch == "?":
            tokens.append(Token("PARAM", "?", i))
            i += 1
            continue
        matched = False
        for op in _MULTI_OPS:
            if sql.startswith(op, i):
                tokens.append(Token("OP", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token("OP", ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token("EOF", "", n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string with '' as the escape for a quote."""
    i = start + 1
    out: list[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _read_quoted_ident(sql: str, start: int) -> tuple[str, int]:
    end = sql.find('"', start + 1)
    if end == -1:
        raise SqlSyntaxError("unterminated quoted identifier", start)
    name = sql[start + 1 : end]
    if not name:
        raise SqlSyntaxError("empty quoted identifier", start)
    return name, end + 1


def _read_number(sql: str, start: int) -> tuple[int | float, int]:
    i = start
    n = len(sql)
    saw_dot = False
    saw_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not saw_dot and not saw_exp:
            saw_dot = True
            i += 1
        elif ch in "eE" and not saw_exp and i > start:
            nxt = i + 1
            if nxt < n and sql[nxt] in "+-":
                nxt += 1
            if nxt < n and sql[nxt].isdigit():
                saw_exp = True
                i = nxt
            else:
                break
        else:
            break
    text = sql[start:i]
    try:
        if saw_dot or saw_exp:
            return float(text), i
        return int(text), i
    except ValueError:  # pragma: no cover - defensive
        raise SqlSyntaxError(f"bad numeric literal {text!r}", start) from None
