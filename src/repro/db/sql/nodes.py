"""Parsed-statement AST nodes."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.expr import Expr


class Statement:
    """Base class for parsed statements."""

    #: Number of ``?`` placeholders, assigned by the parser.
    param_count: int = 0


@dataclass
class TableRef:
    """A table reference in FROM/UPDATE/DELETE, with optional alias."""

    table: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The qualifier rows from this table bind under."""
        return self.alias or self.table


@dataclass
class Join:
    """One join step; ``kind`` is 'inner', 'left', or 'cross'.

    The paper's queries use the ``FROM A as E, B as F ON E.x = F.x`` idiom;
    the parser turns that into an inner join so they run verbatim.
    """

    kind: str
    table: TableRef
    on: Expr | None


@dataclass
class SelectItem:
    """One projection: an expression, ``*``, or ``alias.*``."""

    expr: Expr | None
    alias: str | None = None
    star: bool = False
    star_qualifier: str | None = None


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass
class SelectStmt(Statement):
    items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_table: TableRef | None = None
    joins: list[Join] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Expr | None = None
    offset: Expr | None = None
    #: Trailing ``AS OF <csn>`` clause: a historical read pinned to a
    #: commit sequence number (local CSN on one database, global CSN on a
    #: sharded cluster). A literal or parameter.
    as_of: Expr | None = None
    param_count: int = 0

    def table_refs(self) -> list[TableRef]:
        refs = []
        if self.from_table is not None:
            refs.append(self.from_table)
        refs.extend(join.table for join in self.joins)
        return refs


@dataclass
class InsertStmt(Statement):
    table: str = ""
    columns: list[str] | None = None
    rows: list[list[Expr]] = field(default_factory=list)
    #: INSERT INTO ... SELECT form (mutually exclusive with ``rows``).
    select: "SelectStmt | None" = None
    param_count: int = 0


@dataclass
class UpdateStmt(Statement):
    table: TableRef = field(default_factory=lambda: TableRef(""))
    assignments: list[tuple[str, Expr]] = field(default_factory=list)
    where: Expr | None = None
    param_count: int = 0


@dataclass
class DeleteStmt(Statement):
    table: TableRef = field(default_factory=lambda: TableRef(""))
    where: Expr | None = None
    param_count: int = 0


@dataclass
class ColumnDef:
    name: str
    type_name: str
    primary_key: bool = False
    not_null: bool = False
    unique: bool = False
    default: Expr | None = None


@dataclass
class CreateTableStmt(Statement):
    name: str = ""
    columns: list[ColumnDef] = field(default_factory=list)
    primary_key: list[str] | None = None  # table-level PRIMARY KEY (...)
    unique_constraints: list[list[str]] = field(default_factory=list)
    if_not_exists: bool = False
    param_count: int = 0


@dataclass
class DropTableStmt(Statement):
    name: str = ""
    if_exists: bool = False
    param_count: int = 0


@dataclass
class CreateIndexStmt(Statement):
    name: str = ""
    table: str = ""
    columns: list[str] = field(default_factory=list)
    unique: bool = False
    sorted_index: bool = False  # CREATE SORTED INDEX -> range-scan index
    param_count: int = 0


@dataclass
class DropIndexStmt(Statement):
    name: str = ""
    table: str = ""
    if_exists: bool = False
    param_count: int = 0
