"""Expression compilation: Expr trees -> specialized batch functions.

The planner's ``compile_expr`` lowers an expression into a tree of nested
closures — correct, but every row pays one Python call per tree node. This
module lowers the same tree **once per cached plan** into straight-line
Python source (slot-indexed tuple access, short-circuit AND/OR, constant
and parameter hoisting), compiles it with ``compile()``/``exec``, and
returns functions that process a whole batch of rows per call. The
executor's batch operators (:meth:`PlanNode.batches`) drive these; the
row-at-a-time path keeps using the closure tree, which is what preserves
TROD read-provenance byte-for-byte.

Semantics are the closure tree's, exactly: SQL three-valued logic with the
engine's truth normalization, ``compare_values`` total-order comparisons
(with a direct-operator fast path guarded against NaN, whose ordering
under ``compare_values`` differs from Python's), the planner's arithmetic
error messages, and lazy CASE/AND/OR evaluation. Any construct this
module does not specialize falls back to the planner closure for that
subtree; any failure to compile at all makes the entry points return
``None`` and the caller stays on the closure path.
"""

from __future__ import annotations

import re
import warnings
from typing import Any, Callable, Sequence

from repro.db.expr import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Param,
    UnaryOp,
    _div,
    _mod,
)
from repro.db.sql import planner
from repro.db.sql.planner import _like_regex
from repro.db.sql.functions import (
    AGGREGATE_NAMES,
    _SCALARS,
    call_scalar,
    make_accumulator,
)
from repro.db.types import compare_values
from repro.errors import ExecutionError

__all__ = [
    "compile_scalar",
    "compile_predicate_batch",
    "compile_projection_batch",
    "compile_join_build",
    "compile_join_probe",
    "compile_aggregate_programs",
]

#: Wrapper distinguishing bool group keys from 1/1.0 in raw-keyed dicts,
#: matching the SortKey grouping the row-at-a-time aggregate uses
#: (compare_values orders bool apart from numerics, but Python's
#: ``hash(True) == hash(1)`` with ``True == 1`` would merge them).
_BOOL_KEY = ("__repro_bool_key__",)

_CMP_PY = {
    "=": "==", "==": "==", "!=": "!=", "<>": "!=",
    "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}
_CMP_ZERO = {
    "=": "== 0", "==": "== 0", "!=": "!= 0", "<>": "!= 0",
    "<": "< 0", "<=": "<= 0", ">": "> 0", ">=": ">= 0",
}


def _pget(params: Sequence[Any], index: int) -> Any:
    try:
        return params[index]
    except IndexError:
        raise ExecutionError(
            f"statement uses parameter #{index + 1} but only "
            f"{len(params)} were supplied"
        ) from None


def _in_const(value: Any, items: tuple, saw_null: bool, negated: bool) -> Any:
    """IN over an all-literal list (``items`` excludes the NULL literals)."""
    if value is None:
        return None
    for candidate in items:
        if compare_values(value, candidate) == 0:
            return not negated
    if saw_null:
        return None
    return negated


class _Emitter:
    """Accumulates statement-level Python source for one expression tree.

    ``emit`` returns a *fragment*: the name of a local temp, a hoisted
    parameter, a bound constant, an inline literal, or a ``<row>[N]``
    indexing expression — all safe to reference more than once.
    """

    def __init__(self, layout: planner.Layout, env: dict, row: str = "r"):
        self.layout = layout
        self.env = env
        self.row = row
        self.lines: list[str] = []
        self.prologue: list[str] = []
        self.indent = 1
        self._n = 0
        self._params: dict[int, str] = {}
        self.const_args: list[str] = []

    def tmp(self) -> str:
        self._n += 1
        return f"_t{self._n}"

    def bind(self, value: Any, prefix: str = "_k") -> str:
        """Bind a Python object into the function as a fast local default."""
        self._n += 1
        name = f"{prefix}{self._n}"
        self.env[name] = value
        self.const_args.append(name)
        return name

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def localize(self, frag: str) -> str:
        """Copy a row-indexing fragment into a temp for repeated use."""
        if frag.startswith(self.row + "["):
            temp = self.tmp()
            self.line(f"{temp} = {frag}")
            return temp
        return frag

    def param(self, index: int) -> str:
        name = self._params.get(index)
        if name is None:
            name = f"_q{index}"
            self._params[index] = name
            self.prologue.append(f"    {name} = _pget(p, {index})")
            self.env.setdefault("_pget", _pget)
        return name

    # -- expression lowering ------------------------------------------------

    def emit(self, expr: Expr) -> str:
        if isinstance(expr, Literal):
            value = expr.value
            if value is None or value is True or value is False:
                return repr(value)
            if type(value) is int:
                return repr(value)
            return self.bind(value)
        if isinstance(expr, Param):
            return self.param(expr.index)
        if isinstance(expr, planner.SlotRef):
            return f"{self.row}[{expr.index}]"
        if isinstance(expr, ColumnRef):
            slot = self.layout.slot(expr.qualifier, expr.column)
            return f"{self.row}[{slot}]"
        if isinstance(expr, BinaryOp):
            return self._emit_binary(expr)
        if isinstance(expr, UnaryOp):
            return self._emit_unary(expr)
        if isinstance(expr, IsNull):
            operand = self.emit(expr.operand)
            out = self.tmp()
            test = "is not None" if expr.negated else "is None"
            self.line(f"{out} = {operand} {test}")
            return out
        if isinstance(expr, Between):
            return self._emit_between(expr)
        if isinstance(expr, InList):
            return self._emit_in(expr)
        if isinstance(expr, Like):
            return self._emit_like(expr)
        if isinstance(expr, Case):
            return self._emit_case(expr)
        if isinstance(expr, FuncCall):
            return self._emit_func(expr)
        return self._fallback(expr)

    def _fallback(self, expr: Expr) -> str:
        """Unsupported subtree: delegate to the planner closure."""
        closure = planner.compile_expr(expr, self.layout)
        name = self.bind(closure, "_c")
        out = self.tmp()
        self.line(f"{out} = {name}({self.row}, p)")
        return out

    def _emit_binary(self, expr: BinaryOp) -> str:
        op = expr.op
        if op == "AND" or op == "OR":
            a = self.emit(expr.left)
            out = self.tmp()
            stop = "False" if op == "AND" else "True"
            self.line(f"if {a} is {stop}:")
            self.line(f"    {out} = {stop}")
            self.line("else:")
            self.indent += 1
            b = self.emit(expr.right)
            self.line(f"if {b} is {stop}:")
            self.line(f"    {out} = {stop}")
            self.line(f"elif {a} is None or {b} is None:")
            self.line(f"    {out} = None")
            self.line("else:")
            self.line(f"    {out} = {'True' if op == 'AND' else 'False'}")
            self.indent -= 1
            return out
        if op in _CMP_PY:
            return self._emit_compare(expr, op)
        if op in ("+", "-", "*", "/", "%", "||"):
            return self._emit_arith(expr, op)
        return self._fallback(expr)

    def _emit_compare(self, expr: BinaryOp, op: str) -> str:
        """Comparison with a NaN-guarded direct-operator fast path.

        Same-class int/str/bool operands and NaN-free numeric pairs
        compare identically under Python's operators and under
        ``compare_values``; everything else (mixed classes, NaN — which
        ``compare_values`` orders greatest while Python orders nowhere)
        takes the total-order slow path. Literal operands specialize the
        guards at compile time so the hot ``col <op> constant`` shape
        pays one class check per row.
        """
        out = self.tmp()
        py, zero = _CMP_PY[op], _CMP_ZERO[op]
        a_lit = isinstance(expr.left, Literal)
        b_lit = isinstance(expr.right, Literal)
        if (a_lit and expr.left.value is None) or (
            b_lit and expr.right.value is None
        ):
            self.line(f"{out} = None")
            return out
        a = self.localize(self.emit(expr.left))
        b = self.localize(self.emit(expr.right))
        self.env.setdefault("_cmp", compare_values)
        none_checks = []
        if not a_lit:
            none_checks.append(f"{a} is None")
        if not b_lit:
            none_checks.append(f"{b} is None")
        if none_checks:
            self.line(f"if {' or '.join(none_checks)}:")
            self.line(f"    {out} = None")
            self.line("else:")
            self.indent += 1
        if a_lit and b_lit:
            ta, tb = type(expr.left.value), type(expr.right.value)
            va, vb = expr.left.value, expr.right.value
            if (ta is tb and ta in (int, str, bool)) or (
                ta in (int, float)
                and tb in (int, float)
                and va == va
                and vb == vb
            ):
                self.line(f"{out} = {a} {py} {b}")
            else:
                self.line(f"{out} = _cmp({a}, {b}) {zero}")
        elif a_lit or b_lit:
            lit_val = expr.left.value if a_lit else expr.right.value
            other = b if a_lit else a
            lit_cls = type(lit_val)
            if lit_cls is int or (lit_cls is float and lit_val == lit_val):
                cls = self.tmp()
                self.line(f"{cls} = ({other}).__class__")
                self.line(f"if {cls} is int:")
                self.line(f"    {out} = {a} {py} {b}")
                self.line(f"elif {cls} is float and {other} == {other}:")
                self.line(f"    {out} = {a} {py} {b}")
                self.line("else:")
                self.line(f"    {out} = _cmp({a}, {b}) {zero}")
            elif lit_cls in (str, bool):
                cls = self.tmp()
                self.line(f"{cls} = ({other}).__class__")
                self.line(f"if {cls} is {lit_cls.__name__}:")
                self.line(f"    {out} = {a} {py} {b}")
                self.line("else:")
                self.line(f"    {out} = _cmp({a}, {b}) {zero}")
            else:
                # NaN literal or exotic class: always the total order.
                self.line(f"{out} = _cmp({a}, {b}) {zero}")
        else:
            ca, cb = self.tmp(), self.tmp()
            self.line(f"{ca} = ({a}).__class__; {cb} = ({b}).__class__")
            self.line(
                f"if {ca} is {cb} and "
                f"({ca} is int or {ca} is str or {ca} is bool):"
            )
            self.line(f"    {out} = {a} {py} {b}")
            self.line(
                f"elif ({ca} is int or {ca} is float) and "
                f"({cb} is int or {cb} is float) and "
                f"{a} == {a} and {b} == {b}:"
            )
            self.line(f"    {out} = {a} {py} {b}")
            self.line("else:")
            self.line(f"    {out} = _cmp({a}, {b}) {zero}")
        if none_checks:
            self.indent -= 1
        return out

    def _emit_arith(self, expr: BinaryOp, op: str) -> str:
        out = self.tmp()
        msg = self.bind(f"invalid operands for {op}", "_m")
        self.line("try:")
        self.indent += 1
        a = self.localize(self.emit(expr.left))
        b = self.localize(self.emit(expr.right))
        self.line(f"if {a} is None or {b} is None:")
        self.line(f"    {out} = None")
        self.line("else:")
        if op in ("+", "-", "*"):
            self.line(f"    {out} = {a} {op} {b}")
        elif op == "||":
            self.line(f"    {out} = f'{{{a}}}{{{b}}}'")
        else:
            helper = self.bind(_div if op == "/" else _mod, "_h")
            self.line(f"    {out} = {helper}({a}, {b})")
        self.indent -= 1
        self.line("except TypeError:")
        self.line(f"    raise ExecutionError({msg}) from None")
        return out

    def _emit_unary(self, expr: UnaryOp) -> str:
        operand = self.localize(self.emit(expr.operand))
        if expr.op == "NOT":
            out = self.tmp()
            self.line(f"{out} = None if {operand} is None else not {operand}")
            return out
        if expr.op == "-":
            out = self.tmp()
            self.line(f"{out} = None if {operand} is None else -{operand}")
            return out
        return operand  # unary '+'

    def _emit_between(self, expr: Between) -> str:
        value = self.localize(self.emit(expr.operand))
        lo = self.localize(self.emit(expr.low))
        hi = self.localize(self.emit(expr.high))
        out = self.tmp()
        self.env.setdefault("_cmp", compare_values)
        self.line(f"if {value} is None or {lo} is None or {hi} is None:")
        self.line(f"    {out} = None")
        self.line("else:")
        inside = f"_cmp({value}, {lo}) >= 0 and _cmp({value}, {hi}) <= 0"
        if expr.negated:
            self.line(f"    {out} = not ({inside})")
        else:
            self.line(f"    {out} = {inside}")
        return out

    def _emit_in(self, expr: InList) -> str:
        if not all(isinstance(item, Literal) for item in expr.items):
            return self._fallback(expr)
        values = [item.value for item in expr.items]
        saw_null = any(v is None for v in values)
        items = tuple(v for v in values if v is not None)
        operand = self.emit(expr.operand)
        out = self.tmp()
        bound = self.bind(items)
        self.env.setdefault("_in_const", _in_const)
        self.line(
            f"{out} = _in_const({operand}, {bound}, {saw_null}, {expr.negated})"
        )
        return out

    def _emit_like(self, expr: Like) -> str:
        if not (isinstance(expr.pattern, Literal) and expr.pattern.value is not None):
            return self._fallback(expr)
        regex = self.bind(_like_regex(str(expr.pattern.value)), "_rx")
        operand = self.localize(self.emit(expr.operand))
        out = self.tmp()
        matched = f"bool({regex}.fullmatch(str({operand})))"
        if expr.negated:
            matched = f"not {matched}"
        self.line(f"{out} = None if {operand} is None else {matched}")
        return out

    def _emit_case(self, expr: Case) -> str:
        out = self.tmp()

        def branch(index: int) -> None:
            if index >= len(expr.branches):
                if expr.default is not None:
                    value = self.emit(expr.default)
                    self.line(f"{out} = {value}")
                else:
                    self.line(f"{out} = None")
                return
            cond_expr, value_expr = expr.branches[index]
            cond = self.emit(cond_expr)
            self.line(f"if {cond} is True:")
            self.indent += 1
            value = self.emit(value_expr)
            self.line(f"{out} = {value}")
            self.indent -= 1
            self.line("else:")
            self.indent += 1
            branch(index + 1)
            self.indent -= 1

        branch(0)
        return out

    def _emit_func(self, expr: FuncCall) -> str:
        if expr.name in AGGREGATE_NAMES:
            return self._fallback(expr)  # raises PlanningError, as before
        args = [self.emit(a) for a in expr.args]
        out = self.tmp()
        spec = _SCALARS.get(expr.name.upper())
        if spec is not None:
            fn, lo, hi = spec
            if lo <= len(args) and (hi is None or len(args) <= hi):
                bound = self.bind(fn, "_f")
                self.line(f"{out} = {bound}({', '.join(args)})")
                return out
        # Unknown name or bad arity: keep the runtime error semantics.
        call = self.bind(call_scalar, "_f")
        name = self.bind(expr.name)
        self.line(f"{out} = {call}({name}, [{', '.join(args)}])")
        return out


def _assemble(
    fn_name: str, signature: str, emitter: _Emitter, env: dict
) -> Callable:
    defaults = "".join(f", {name}={name}" for name in emitter.const_args)
    body = emitter.prologue + emitter.lines
    if not body:
        body = ["    pass"]
    source = f"def {fn_name}({signature}{defaults}):\n" + "\n".join(body)
    with warnings.catch_warnings():
        # Generated identity tests like ``_t1 is True`` are deliberate
        # (SQL truth normalization); silence CPython's literal-is lint.
        warnings.simplefilter("ignore", SyntaxWarning)
        code = compile(source, "<repro-codegen>", "exec")
    exec(code, env)  # noqa: S102 - source is generated by this module
    fn = env[fn_name]
    fn._src = source
    return fn


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def compile_scalar(expr: Expr, layout: planner.Layout) -> Callable | None:
    """``(row, params) -> value``, or None if codegen fails."""
    try:
        env: dict = {"ExecutionError": ExecutionError}
        emitter = _Emitter(layout, env, row="r")
        frag = emitter.emit(expr)
        emitter.line(f"return {frag}")
        return _assemble("_scalar", "r, p", emitter, env)
    except Exception:
        return None


def compile_predicate_batch(expr: Expr, layout: planner.Layout) -> Callable | None:
    """``(rows, params) -> list[row]`` keeping rows where expr IS TRUE."""
    try:
        env: dict = {"ExecutionError": ExecutionError}
        emitter = _Emitter(layout, env, row="r")
        emitter.indent = 2
        saved = emitter.lines
        emitter.lines = []
        frag = emitter.emit(expr)
        per_row = emitter.lines
        emitter.lines = saved
        emitter.indent = 1
        emitter.line("out = []")
        emitter.line("ap = out.append")
        emitter.line("for r in rows:")
        emitter.lines.extend(per_row)
        emitter.line(f"    if {frag} is True:")
        emitter.line("        ap(r)")
        emitter.line("return out")
        return _assemble("_pred", "rows, p", emitter, env)
    except Exception:
        return None


def compile_projection_batch(
    exprs: Sequence[Expr], layout: planner.Layout
) -> Callable | None:
    """``(rows, params) -> list[tuple]`` projecting each row."""
    try:
        env: dict = {"ExecutionError": ExecutionError}
        emitter = _Emitter(layout, env, row="r")
        emitter.indent = 2
        saved = emitter.lines
        emitter.lines = []
        frags = [emitter.emit(e) for e in exprs]
        per_row = emitter.lines
        emitter.lines = saved
        emitter.indent = 1
        packed = f"({', '.join(frags)},)" if frags else "()"
        if not per_row:
            # Pure fragments (slots/constants/params): one list comprehension.
            emitter.line(f"return [{packed} for r in rows]")
        else:
            emitter.line("out = []")
            emitter.line("ap = out.append")
            emitter.line("for r in rows:")
            emitter.lines.extend(per_row)
            emitter.line(f"    ap({packed})")
            emitter.line("return out")
        return _assemble("_proj", "rows, p", emitter, env)
    except Exception:
        return None


def _emit_key(emitter: _Emitter, key_exprs: Sequence[Expr]) -> tuple[list[str], str]:
    """Per-component fragments and the (scalar or tuple) dict key fragment.

    ``emit`` always returns an atom (a slot access, temp, bound constant,
    or literal), so fragments are safely repeatable without localizing —
    which keeps a bare-column key statement-free and eligible for the
    probe comprehension fast path.
    """
    frags = [emitter.emit(e) for e in key_exprs]
    if len(frags) == 1:
        return frags, frags[0]
    return frags, f"({', '.join(frags)},)"


def join_key_slot(
    key_exprs: Sequence[Expr], layout: planner.Layout
) -> int | None:
    """The tuple slot index when the join key is one bare column.

    The count-only join fast path (eager aggregation for ``COUNT(*)``
    over an equi-join) needs to extract probe keys with ``itemgetter``
    at C speed; that is only equivalent to the compiled probe when the
    key fragment is literally ``r[slot]``. Decided here, against the
    same emitter the probe uses, so the two can never disagree.
    """
    if len(key_exprs) != 1:
        return None
    try:
        emitter = _Emitter(layout, {}, row="r")
        frag = emitter.emit(key_exprs[0])
        if emitter.lines:
            return None
        match = re.fullmatch(r"r\[(\d+)\]", frag)
        return int(match.group(1)) if match else None
    except Exception:
        return None


def compile_join_build(
    key_exprs: Sequence[Expr], layout: planner.Layout
) -> Callable | None:
    """``(rows, params, table) -> None`` building the hash side in place.

    Single-column keys use the scalar value as the dict key; the matching
    probe function does the same, so bucketing is identical to the closure
    path's key tuples (tuple hashing delegates to the elements).
    """
    try:
        env: dict = {"ExecutionError": ExecutionError}
        emitter = _Emitter(layout, env, row="r")
        emitter.indent = 2
        saved = emitter.lines
        emitter.lines = []
        frags, key = _emit_key(emitter, key_exprs)
        per_row = emitter.lines
        emitter.lines = saved
        emitter.indent = 1
        emitter.line("get = table.get")
        emitter.line("for r in rows:")
        emitter.lines.extend(per_row)
        null_check = " or ".join(f"{f} is None" for f in frags)
        emitter.line(f"    if {null_check}:")
        emitter.line("        continue")
        emitter.line(f"    lst = get({key})")
        emitter.line("    if lst is None:")
        emitter.line(f"        table[{key}] = [r]")
        emitter.line("    else:")
        emitter.line("        lst.append(r)")
        return _assemble("_build", "rows, p, table", emitter, env)
    except Exception:
        return None


def compile_join_probe(
    key_exprs: Sequence[Expr],
    left_layout: planner.Layout,
    residual_expr: Expr | None,
    combined_layout: planner.Layout,
    right_width: int,
    kind: str,
) -> Callable | None:
    """``(rows, params, table) -> list[combined_row]`` probing the hash side."""
    try:
        env: dict = {"ExecutionError": ExecutionError}
        emitter = _Emitter(left_layout, env, row="r")
        left_join = kind == "left"
        simple = residual_expr is None and not left_join
        emitter.indent = 2
        saved = emitter.lines
        emitter.lines = []
        frags, key = _emit_key(emitter, key_exprs)
        per_row = emitter.lines
        emitter.lines = saved
        emitter.indent = 1
        if simple and not per_row and len(frags) == 1:
            # Pure single-column inner join: one comprehension. A NULL key
            # never appears in the table, so ``get`` misses naturally.
            emitter.env["_empty"] = ()
            emitter.line("get = table.get")
            emitter.line(
                f"return [r + rr for r in rows for rr in get({key}) or _empty]"
            )
            return _assemble("_probe", "rows, p, table", emitter, env)
        emitter.line("out = []")
        emitter.line("ap = out.append")
        emitter.line("get = table.get")
        if left_join:
            emitter.line(f"nullr = (None,) * {right_width}")
        emitter.line("for r in rows:")
        emitter.indent = 2
        emitter.lines.extend(per_row)
        null_check = " or ".join(f"{f} is None" for f in frags)
        if left_join:
            emitter.line(f"m = None if ({null_check}) else get({key})")
            emitter.line("if m is None:")
            emitter.line("    ap(r + nullr)")
            emitter.line("    continue")
            emitter.line("matched = False")
        else:
            emitter.line(f"if {null_check}:")
            emitter.line("    continue")
            emitter.line(f"m = get({key})")
            emitter.line("if m is None:")
            emitter.line("    continue")
        emitter.line("for rr in m:")
        emitter.indent = 3
        if residual_expr is not None:
            res_emitter = _Emitter(combined_layout, emitter.env, row="c")
            res_emitter.lines = emitter.lines
            res_emitter.indent = emitter.indent
            res_emitter._n = emitter._n + 1000
            res_emitter.const_args = emitter.const_args
            res_emitter.prologue = emitter.prologue
            res_emitter._params = emitter._params
            emitter.line("c = r + rr")
            frag = res_emitter.emit(residual_expr)
            emitter.indent = res_emitter.indent
            emitter.line(f"if {frag} is True:")
            if left_join:
                emitter.line("    matched = True")
                emitter.line("    ap(c)")
            else:
                emitter.line("    ap(c)")
        else:
            if left_join:
                emitter.line("matched = True")
            emitter.line("ap(r + rr)")
        emitter.indent = 2
        if left_join:
            emitter.line("if not matched:")
            emitter.line("    ap(r + nullr)")
        emitter.indent = 1
        emitter.line("return out")
        return _assemble("_probe", "rows, p, table", emitter, env)
    except Exception:
        return None


def compile_aggregate_programs(
    group_exprs: Sequence[Expr],
    agg_metas: Sequence[tuple[str, bool, bool, Expr | None]],
    layout: planner.Layout,
) -> tuple[Callable, Callable, Callable] | None:
    """Compiled grouped accumulation: ``(chunk_fn, init_fn, fin_fn)``.

    ``chunk_fn(rows, params, groups, order)`` folds one batch into the
    group states; ``init_fn()`` makes a fresh state (for the empty global
    group); ``fin_fn(state)`` finalizes one state into the aggregate value
    tuple. ``order`` accumulates ``(raw_key_tuple, state)`` in first-seen
    order, matching the closure path's output ordering.

    State layout: COUNT -> one counter slot; SUM/AVG -> (total, count)
    slots (``sum()`` over a list is the same left-to-right fold);
    MIN/MAX -> one best-so-far slot; DISTINCT variants keep real
    :class:`Accumulator` objects so set-based dedup semantics are shared.
    """
    try:
        env: dict = {"ExecutionError": ExecutionError, "_cmp": compare_values}
        emitter = _Emitter(layout, env, row="r")

        inits: list[str] = []  # python exprs building one state list
        fins: list[str] = []  # python exprs over state var "st"
        updates: list[tuple[str, ...]] = []  # lines per agg (row loop body)
        slot = 0
        pure_count_star = True
        for name, star, distinct, arg_expr in agg_metas:
            upper = name.upper()
            if distinct or upper not in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
                maker = emitter.bind(
                    (lambda n=name, s=star, d=distinct: make_accumulator(n, s, d)),
                    "_mk",
                )
                inits.append(f"{maker}()")
                fins.append(f"st[{slot}].result()")
                if star:
                    updates.append((f"st[{slot}].add(None)",))
                else:
                    updates.append(("__ARG__", f"st[{slot}].add(__V__)"))
                slot += 1
                pure_count_star = False
                continue
            if upper == "COUNT":
                inits.append("0")
                fins.append(f"st[{slot}]")
                if star:
                    updates.append((f"st[{slot}] += 1",))
                else:
                    updates.append(
                        ("__ARG__", "if __V__ is not None:", f"    st[{slot}] += 1")
                    )
                    pure_count_star = False
                slot += 1
            elif upper in ("SUM", "AVG"):
                inits.append("0")
                inits.append("0")
                if upper == "SUM":
                    fins.append(f"(st[{slot}] if st[{slot + 1}] else None)")
                else:
                    fins.append(
                        f"(st[{slot}] / st[{slot + 1}] if st[{slot + 1}] else None)"
                    )
                updates.append(
                    (
                        "__ARG__",
                        "if __V__ is not None:",
                        f"    st[{slot}] += __V__",
                        f"    st[{slot + 1}] += 1",
                    )
                )
                slot += 2
                pure_count_star = False
            else:  # MIN / MAX
                inits.append("None")
                fins.append(f"st[{slot}]")
                op = "> 0" if upper == "MAX" else "< 0"
                updates.append(
                    (
                        "__ARG__",
                        "if __V__ is not None:",
                        f"    _b = st[{slot}]",
                        "    if _b is None:",
                        f"        st[{slot}] = __V__",
                        f"    elif _cmp(__V__, _b) {op}:",
                        f"        st[{slot}] = __V__",
                    )
                )
                slot += 1
                pure_count_star = False

        env["_BOOL_KEY"] = _BOOL_KEY
        emitter.line("get = groups.get")
        grouped = bool(group_exprs)
        if grouped:
            emitter.line("oap = order.append")
            emitter.line("for r in rows:")
            emitter.indent = 2
            key_frags = [
                emitter.localize(emitter.emit(e)) for e in group_exprs
            ]
            wrapped = [
                f"({f} if {f}.__class__ is not bool else (_BOOL_KEY, {f}))"
                for f in key_frags
            ]
            if len(wrapped) == 1:
                key = wrapped[0]
            else:
                key = f"({', '.join(wrapped)},)"
            emitter.line(f"kk = {key}")
            emitter.line("st = get(kk)")
            emitter.line("if st is None:")
            emitter.line(f"    st = groups[kk] = [{', '.join(inits)}]")
            emitter.line(f"    oap((({', '.join(key_frags)},), st))")
        else:
            emitter.line("st = get(None)")
            emitter.line("if st is None:")
            emitter.line(f"    st = groups[None] = [{', '.join(inits)}]")
            emitter.line("    order.append(((), st))")
            if pure_count_star:
                # Only COUNT(*): the whole batch folds in O(1).
                for lines in updates:
                    for text in lines:
                        emitter.line(
                            text.replace("+= 1", "+= len(rows)")
                        )
                emitter.line("return None")
                emitter.indent = 1
                chunk = _assemble(
                    "_agg", "rows, p, groups, order", emitter, env
                )
                return chunk, _make_init(inits, env), _make_fin(fins, env)
            emitter.line("for r in rows:")
            emitter.indent = 2

        # Per-row aggregate updates; each __ARG__ marker evaluates that
        # aggregate's argument expression into __V__ at this point.
        for (meta, lines) in zip(agg_metas, updates):
            _name, star, _distinct, arg_expr = meta
            value_frag = None
            if not star and arg_expr is not None:
                value_frag = emitter.localize(emitter.emit(arg_expr))
            for text in lines:
                if text == "__ARG__":
                    continue
                emitter.line(text.replace("__V__", value_frag or "None"))
        emitter.indent = 1
        chunk = _assemble("_agg", "rows, p, groups, order", emitter, env)
        return chunk, _make_init(inits, env), _make_fin(fins, env)
    except Exception:
        return None


def _make_init(inits: list[str], env: dict) -> Callable:
    source = f"def _init():\n    return [{', '.join(inits)}]"
    exec(compile(source, "<repro-codegen>", "exec"), env)  # noqa: S102
    return env["_init"]


def _make_fin(fins: list[str], env: dict) -> Callable:
    source = f"def _fin(st):\n    return ({', '.join(fins)},)"
    exec(compile(source, "<repro-codegen>", "exec"), env)  # noqa: S102
    return env["_fin"]
