"""Plan construction and execution.

``execute_statement`` is the single entry point the database uses after
parsing. SELECTs are compiled into a small tree of pull-based plan nodes
(scan -> join -> filter -> aggregate -> sort -> project -> limit); DML and
DDL execute directly against the transaction / catalog.

Read provenance: every row a scan produces (after pushed-down filtering)
is recorded on the transaction as a :class:`ReadRecord`; when a statement
scans a table but matches nothing, a single null read is recorded — this
is exactly the shape of the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro.db.expr import Expr, Literal, split_conjuncts
from repro.db.result import ResultSet
from repro.db.schema import Column, TableSchema
from repro.db.sql import planner
from repro.db.sql.functions import make_accumulator
from repro.db.sql.nodes import (
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropIndexStmt,
    DropTableStmt,
    InsertStmt,
    SelectItem,
    SelectStmt,
    Statement,
    TableRef,
    UpdateStmt,
)
from repro.db.sql.planner import CompiledExpr, Layout, compile_expr
from repro.db.types import SortKey, coerce, type_from_sql_name
from repro.db.expr import ColumnRef, FuncCall
from repro.errors import (
    ExecutionError,
    IntegrityError,
    PlanningError,
    SchemaError,
    TypeCoercionError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import Database
    from repro.db.txn.manager import Transaction


@dataclass
class ExecContext:
    """Everything plan nodes need while producing rows."""

    database: "Database"
    txn: "Transaction"
    params: Sequence[Any]
    query_text: str
    track_reads: bool
    #: Rows a scan pulls between cooperative-scheduler yield points
    #: (0 disables yielding). Defaults to the database's knob, so every
    #: execution path — single-node, scatter branches, merge plans —
    #: inherits the same batching.
    batch_size: int = -1
    #: table name -> number of read records emitted by scans this statement.
    read_counts: dict[str, int] = field(default_factory=dict)
    scanned_tables: set[str] = field(default_factory=set)
    #: Whether this execution may run the compiled batch pipeline.
    #: Computed in ``__post_init__``: read provenance and observers force
    #: the row-at-a-time path, which records reads per row — the batch
    #: programs never see individual row pulls, so TROD traces must come
    #: from the interpreter to stay byte-identical.
    use_compiled: bool = field(init=False, default=False)
    #: The owning database's ``executor_stats`` dict (shared counters).
    exec_stats: dict[str, int] | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.batch_size < 0:
            self.batch_size = getattr(self.database, "scan_batch_size", 0)
        self.use_compiled = (
            bool(getattr(self.database, "compiled_execution", False))
            and not self.track_reads
            and not getattr(self.database, "observers", None)
        )
        self.exec_stats = getattr(self.database, "executor_stats", None)


def _iter_batches(rows: Iterable[tuple], size: int) -> Iterator[list[tuple]]:
    """Chunk an arbitrary row iterator into lists of at most ``size``."""
    if size <= 0:
        size = 1024
    chunk: list[tuple] = []
    append = chunk.append
    for row in rows:
        append(row)
        if len(chunk) >= size:
            yield chunk
            chunk = []
            append = chunk.append
    if chunk:
        yield chunk


class PlanNode:
    layout: Layout

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        raise NotImplementedError

    def batches(self, ctx: ExecContext) -> Iterator[list[tuple]]:
        """Batch-at-a-time row production: chunks of ``list[tuple]``.

        Operators with compiled programs override this to process whole
        batches per call; the default adapter chunks :meth:`rows`, so any
        node composes into a batch pipeline unchanged. Chunk boundaries
        carry no meaning — consumers must produce identical results for
        any chunking, including empty chunks.
        """
        yield from _iter_batches(self.rows(ctx), ctx.batch_size)

    def count_only(self, ctx: ExecContext) -> int | None:
        """Output row count without materializing rows, or None.

        A node may answer a pure ``COUNT(*)`` parent directly when it can
        prove the count without building its output tuples (eager
        aggregation). Implementations must be side-effect-identical to
        draining :meth:`batches` — same scans, locks, and scheduler
        yields — and must check every static precondition *before*
        consuming any child, so a None return leaves children untouched.
        """
        return None

    def describe(self) -> str:
        return type(self).__name__

    def children_nodes(self) -> list["PlanNode"]:
        return []

    def explain(self, depth: int = 0) -> list[str]:
        """Indented plan tree, root first (the EXPLAIN output)."""
        lines = ["  " * depth + self.describe()]
        for child in self.children_nodes():
            lines.extend(child.explain(depth + 1))
        return lines


class SingleRowNode(PlanNode):
    """FROM-less SELECT: one empty row."""

    def __init__(self):
        self.layout = Layout()

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        yield ()

    def batches(self, ctx: ExecContext) -> Iterator[list[tuple]]:
        yield [()]

    def describe(self) -> str:
        return "SingleRow"


class RowsNode(PlanNode):
    """Pre-materialized rows presented under a fixed layout.

    The sharding layer gathers rows from shard-local plans and feeds them
    into coordinator-side projection/aggregation through this node; it is
    also the vehicle for broadcast join sides.
    """

    def __init__(self, layout: Layout, rows: Sequence[tuple], label: str = "Rows"):
        self.layout = layout
        self._rows = rows
        self.label = label

    def set_rows(self, rows: Sequence[tuple]) -> None:
        """Swap in this execution's gathered rows (cached-plan reuse)."""
        self._rows = rows

    def describe(self) -> str:
        return f"{self.label}({len(self._rows)} rows)"

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        yield from self._rows

    def batches(self, ctx: ExecContext) -> Iterator[list[tuple]]:
        if self._rows:
            yield list(self._rows)


class ScanNode(PlanNode):
    """Table scan (or index probe) with an optional pushed-down filter."""

    def __init__(
        self,
        table: str,
        binding: str,
        schema: TableSchema,
        filter_fn: CompiledExpr | None,
        probe: tuple[Any, list[CompiledExpr]] | None = None,
    ):
        self.table = table
        self.binding = binding
        self.schema = schema
        self.filter_fn = filter_fn
        self.probe = probe  # (HashIndex, key expr fns evaluated without rows)
        self.layout = Layout.for_table(binding, schema.column_names)
        #: Human-readable filter text for EXPLAIN (set by the planner).
        self.filter_sql: str | None = None
        #: The merged pushed-down filter expression (set by the planner)
        #: and its compiled batch form (set by ``compile_plan_programs``).
        self.filter_expr: Expr | None = None
        self._c_filter: Callable | None = None

    def describe(self) -> str:
        parts = [f"Scan({self.table}"]
        if self.binding.lower() != self.table.lower():
            parts.append(f" AS {self.binding}")
        parts.append(")")
        if self.probe is not None:
            kind, index = self.probe[0], self.probe[1]
            label = "probe" if kind == "hash" else "range"
            parts.append(f" {label}={index.name}[{', '.join(index.columns)}]")
        if self.filter_sql:
            parts.append(f" filter[{self.filter_sql}]")
        return "".join(parts)

    def _resolve_source(self, ctx: ExecContext) -> Iterable[tuple[int, tuple]]:
        """The ``(row_id, values)`` source, pinned at call time."""
        if self.probe is not None:
            # ``candidates`` may be a live view of an index bucket; it is
            # only read (sorted() copies), never mutated.
            candidates: Iterable[int] = self._probe_candidates(ctx)
            pending = ctx.txn.pending_rows(self.table)
            if pending:
                merged = set(candidates)
                merged.update(rid for rid, _ in pending)
                candidates = merged
            # Resolve probe hits against the transaction now: probes are
            # bounded index lookups, and materializing them keeps a
            # streamed pipeline independent of the transaction's later
            # lifecycle (txn.get checks liveness on every call, whereas
            # txn.scan below returns an iterator pinned at call time).
            return [
                (rid, values)
                for rid in sorted(candidates)
                if (values := ctx.txn.get(self.table, rid)) is not None
            ]
        return ctx.txn.scan(self.table)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        ctx.scanned_tables.add(self.table)
        track = ctx.track_reads
        filter_fn = self.filter_fn
        source = self._resolve_source(ctx)
        # Imported here, not at module level: repro.runtime's package
        # __init__ imports the workflow module, which imports this
        # package back — after first use this is a sys.modules lookup.
        from repro.runtime.scheduler import CheckpointKind, maybe_checkpoint

        batch = ctx.batch_size
        # Count *down* to the next yield point instead of taking a modulo
        # every row: one decrement + compare per row, one reset per batch.
        countdown = batch
        for row_id, values in source:
            if batch:
                countdown -= 1
                if not countdown:
                    # Cooperative yield: under a scheduler running at
                    # 'batch' granularity, long scans hand the baton over
                    # here so concurrent readers interleave at
                    # deterministic row-batch boundaries. A no-op on
                    # unscheduled threads.
                    maybe_checkpoint(CheckpointKind.SCAN_BATCH, self.table)
                    countdown = batch
            if filter_fn is not None and filter_fn(values, ctx.params) is not True:
                continue
            if track:
                ctx.txn.record_read(self.table, row_id, values, ctx.query_text)
                ctx.read_counts[self.table] = ctx.read_counts.get(self.table, 0) + 1
            yield values

    def batches(self, ctx: ExecContext) -> Iterator[list[tuple]]:
        """Batch scan: whole chunks of values, filtered a batch at a time.

        Unfiltered latest-state scans serve straight off the store's
        shared materialized row list when the transaction's snapshot
        covers the table's last write (:meth:`Transaction.scan_materialized`
        — same locking and liveness side effects as ``scan``). Under a
        live cooperative scheduler chunks are exactly ``ctx.batch_size``
        rows with a SCAN_BATCH checkpoint per full chunk — the identical
        yield cadence the row path has — otherwise the whole scan is one
        chunk.
        """
        if ctx.track_reads:
            # Provenance needs per-row read records: delegate entirely.
            yield from _iter_batches(self.rows(ctx), ctx.batch_size)
            return
        ctx.scanned_tables.add(self.table)
        from repro.runtime.scheduler import (
            CheckpointKind,
            current_scheduler,
            maybe_checkpoint,
        )

        pairs: Iterable[tuple[int, tuple]] | None = None
        if self.probe is not None:
            pairs = self._resolve_source(ctx)
            values_list = [values for _rid, values in pairs]
        else:
            # Shared values-only list straight off the store — zero
            # per-execution extraction. Operators never mutate chunks,
            # so serving it as a chunk is safe.
            values_list = ctx.txn.scan_materialized(self.table)
            if values_list is None:
                values_list = [
                    values for _rid, values in self._resolve_source(ctx)
                ]
        stats = ctx.exec_stats
        batch = ctx.batch_size
        scheduled = batch and current_scheduler() is not None
        if not scheduled:
            # No scheduler to yield to: one chunk, no slicing overhead.
            out = self._filter_batch(values_list, ctx)
            if stats is not None:
                stats["batches_processed"] += 1
            if out:
                yield out
            return
        for start in range(0, len(values_list), batch):
            chunk = values_list[start : start + batch]
            if len(chunk) == batch:
                # Same cadence as the row path: a checkpoint fires after
                # every ``batch`` pulled rows (never after a short tail).
                maybe_checkpoint(CheckpointKind.SCAN_BATCH, self.table)
            out = self._filter_batch(chunk, ctx)
            if stats is not None:
                stats["batches_processed"] += 1
            if out:
                yield out

    def _filter_batch(self, chunk: list[tuple], ctx: ExecContext) -> list[tuple]:
        if self.filter_fn is None:
            return chunk
        c_filter = self._c_filter
        if c_filter is not None:
            out = c_filter(chunk, ctx.params)
        else:
            filter_fn = self.filter_fn
            params = ctx.params
            out = [v for v in chunk if filter_fn(v, params) is True]
        if ctx.exec_stats is not None:
            ctx.exec_stats["rows_filtered_at_scan"] += len(chunk) - len(out)
        return out

    def _probe_candidates(self, ctx: ExecContext) -> "Iterable[int]":
        """Candidate row ids from the index; may be a read-only live view."""
        if self.probe[0] == "hash":
            _kind, index, key_fns = self.probe
            key = tuple(fn((), ctx.params) for fn in key_fns)
            return index.lookup(key)
        _kind, index, low_fn, high_fn = self.probe
        low = (low_fn((), ctx.params),) if low_fn is not None else None
        high = (high_fn((), ctx.params),) if high_fn is not None else None
        if (low is not None and low[0] is None) or (
            high is not None and high[0] is None
        ):
            return ()  # NULL bound: comparison can never be TRUE
        return index.scan_between(low, high)


class FilterNode(PlanNode):
    def __init__(
        self,
        child: PlanNode,
        predicate: CompiledExpr,
        sql: str = "",
        expr: Expr | None = None,
    ):
        self.child = child
        self.predicate = predicate
        self.layout = child.layout
        self.sql = sql
        #: Raw predicate expression (for batch compilation) and its
        #: compiled whole-batch form (set by ``compile_plan_programs``).
        self.expr = expr
        self._c_batch: Callable | None = None

    def describe(self) -> str:
        return f"Filter[{self.sql}]" if self.sql else "Filter"

    def children_nodes(self) -> list["PlanNode"]:
        return [self.child]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        predicate = self.predicate
        for row in self.child.rows(ctx):
            if predicate(row, ctx.params) is True:
                yield row

    def batches(self, ctx: ExecContext) -> Iterator[list[tuple]]:
        c_batch = self._c_batch
        predicate = self.predicate
        params = ctx.params
        stats = ctx.exec_stats
        for chunk in self.child.batches(ctx):
            if c_batch is not None:
                out = c_batch(chunk, params)
            else:
                out = [row for row in chunk if predicate(row, params) is True]
            if stats is not None:
                stats["rows_filtered_post_join"] += len(chunk) - len(out)
            if out:
                yield out


class HashJoinNode(PlanNode):
    """Equi-join; builds on the right child, probes from the left."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_keys: list[CompiledExpr],
        right_keys: list[CompiledExpr],
        residual: CompiledExpr | None,
        kind: str,
    ):
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.kind = kind
        self.layout = left.layout.concat(right.layout)
        self._right_width = len(right.layout)
        #: Raw key/residual expressions (set by the planner) and their
        #: compiled batch forms (set by ``compile_plan_programs``).
        self.raw_left_keys: list[Expr] | None = None
        self.raw_right_keys: list[Expr] | None = None
        self.raw_residual: Expr | None = None
        self._c_build: Callable | None = None
        self._c_probe: Callable | None = None
        #: Probe-key tuple slot when the key is one bare column (set by
        #: ``compile_plan_programs``); enables :meth:`count_only`.
        self._count_key_slot: int | None = None

    def describe(self) -> str:
        return f"HashJoin({self.kind}, {len(self.left_keys)} key(s))"

    def children_nodes(self) -> list["PlanNode"]:
        return [self.left, self.right]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        for row in self.right.rows(ctx):
            key = tuple(fn(row, ctx.params) for fn in self.right_keys)
            if None in key:
                continue  # NULL never equi-joins
            table.setdefault(key, []).append(row)
        null_right = (None,) * self._right_width
        for left_row in self.left.rows(ctx):
            key = tuple(fn(left_row, ctx.params) for fn in self.left_keys)
            matched = False
            if None not in key:
                for right_row in table.get(key, ()):
                    combined = left_row + right_row
                    if (
                        self.residual is not None
                        and self.residual(combined, ctx.params) is not True
                    ):
                        continue
                    matched = True
                    yield combined
            if not matched and self.kind == "left":
                yield left_row + null_right

    def batches(self, ctx: ExecContext) -> Iterator[list[tuple]]:
        build, probe = self._c_build, self._c_probe
        if build is None or probe is None:
            yield from _iter_batches(self.rows(ctx), ctx.batch_size)
            return
        params = ctx.params
        table: dict = {}
        for chunk in self.right.batches(ctx):
            build(chunk, params, table)
        for chunk in self.left.batches(ctx):
            out = probe(chunk, params, table)
            if out:
                yield out

    def count_only(self, ctx: ExecContext) -> int | None:
        """Inner equi-join output count without materializing join rows.

        Build side becomes a key -> multiplicity map; probe keys are
        histogrammed with :class:`collections.Counter` (a C loop) and the
        count is the dot product. Matches the compiled probe exactly:
        the key slot was proven to be a bare ``r[slot]`` by the code
        generator, build-side NULL keys were skipped at build, and probe
        NULL/absent keys miss the map. Only engages for inner joins with
        no residual, where dropping the concatenated tuples is invisible
        to a COUNT(*).
        """
        build = self._c_build
        if (
            build is None
            or self.kind != "inner"
            or self.raw_residual is not None
            or self._count_key_slot is None
        ):
            return None
        from collections import Counter
        from operator import itemgetter

        table: dict = {}
        for chunk in self.right.batches(ctx):
            build(chunk, ctx.params, table)
        sizes = {key: len(matches) for key, matches in table.items()}
        get_size = sizes.get
        key_of = itemgetter(self._count_key_slot)
        total = 0
        for chunk in self.left.batches(ctx):
            for key, count in Counter(map(key_of, chunk)).items():
                size = get_size(key)
                if size:
                    total += count * size
        return total


class NestedLoopJoinNode(PlanNode):
    """General join for non-equi conditions (and cross joins)."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        condition: CompiledExpr | None,
        kind: str,
    ):
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.layout = left.layout.concat(right.layout)
        self._right_width = len(right.layout)

    def describe(self) -> str:
        return f"NestedLoopJoin({self.kind})"

    def children_nodes(self) -> list["PlanNode"]:
        return [self.left, self.right]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        right_rows = list(self.right.rows(ctx))
        null_right = (None,) * self._right_width
        for left_row in self.left.rows(ctx):
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if (
                    self.condition is not None
                    and self.condition(combined, ctx.params) is not True
                ):
                    continue
                matched = True
                yield combined
            if not matched and self.kind == "left":
                yield left_row + null_right


@dataclass
class AggSpec:
    name: str
    star: bool
    distinct: bool
    arg: CompiledExpr | None


class AggregateNode(PlanNode):
    """GROUP BY: output rows are (group key values..., aggregate values...)."""

    def __init__(
        self,
        child: PlanNode,
        key_fns: list[CompiledExpr],
        agg_specs: list[AggSpec],
        global_group: bool,
    ):
        self.child = child
        self.key_fns = key_fns
        self.agg_specs = agg_specs
        self.global_group = global_group
        self.layout = Layout()
        for i in range(len(key_fns) + len(agg_specs)):
            self.layout.add(None, f"_agg{i}")
        #: Raw group/aggregate expressions over the child layout (set by
        #: the planner) and the compiled ``(chunk_fn, init_fn, fin_fn)``
        #: accumulation programs (set by ``compile_plan_programs``).
        self.raw_group_exprs: list[Expr] | None = None
        self.raw_aggs: list | None = None
        self.input_layout: Layout | None = None
        self._c_progs: tuple | None = None
        #: Global aggregate whose outputs are all plain COUNT(*) — the
        #: one shape a child's :meth:`PlanNode.count_only` can answer.
        self._pure_count_star = global_group and all(
            s.name.upper() == "COUNT" and s.star and not s.distinct
            for s in agg_specs
        )

    def describe(self) -> str:
        aggs = ", ".join(s.name for s in self.agg_specs)
        return f"Aggregate(groups={len(self.key_fns)}, aggs=[{aggs}])"

    def children_nodes(self) -> list["PlanNode"]:
        return [self.child]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for row in self.child.rows(ctx):
            key = tuple(fn(row, ctx.params) for fn in self.key_fns)
            hashable = tuple(SortKey(v) for v in key)
            accs = groups.get(hashable)
            if accs is None:
                accs = [
                    make_accumulator(s.name, s.star, s.distinct)
                    for s in self.agg_specs
                ]
                groups[hashable] = accs
                order.append(key)
            for spec, acc in zip(self.agg_specs, accs):
                if spec.star:
                    acc.add(None)
                else:
                    acc.add(spec.arg(row, ctx.params))
        if not groups and self.global_group:
            accs = [
                make_accumulator(s.name, s.star, s.distinct) for s in self.agg_specs
            ]
            yield tuple(a.result() for a in accs)
            return
        for key in order:
            hashable = tuple(SortKey(v) for v in key)
            accs = groups[hashable]
            yield key + tuple(a.result() for a in accs)

    def batches(self, ctx: ExecContext) -> Iterator[list[tuple]]:
        progs = self._c_progs
        if progs is None:
            yield from _iter_batches(self.rows(ctx), ctx.batch_size)
            return
        chunk_fn, init_fn, fin_fn = progs
        if self._pure_count_star:
            # Global COUNT(*): ask the child for the bare count (eager
            # aggregation). None means unsupported — and, by the
            # count_only contract, that nothing was consumed yet.
            count = self.child.count_only(ctx)
            if count is not None:
                yield [(count,) * len(self.agg_specs)]
                return
        params = ctx.params
        groups: dict = {}
        order: list = []
        for chunk in self.child.batches(ctx):
            chunk_fn(chunk, params, groups, order)
        if not order:
            if self.global_group:
                yield [fin_fn(init_fn())]
            return
        yield [key + fin_fn(state) for key, state in order]


class SortNode(PlanNode):
    def __init__(self, child: PlanNode, keys: list[tuple[CompiledExpr, bool]]):
        self.child = child
        self.keys = keys
        self.layout = child.layout

    def describe(self) -> str:
        dirs = ", ".join("asc" if asc else "desc" for _fn, asc in self.keys)
        return f"Sort({dirs})"

    def children_nodes(self) -> list["PlanNode"]:
        return [self.child]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        materialized = list(self.child.rows(ctx))
        yield from self._sorted(materialized, ctx)

    def _sorted(self, materialized: list[tuple], ctx: ExecContext) -> list[tuple]:
        # Stable multi-key sort: apply keys from last to first.
        for fn, ascending in reversed(self.keys):
            materialized.sort(
                key=lambda row: SortKey(fn(row, ctx.params)), reverse=not ascending
            )
        return materialized

    def batches(self, ctx: ExecContext) -> Iterator[list[tuple]]:
        materialized: list[tuple] = []
        for chunk in self.child.batches(ctx):
            materialized.extend(chunk)
        if materialized:
            yield self._sorted(materialized, ctx)


class ProjectNode(PlanNode):
    def __init__(self, child: PlanNode, exprs: list[CompiledExpr], names: list[str]):
        self.child = child
        self.exprs = exprs
        self.names = names
        #: Raw projection expressions over the child layout (set by the
        #: planner) and the compiled whole-batch projection (set by
        #: ``compile_plan_programs``).
        self.raw_exprs: list[Expr] | None = None
        self.input_layout: Layout | None = None
        self._c_batch: Callable | None = None
        self.layout = Layout()
        for name in names:
            try:
                self.layout.add(None, name)
            except PlanningError:
                # Duplicate output names are legal in SQL; keep positional.
                self.layout.add(None, f"{name}#{len(self.layout)}")

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"

    def children_nodes(self) -> list["PlanNode"]:
        return [self.child]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        exprs = self.exprs
        for row in self.child.rows(ctx):
            yield tuple(fn(row, ctx.params) for fn in exprs)

    def batches(self, ctx: ExecContext) -> Iterator[list[tuple]]:
        c_batch = self._c_batch
        params = ctx.params
        if c_batch is not None:
            for chunk in self.child.batches(ctx):
                yield c_batch(chunk, params)
            return
        exprs = self.exprs
        for chunk in self.child.batches(ctx):
            yield [tuple(fn(row, params) for fn in exprs) for row in chunk]


class DistinctNode(PlanNode):
    def __init__(self, child: PlanNode):
        self.child = child
        self.layout = child.layout

    def describe(self) -> str:
        return "Distinct"

    def children_nodes(self) -> list["PlanNode"]:
        return [self.child]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.rows(ctx):
            key = tuple(SortKey(v) for v in row)
            if key in seen:
                continue
            seen.add(key)
            yield row

    def batches(self, ctx: ExecContext) -> Iterator[list[tuple]]:
        seen: set[tuple] = set()
        add = seen.add
        for chunk in self.child.batches(ctx):
            out = []
            for row in chunk:
                key = tuple(SortKey(v) for v in row)
                if key not in seen:
                    add(key)
                    out.append(row)
            if out:
                yield out


class LimitNode(PlanNode):
    def __init__(
        self,
        child: PlanNode,
        limit: CompiledExpr | None,
        offset: CompiledExpr | None,
    ):
        self.child = child
        self.limit = limit
        self.offset = offset
        self.layout = child.layout

    def describe(self) -> str:
        return "Limit"

    def children_nodes(self) -> list["PlanNode"]:
        return [self.child]

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        limit = self.limit((), ctx.params) if self.limit is not None else None
        offset = self.offset((), ctx.params) if self.offset is not None else 0
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise ExecutionError(f"LIMIT must be a non-negative integer, got {limit!r}")
        if not isinstance(offset, int) or offset < 0:
            raise ExecutionError(f"OFFSET must be a non-negative integer, got {offset!r}")
        if limit == 0:
            return
        produced = 0
        skipped = 0
        for row in self.child.rows(ctx):
            if skipped < offset:
                skipped += 1
                continue
            produced += 1
            yield row
            if limit is not None and produced >= limit:
                # Stop pulling immediately after the last wanted row:
                # the entire pipeline below is generators, so this is
                # what terminates the scan early for LIMIT queries.
                return

    def batches(self, ctx: ExecContext) -> Iterator[list[tuple]]:
        limit = self.limit((), ctx.params) if self.limit is not None else None
        offset = self.offset((), ctx.params) if self.offset is not None else 0
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise ExecutionError(f"LIMIT must be a non-negative integer, got {limit!r}")
        if not isinstance(offset, int) or offset < 0:
            raise ExecutionError(f"OFFSET must be a non-negative integer, got {offset!r}")
        if limit == 0:
            return
        to_skip = offset
        produced = 0
        for chunk in self.child.batches(ctx):
            if to_skip:
                if to_skip >= len(chunk):
                    to_skip -= len(chunk)
                    continue
                chunk = chunk[to_skip:]
                to_skip = 0
            if limit is not None and produced + len(chunk) >= limit:
                yield chunk[: limit - produced]
                return
            produced += len(chunk)
            yield chunk


# ---------------------------------------------------------------------------
# SELECT planning
# ---------------------------------------------------------------------------


#: Builds the access-path node for one table reference. Receives the
#: pieces the default planner computed (pushed-down filter, chosen index
#: probe, the pushed conjuncts themselves); returning None falls back to
#: a plain ScanNode. The sharding layer uses this to substitute broadcast
#: row sources for non-partitioned join sides.
ScanFactory = Callable[
    [str, str, TableSchema, CompiledExpr | None, tuple | None, list[Expr]],
    PlanNode | None,
]


def build_select_plan(
    stmt: SelectStmt, database: "Database", txn: "Transaction"
) -> tuple[PlanNode, list[str]]:
    if stmt.from_table is None:
        if stmt.joins:
            raise PlanningError("JOIN without FROM")
        result = plan_projection(stmt, SingleRowNode(), Layout())
    else:
        plan = build_from_where(stmt, database, txn)
        result = plan_projection(stmt, plan, plan.layout)
    if getattr(database, "compiled_execution", False) and getattr(
        database, "plan_cache_enabled", True
    ):
        # Compile once per *cached* plan: with the plan cache disabled
        # every statement would pay codegen with no reuse to amortize
        # it, so replanned statements stay on the closure path.
        compile_plan_programs(result[0], database)
        stats = getattr(database, "executor_stats", None)
        if stats is not None:
            stats["plans_compiled"] += 1
    return result


def compile_plan_programs(plan: PlanNode, database: "Database") -> None:
    """Attach compiled batch programs to a plan tree, once per plan.

    Runs at plan-build time, so a cached plan pays code generation once
    and every execution reuses the specialized functions. Any node whose
    expressions fail to compile silently keeps its closure fallback (the
    entry points in :mod:`repro.db.sql.compile` return None on failure
    and the batch operators check for None).
    """
    if getattr(plan, "_c_done", False):
        return
    plan._c_done = True
    for child in plan.children_nodes():
        compile_plan_programs(child, database)
    from repro.db.sql import compile as codegen

    if isinstance(plan, ScanNode):
        if plan.filter_expr is not None:
            plan._c_filter = codegen.compile_predicate_batch(
                plan.filter_expr, plan.layout
            )
    elif isinstance(plan, FilterNode):
        if plan.expr is not None:
            plan._c_batch = codegen.compile_predicate_batch(
                plan.expr, plan.child.layout
            )
    elif isinstance(plan, ProjectNode):
        if plan.raw_exprs is not None and plan.input_layout is not None:
            plan._c_batch = codegen.compile_projection_batch(
                plan.raw_exprs, plan.input_layout
            )
    elif isinstance(plan, HashJoinNode):
        if plan.raw_left_keys is not None and plan.raw_right_keys is not None:
            build = codegen.compile_join_build(
                plan.raw_right_keys, plan.right.layout
            )
            probe = codegen.compile_join_probe(
                plan.raw_left_keys,
                plan.left.layout,
                plan.raw_residual,
                plan.layout,
                len(plan.right.layout),
                plan.kind,
            )
            if build is not None and probe is not None:
                plan._c_build, plan._c_probe = build, probe
                plan._count_key_slot = codegen.join_key_slot(
                    plan.raw_left_keys, plan.left.layout
                )
    elif isinstance(plan, AggregateNode):
        if plan.raw_aggs is not None and plan.input_layout is not None:
            metas = [
                (
                    agg.name,
                    agg.star,
                    agg.distinct,
                    agg.args[0] if not agg.star and agg.args else None,
                )
                for agg in plan.raw_aggs
            ]
            plan._c_progs = codegen.compile_aggregate_programs(
                plan.raw_group_exprs or [], metas, plan.input_layout
            )
def _pipeline_blocking(node: PlanNode) -> bool:
    """Whether the subtree must consume all input before the first row.

    LIMIT over a streaming (non-blocking) subtree keeps the row-at-a-time
    path so its short-circuit stops the scan after the last wanted row;
    over a Sort/Aggregate the input is fully drained either way and the
    batch pipeline wins.
    """
    if isinstance(node, (SortNode, AggregateNode)):
        return True
    if isinstance(node, (FilterNode, ProjectNode, DistinctNode, LimitNode)):
        return _pipeline_blocking(node.child)
    return False


def _drain_rows(plan: PlanNode, ctx: ExecContext) -> list[tuple]:
    """Materialize a plan's full output, batch pipeline when eligible."""
    if ctx.use_compiled and not (
        isinstance(plan, LimitNode) and not _pipeline_blocking(plan.child)
    ):
        chunks = plan.batches(ctx)
        first = next(chunks, None)
        if first is None:
            return []
        second = next(chunks, None)
        if second is None:
            return first
        out = list(first)
        out.extend(second)
        for chunk in chunks:
            out.extend(chunk)
        return out
    return list(plan.rows(ctx))


def build_from_where(
    stmt: SelectStmt,
    database: "Database",
    txn: "Transaction",
    scan_factory: ScanFactory | None = None,
) -> PlanNode:
    """The FROM/JOIN/WHERE portion of a SELECT plan (no projection).

    Returns a node producing fully filtered joined rows in the combined
    FROM layout. ``scan_factory`` lets callers substitute custom access
    paths per table (see :data:`ScanFactory`).
    """
    refs = stmt.table_refs()
    bindings: list[tuple[str, str, TableSchema]] = []  # (binding, canonical, schema)
    seen_bindings: set[str] = set()
    for ref in refs:
        canonical = database.catalog.resolve(ref.table)
        schema = database.catalog.get(ref.table)
        binding = ref.binding
        if binding.lower() in seen_bindings:
            raise PlanningError(f"duplicate table binding {binding!r}")
        seen_bindings.add(binding.lower())
        bindings.append((binding, canonical, schema))

    full_layout = Layout()
    for binding, _canonical, schema in bindings:
        for column in schema.column_names:
            full_layout.add(binding, column)

    conjuncts = [
        planner.fold_constants(c) for c in split_conjuncts(stmt.where)
    ]
    # A conjunct folded to TRUE filters nothing; drop it entirely.
    conjuncts = [
        c
        for c in conjuncts
        if not (isinstance(c, Literal) and c.value is True)
    ]
    consumed: set[int] = set()
    pushdown = getattr(database, "predicate_pushdown_enabled", True)

    # Classify single-table conjuncts for pushdown (inner-join tables only;
    # pushing WHERE below a LEFT join's null-extended side changes results).
    left_join_bindings = {
        join.table.binding.lower() for join in stmt.joins if join.kind == "left"
    }
    pushed: dict[str, list[Expr]] = {}
    if pushdown:
        for i, conjunct in enumerate(conjuncts):
            used = planner.bindings_used(conjunct, full_layout)
            if used is not None and len(used) == 1:
                owner = next(iter(used))
                if owner not in left_join_bindings:
                    pushed.setdefault(owner, []).append(conjunct)
                    consumed.add(i)

    def make_scan(binding: str, canonical: str, schema: TableSchema) -> PlanNode:
        own_layout = Layout.for_table(binding, schema.column_names)
        own_conjuncts = pushed.get(binding.lower(), [])
        filter_fn = None
        merged: Expr | None = None
        if own_conjuncts:
            for conjunct in own_conjuncts:
                from repro.db.expr import BinaryOp

                merged = (
                    conjunct if merged is None else BinaryOp("AND", merged, conjunct)
                )
            filter_fn = compile_expr(merged, own_layout)
        probe = _find_probe(database, canonical, schema, own_conjuncts, binding, txn)
        if scan_factory is not None:
            node = scan_factory(
                binding, canonical, schema, filter_fn, probe, own_conjuncts
            )
            if node is not None:
                return node
        scan = ScanNode(canonical, binding, schema, filter_fn, probe)
        if own_conjuncts:
            scan.filter_sql = " AND ".join(c.sql() for c in own_conjuncts)
            scan.filter_expr = merged
        return scan

    binding0, canonical0, schema0 = bindings[0]
    plan: PlanNode = make_scan(binding0, canonical0, schema0)
    accumulated = {binding0.lower()}

    for join, (binding, canonical, schema) in zip(stmt.joins, bindings[1:]):
        right = make_scan(binding, canonical, schema)
        join_conjuncts: list[Expr] = []
        if join.on is not None:
            join_conjuncts.extend(split_conjuncts(join.on))
        if join.kind != "left":
            # WHERE conjuncts spanning exactly the joined tables can serve
            # as additional join predicates for inner joins.
            for i, conjunct in enumerate(conjuncts):
                if i in consumed:
                    continue
                used = planner.bindings_used(conjunct, full_layout)
                if (
                    used is not None
                    and binding.lower() in used
                    and used <= accumulated | {binding.lower()}
                ):
                    join_conjuncts.append(conjunct)
                    consumed.add(i)
        pairs, residual = planner.extract_equi_pairs(
            join_conjuncts, accumulated, {binding.lower()}, full_layout
        )
        combined_layout = plan.layout.concat(right.layout)
        residual_fn = None
        merged_residual: Expr | None = None
        if residual:
            for conjunct in residual:
                from repro.db.expr import BinaryOp

                merged_residual = (
                    conjunct
                    if merged_residual is None
                    else BinaryOp("AND", merged_residual, conjunct)
                )
            residual_fn = compile_expr(merged_residual, combined_layout)
        if pairs:
            left_keys = [compile_expr(l, plan.layout) for l, _ in pairs]
            right_keys = [compile_expr(r, right.layout) for _, r in pairs]
            # A cross join that gained equi keys from WHERE is an inner join.
            kind = "inner" if join.kind == "cross" else join.kind
            join_node = HashJoinNode(
                plan, right, left_keys, right_keys, residual_fn, kind
            )
            join_node.raw_left_keys = [l for l, _ in pairs]
            join_node.raw_right_keys = [r for _, r in pairs]
            join_node.raw_residual = merged_residual
            plan = join_node
        else:
            plan = NestedLoopJoinNode(plan, right, residual_fn, join.kind)
        accumulated.add(binding.lower())

    remaining = [c for i, c in enumerate(conjuncts) if i not in consumed]
    if remaining:
        merged = None
        for conjunct in remaining:
            from repro.db.expr import BinaryOp

            merged = conjunct if merged is None else BinaryOp("AND", merged, conjunct)
        plan = FilterNode(
            plan, compile_expr(merged, plan.layout), sql=merged.sql(), expr=merged
        )

    return plan


def _find_probe(
    database: "Database",
    canonical: str,
    schema: TableSchema,
    own_conjuncts: list[Expr],
    binding: str,
    txn: "Transaction",
) -> tuple | None:
    """Choose an index access path from the pushed-down conjuncts.

    Equality conjuncts binding a hash index's columns yield a hash probe
    ``("hash", index, key_fns)``; range conjuncts (<, <=, >, >=, BETWEEN)
    on a single-column sorted index yield a range probe
    ``("sorted", index, low_fn, high_fn)``.

    Probes apply only under SERIALIZABLE isolation: shared indexes
    reflect the latest committed state, which is exactly what a 2PL
    reader sees; under SNAPSHOT/READ_COMMITTED a probe could miss rows
    whose old version matches, so those isolation levels scan.
    """
    from repro.db.expr import Between, BinaryOp, ColumnRef, Literal, Param
    from repro.db.index import SortedIndex
    from repro.db.txn.manager import IsolationLevel

    if txn.isolation is not IsolationLevel.SERIALIZABLE:
        return None
    empty = Layout()

    eq_values: dict[str, Expr] = {}
    bounds: dict[str, dict[str, Expr]] = {}  # col -> {"low": e, "high": e}

    def note_bound(column: str, side: str, expr: Expr) -> None:
        bounds.setdefault(column, {}).setdefault(side, expr)

    for conjunct in own_conjuncts:
        if isinstance(conjunct, Between) and isinstance(
            conjunct.operand, ColumnRef
        ) and not conjunct.negated:
            column = conjunct.operand.column.lower()
            if (
                schema.has_column(column)
                and isinstance(conjunct.low, (Literal, Param))
                and isinstance(conjunct.high, (Literal, Param))
            ):
                note_bound(column, "low", conjunct.low)
                note_bound(column, "high", conjunct.high)
            continue
        if not isinstance(conjunct, BinaryOp):
            continue
        sides = [
            (conjunct.left, conjunct.right, conjunct.op),
            (conjunct.right, conjunct.left, _flip_cmp(conjunct.op)),
        ]
        for col_side, val_side, op in sides:
            if op is None:
                continue
            if not (
                isinstance(col_side, ColumnRef)
                and isinstance(val_side, (Literal, Param))
                and schema.has_column(col_side.column)
            ):
                continue
            column = col_side.column.lower()
            if op in ("=", "=="):
                eq_values.setdefault(column, val_side)
            elif op in ("<", "<="):
                note_bound(column, "high", val_side)
            elif op in (">", ">="):
                note_bound(column, "low", val_side)
            break

    if eq_values:
        index = database.index_set(canonical).equality_index_for(set(eq_values))
        if index is not None:
            key_fns = [
                compile_expr(eq_values[c.lower()], empty) for c in index.columns
            ]
            return ("hash", index, key_fns)

    for column, sides in bounds.items():
        for index in database.index_set(canonical).indexes.values():
            if (
                isinstance(index, SortedIndex)
                and len(index.columns) == 1
                and index.columns[0].lower() == column
            ):
                low = compile_expr(sides["low"], empty) if "low" in sides else None
                high = (
                    compile_expr(sides["high"], empty) if "high" in sides else None
                )
                return ("sorted", index, low, high)
    return None


def _flip_cmp(op: str) -> str | None:
    """Mirror a comparison when the column is on the right-hand side."""
    return {
        "=": "=", "==": "==", "<": ">", "<=": ">=", ">": "<", ">=": "<=",
    }.get(op)


def plan_projection(
    stmt: SelectStmt, plan: PlanNode, input_layout: Layout
) -> tuple[PlanNode, list[str]]:
    """Projection, aggregation, ORDER/DISTINCT/LIMIT on top of a row source."""
    # Expand stars into concrete expressions.
    proj: list[tuple[Expr, str]] = []
    for item in stmt.items:
        if item.star:
            qualifiers = (
                [item.star_qualifier]
                if item.star_qualifier
                else sorted(
                    input_layout.qualifiers(),
                    key=lambda q: min(
                        slot for _c, slot in input_layout.columns_of(q)
                    ),
                )
            )
            if not qualifiers and item.star_qualifier is None:
                raise PlanningError("SELECT * requires a FROM clause")
            for qualifier in qualifiers:
                columns = input_layout.columns_of(qualifier)
                if not columns:
                    raise PlanningError(f"unknown table alias {qualifier!r}")
                for column, _slot in columns:
                    proj.append((ColumnRef(column, qualifier=qualifier), column))
        else:
            name = item.alias or _default_name(item.expr)
            proj.append((item.expr, name))

    out_names = [name for _, name in proj]
    has_aggregates = bool(stmt.group_by) or any(
        planner.find_aggregates([e]) for e, _ in proj
    ) or (stmt.having is not None)

    if has_aggregates:
        plan = _plan_aggregate(stmt, plan, input_layout, proj)
        # Sorting for aggregate queries references output columns.
        plan = _plan_order_distinct_limit(stmt, plan, out_names, aggregated=True)
        return plan, out_names

    # Non-aggregate path: sort before projection when the ORDER BY
    # references input columns; otherwise after, by output names.
    order_fns: list[tuple[CompiledExpr, bool]] = []
    order_on_input = True
    for item in stmt.order_by:
        try:
            order_fns.append((compile_expr(item.expr, input_layout), item.ascending))
        except PlanningError:
            order_on_input = False
            break
    if stmt.order_by and order_on_input and not stmt.distinct:
        plan = SortNode(plan, order_fns)
        sort_done = True
    else:
        sort_done = False

    exprs = [compile_expr(e, input_layout) for e, _ in proj]
    project = ProjectNode(plan, exprs, out_names)
    project.raw_exprs = [e for e, _ in proj]
    project.input_layout = input_layout
    plan = project
    if stmt.distinct:
        plan = DistinctNode(plan)
    if stmt.order_by and not sort_done:
        out_layout = plan.layout
        fns = [
            (compile_expr(item.expr, out_layout), item.ascending)
            for item in stmt.order_by
        ]
        plan = SortNode(plan, fns)
    if stmt.limit is not None or stmt.offset is not None:
        empty = Layout()
        plan = LimitNode(
            plan,
            compile_expr(stmt.limit, empty) if stmt.limit is not None else None,
            compile_expr(stmt.offset, empty) if stmt.offset is not None else None,
        )
    return plan, out_names


def _plan_aggregate(
    stmt: SelectStmt,
    plan: PlanNode,
    input_layout: Layout,
    proj: list[tuple[Expr, str]],
) -> PlanNode:
    group_exprs = list(stmt.group_by)
    group_slots = {e.sql(): i for i, e in enumerate(group_exprs)}
    all_exprs: list[Expr | None] = [e for e, _ in proj]
    all_exprs.append(stmt.having)
    all_exprs.extend(item.expr for item in stmt.order_by)
    aggregates = planner.find_aggregates(all_exprs)
    agg_slots = {
        agg.sql(): len(group_exprs) + i for i, agg in enumerate(aggregates)
    }

    key_fns = [compile_expr(e, input_layout) for e in group_exprs]
    agg_specs = []
    for agg in aggregates:
        arg = None
        if not agg.star:
            if len(agg.args) != 1:
                raise PlanningError(f"{agg.name}() takes exactly one argument")
            arg = compile_expr(agg.args[0], input_layout)
        agg_specs.append(
            AggSpec(name=agg.name, star=agg.star, distinct=agg.distinct, arg=arg)
        )
    agg_node = AggregateNode(plan, key_fns, agg_specs, global_group=not group_exprs)
    agg_node.raw_group_exprs = group_exprs
    agg_node.raw_aggs = aggregates
    agg_node.input_layout = input_layout
    plan = agg_node
    agg_layout = plan.layout

    if stmt.having is not None:
        rewritten = planner.rewrite_aggregate_expr(stmt.having, group_slots, agg_slots)
        plan = FilterNode(plan, compile_expr(rewritten, agg_layout), expr=rewritten)

    out_exprs = []
    raw_out_exprs: list[Expr] = []
    alias_rewrites: dict[str, Expr] = {}
    for expr, name in proj:
        rewritten = planner.rewrite_aggregate_expr(expr, group_slots, agg_slots)
        alias_rewrites.setdefault(name.lower(), rewritten)
        raw_out_exprs.append(rewritten)
        out_exprs.append(compile_expr(rewritten, agg_layout))

    # ORDER BY for aggregate queries: rewrite over the agg row, then sort
    # before projection (so it may reference non-projected aggregates).
    # A bare column name that matches an output alias sorts by that output.
    if stmt.order_by:
        fns = []
        for item in stmt.order_by:
            if (
                isinstance(item.expr, ColumnRef)
                and item.expr.qualifier is None
                and item.expr.column.lower() in alias_rewrites
            ):
                rewritten = alias_rewrites[item.expr.column.lower()]
            else:
                rewritten = planner.rewrite_aggregate_expr(
                    item.expr, group_slots, agg_slots
                )
            fns.append((compile_expr(rewritten, agg_layout), item.ascending))
        plan = SortNode(plan, fns)

    project = ProjectNode(plan, out_exprs, [name for _, name in proj])
    project.raw_exprs = raw_out_exprs
    project.input_layout = agg_layout
    return project


def _plan_order_distinct_limit(
    stmt: SelectStmt, plan: PlanNode, out_names: list[str], aggregated: bool
) -> PlanNode:
    if stmt.distinct:
        plan = DistinctNode(plan)
    if stmt.limit is not None or stmt.offset is not None:
        empty = Layout()
        plan = LimitNode(
            plan,
            compile_expr(stmt.limit, empty) if stmt.limit is not None else None,
            compile_expr(stmt.offset, empty) if stmt.offset is not None else None,
        )
    return plan


def _default_name(expr: Expr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.column
    if isinstance(expr, FuncCall):
        return expr.sql()
    return expr.sql()


# ---------------------------------------------------------------------------
# Statement execution
# ---------------------------------------------------------------------------


def evaluate_as_of(stmt: SelectStmt, params: Sequence[Any]) -> int:
    """The CSN an ``AS OF`` clause pins this SELECT to.

    The clause is a literal or parameter; whatever it evaluates to must be
    a non-negative integer commit sequence number (integral floats are
    accepted the way shard-key routing accepts them).
    """
    assert stmt.as_of is not None
    value = compile_expr(stmt.as_of, Layout())((), params)
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ExecutionError(
            f"AS OF expects a non-negative integer CSN, got {value!r}"
        )
    return value


def execute_statement(
    database: "Database",
    txn: "Transaction",
    stmt: Statement,
    params: Sequence[Any],
    query_text: str,
    stream: bool = False,
) -> ResultSet:
    if stmt.param_count != len(params):
        raise ExecutionError(
            f"statement expects {stmt.param_count} parameter(s), "
            f"got {len(params)}"
        )
    if isinstance(stmt, SelectStmt):
        return _execute_select(database, txn, stmt, params, query_text, stream)
    if isinstance(stmt, InsertStmt):
        return _execute_insert(database, txn, stmt, params)
    if isinstance(stmt, UpdateStmt):
        return _execute_update(database, txn, stmt, params, query_text)
    if isinstance(stmt, DeleteStmt):
        return _execute_delete(database, txn, stmt, params, query_text)
    if isinstance(stmt, CreateTableStmt):
        return _execute_create_table(database, stmt, params)
    if isinstance(stmt, DropTableStmt):
        database.drop_table(stmt.name, if_exists=stmt.if_exists)
        return ResultSet(kind="ddl")
    if isinstance(stmt, CreateIndexStmt):
        database.create_index(
            stmt.name,
            stmt.table,
            stmt.columns,
            unique=stmt.unique,
            sorted_index=stmt.sorted_index,
        )
        return ResultSet(kind="ddl")
    if isinstance(stmt, DropIndexStmt):
        database.drop_index(stmt.name, stmt.table, if_exists=stmt.if_exists)
        return ResultSet(kind="ddl")
    raise ExecutionError(f"cannot execute {type(stmt).__name__}")  # pragma: no cover


def _execute_select(
    database: "Database",
    txn: "Transaction",
    stmt: SelectStmt,
    params: Sequence[Any],
    query_text: str,
    stream: bool = False,
) -> ResultSet:
    plan, out_names = database.select_plan(stmt, txn, query_text or None)
    ctx = ExecContext(
        database=database,
        txn=txn,
        params=params,
        query_text=query_text,
        track_reads=database.track_reads,
    )
    if stream and not ctx.track_reads:
        # Cursor streaming: hand the generator pipeline to the ResultSet
        # instead of draining it. The caller must prime() the result
        # while the transaction is live (Database.execute does); read
        # provenance requires full materialization, so TROD-attached
        # databases never take this path.
        return ResultSet(
            columns=out_names, kind="select", source=plan.rows(ctx)
        )
    rows = _drain_rows(plan, ctx)
    if ctx.track_reads:
        # A table that was consulted but matched nothing still yields one
        # null read record (Table 2's "Check if (U1, F2) exists" rows).
        for table in sorted(ctx.scanned_tables):
            if not ctx.read_counts.get(table):
                txn.record_read(table, None, None, query_text)
    return ResultSet(columns=out_names, rows=rows, kind="select")


def _execute_insert(
    database: "Database", txn: "Transaction", stmt: InsertStmt, params: Sequence[Any]
) -> ResultSet:
    schema = database.catalog.get(stmt.table)
    columns = stmt.columns or list(schema.column_names)
    for column in columns:
        schema.column(column)  # validates existence
    if stmt.select is not None:
        if stmt.select.as_of is not None:
            raise ExecutionError(
                "AS OF is not supported inside INSERT ... SELECT; "
                "run the historical read separately"
            )
        plan, out_names = database.select_plan(stmt.select, txn, None)
        if len(out_names) != len(columns):
            raise ExecutionError(
                f"INSERT ... SELECT supplies {len(out_names)} column(s) "
                f"for {len(columns)}"
            )
        ctx = ExecContext(
            database=database,
            txn=txn,
            params=params,
            query_text="",
            track_reads=database.track_reads,
        )
        # Materialize first: the SELECT may read the target table, and
        # inserting while scanning would mutate the txn's overlay mid-walk.
        source_rows = _drain_rows(plan, ctx)
        row_ids = []
        for source_row in source_rows:
            coerced = schema.coerce_row(dict(zip(columns, source_row)))
            row_ids.append(txn.insert(stmt.table, coerced))
        return ResultSet(kind="insert", rowcount=len(row_ids), row_ids=row_ids)
    empty = Layout()
    row_ids = []
    for row_exprs in stmt.rows:
        if len(row_exprs) != len(columns):
            raise ExecutionError(
                f"INSERT supplies {len(row_exprs)} values for "
                f"{len(columns)} column(s)"
            )
        values = {
            column: compile_expr(expr, empty)((), params)
            for column, expr in zip(columns, row_exprs)
        }
        coerced = schema.coerce_row(values)
        row_ids.append(txn.insert(stmt.table, coerced))
    return ResultSet(kind="insert", rowcount=len(row_ids), row_ids=row_ids)


def compile_update_plan(
    database: "Database", stmt: UpdateStmt
) -> tuple[CompiledExpr | None, list[tuple[int, Column, CompiledExpr]]]:
    """Compiled WHERE predicate and assignment closures of an UPDATE."""
    schema = database.catalog.get(stmt.table.table)
    layout = Layout.for_table(stmt.table.binding, schema.column_names)
    where_fn = compile_expr(stmt.where, layout) if stmt.where is not None else None
    assign = []
    for column, expr in stmt.assignments:
        col = schema.column(column)
        assign.append((schema.index_of(column), col, compile_expr(expr, layout)))
    return where_fn, assign


def compile_delete_plan(
    database: "Database", stmt: DeleteStmt
) -> CompiledExpr | None:
    """Compiled WHERE predicate of a DELETE."""
    schema = database.catalog.get(stmt.table.table)
    layout = Layout.for_table(stmt.table.binding, schema.column_names)
    return compile_expr(stmt.where, layout) if stmt.where is not None else None


def _execute_update(
    database: "Database",
    txn: "Transaction",
    stmt: UpdateStmt,
    params: Sequence[Any],
    query_text: str = "",
) -> ResultSet:
    schema = database.catalog.get(stmt.table.table)
    where_fn, assign = database.dml_plan(stmt, query_text or None)
    matches = [
        (row_id, values)
        for row_id, values in txn.scan(stmt.table.table)
        if where_fn is None or where_fn(values, params) is True
    ]
    for row_id, values in matches:
        new_values = list(values)
        for index, col, fn in assign:
            try:
                new_values[index] = coerce(fn(values, params), col.col_type)
            except TypeCoercionError as exc:
                raise TypeCoercionError(f"{schema.name}.{col.name}: {exc}") from None
            if new_values[index] is None and not col.nullable:
                raise IntegrityError(f"NOT NULL violation: {schema.name}.{col.name}")
        txn.update(stmt.table.table, row_id, tuple(new_values))
    return ResultSet(
        kind="update",
        rowcount=len(matches),
        row_ids=[row_id for row_id, _ in matches],
    )


def _execute_delete(
    database: "Database",
    txn: "Transaction",
    stmt: DeleteStmt,
    params: Sequence[Any],
    query_text: str = "",
) -> ResultSet:
    where_fn = database.dml_plan(stmt, query_text or None)
    matches = [
        row_id
        for row_id, values in txn.scan(stmt.table.table)
        if where_fn is None or where_fn(values, params) is True
    ]
    for row_id in matches:
        txn.delete(stmt.table.table, row_id)
    return ResultSet(kind="delete", rowcount=len(matches), row_ids=matches)


def _execute_create_table(
    database: "Database", stmt: CreateTableStmt, params: Sequence[Any]
) -> ResultSet:
    if stmt.if_not_exists and database.catalog.has_table(stmt.name):
        return ResultSet(kind="ddl")
    table_pk = {c.lower() for c in (stmt.primary_key or [])}
    empty = Layout()
    columns = []
    for cdef in stmt.columns:
        default = None
        if cdef.default is not None:
            default = compile_expr(cdef.default, empty)((), params)
        is_pk = cdef.primary_key or cdef.name.lower() in table_pk
        columns.append(
            Column(
                name=cdef.name,
                col_type=type_from_sql_name(cdef.type_name),
                nullable=not (cdef.not_null or is_pk),
                primary_key=is_pk,
                unique=cdef.unique,
                default=default,
            )
        )
    known = {c.name.lower() for c in columns}
    for pk_col in table_pk:
        if pk_col not in known:
            raise SchemaError(f"PRIMARY KEY references unknown column {pk_col!r}")
    schema = TableSchema(stmt.name, columns, unique_constraints=stmt.unique_constraints)
    database.create_table(schema)
    return ResultSet(kind="ddl")
