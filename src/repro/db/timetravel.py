"""Time travel: reconstructing past database states from the version store.

Replay (§3.5) needs "the database as of right before transaction T". Every
commit stamps versions with its CSN, so any historical state up to the
vacuum horizon can be materialized, either wholesale or restricted to the
tables a replay actually touches (the paper's "only restore those data
items used in replayed transactions" optimization — ablation A1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import TimeTravelError, TransactionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import Database
    from repro.db.sharding import ShardedDatabase


class TimeTravel:
    """Historical reads and restores over one database."""

    def __init__(self, database: "Database"):
        self._db = database

    def _check_horizon(self, csn: int) -> None:
        if csn < self._db.history_horizon:
            raise TimeTravelError(
                f"csn {csn} predates the vacuum horizon "
                f"({self._db.history_horizon})"
            )
        if csn > self._db.txn_manager.last_csn:
            raise TimeTravelError(
                f"csn {csn} is in the future (last committed is "
                f"{self._db.txn_manager.last_csn})"
            )

    def rows_as_of(self, table: str, csn: int) -> list[tuple[int, tuple]]:
        """``(row_id, values)`` pairs of ``table`` as of commit ``csn``."""
        self._check_horizon(csn)
        return list(self._db.store(table).scan(csn))

    def state_as_of(
        self, csn: int, tables: Iterable[str] | None = None
    ) -> dict[str, list[dict[str, Any]]]:
        """Full snapshot (as column dicts) of selected tables at ``csn``."""
        self._check_horizon(csn)
        names = (
            [self._db.catalog.resolve(t) for t in tables]
            if tables is not None
            else [n.lower() for n in self._db.catalog.table_names()]
        )
        out: dict[str, list[dict[str, Any]]] = {}
        for name in names:
            schema = self._db.catalog.get(name)
            out[schema.name] = [
                schema.row_dict(values)
                for _row_id, values in self._db.store(name).scan(csn)
            ]
        return out

    def csn_before_txn(self, txn_id: int) -> int:
        """The CSN of the state a committed transaction started from.

        With strict serializability, "the snapshot right before TXN"
        (§3.5's replay starting point) is simply its commit CSN minus one.
        """
        csn = self._db.txn_manager.csn_of(txn_id)
        if csn is None:
            raise TimeTravelError(f"txn {txn_id} never committed")
        return csn - 1

    def restore_into(
        self,
        target: "Database",
        csn: int,
        tables: Iterable[str] | None = None,
        create_schemas: bool = True,
    ) -> dict[str, int]:
        """Materialize the state at ``csn`` into ``target`` (a dev database).

        Row ids are preserved so provenance row references stay valid in
        the restored database. Returns per-table restored row counts.
        """
        self._check_horizon(csn)
        names = (
            [self._db.catalog.resolve(t) for t in tables]
            if tables is not None
            else [n.lower() for n in self._db.catalog.table_names()]
        )
        counts: dict[str, int] = {}
        for name in names:
            schema = self._db.catalog.get(name)
            if not target.catalog.has_table(name):
                if not create_schemas:
                    raise TimeTravelError(
                        f"target database is missing table {schema.name!r}"
                    )
                target.create_table(schema)
            rows = list(self._db.store(name).scan(csn))
            target.bulk_load(schema.name, rows)
            counts[schema.name] = len(rows)
        return counts


class ShardedTimeTravel:
    """Historical reads over a :class:`~repro.db.sharding.ShardedDatabase`.

    A global CSN (a position in the coordinator's aligned commit log)
    translates onto per-shard local CSNs, and each shard answers from its
    own version store at that local position — so an ``AS OF`` read sees
    exactly the cross-shard state some global commit produced, never a
    torn state with one shard ahead of another.
    """

    def __init__(self, sharded: "ShardedDatabase"):
        self._sharded = sharded

    def local_csns_at(self, global_csn: int) -> dict[str, int]:
        """Per-shard local commit positions for a global CSN."""
        try:
            return self._sharded.coordinator.local_csns_at(global_csn)
        except TransactionError as exc:
            raise TimeTravelError(str(exc)) from None

    def _reader(self, store: str, shard: "Database", local_csn: int) -> "Database":
        """The database that answers a historical read for one shard.

        Replicas preserve CSNs, so any replica whose applied position has
        reached ``local_csn`` (and whose bootstrap horizon predates it)
        serves the read identically — offloading AS-OF traffic from the
        primary exactly like the live read path does.
        """
        replica_set = self._sharded.replica_sets.get(store)
        if replica_set is not None:
            replica = replica_set.covering_replica(local_csn)
            if replica is not None:
                return replica.database
        return shard

    def rows_as_of(
        self, table: str, global_csn: int, prefer_replicas: bool = False
    ) -> list[dict[str, Any]]:
        """All rows of ``table`` across shards, as of a global commit."""
        local_csns = self.local_csns_at(global_csn)
        out: list[dict[str, Any]] = []
        for store, shard in self._sharded.named_shards():
            if prefer_replicas:
                shard = self._reader(store, shard, local_csns[store])
            schema = shard.catalog.get(table)
            out.extend(
                schema.row_dict(values)
                for _row_id, values in TimeTravel(shard).rows_as_of(
                    table, local_csns[store]
                )
            )
        return out

    def state_as_of(
        self,
        global_csn: int,
        tables: Iterable[str] | None = None,
        prefer_replicas: bool = False,
    ) -> dict[str, list[dict[str, Any]]]:
        """Merged cross-shard snapshot of selected tables at a global CSN."""
        local_csns = self.local_csns_at(global_csn)
        out: dict[str, list[dict[str, Any]]] = {}
        for store, shard in self._sharded.named_shards():
            if prefer_replicas:
                shard = self._reader(store, shard, local_csns[store])
            for name, rows in TimeTravel(shard).state_as_of(
                local_csns[store], tables
            ).items():
                out.setdefault(name, []).extend(rows)
        return out
