"""Cross-store transactions with aligned commit logs (§5).

"Modern web applications and microservices may use multiple data stores
... It is challenging for these applications to use TROD because some
data stores do not support transactions, and transaction logs of
different stores are usually not aligned. However, recent work has
proposed transaction managers that support transactions across
heterogeneous data stores. Such transaction managers can also provide
aligned transaction logs."

The :class:`MultiStoreCoordinator` is such a manager for our engine: a
global transaction spans several :class:`~repro.db.database.Database`
instances, commits atomically via two-phase commit (every store's
transaction is *prepared* — fully validated — before any store applies),
and every global commit is stamped with a global CSN recorded in an
aligned log mapping it to each store's local CSN. That aligned log is
exactly what lets TROD order events across stores.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.db.database import Database
from repro.db.result import ResultSet
from repro.db.txn.manager import IsolationLevel, Transaction, TransactionStatus
from repro.errors import CrashPoint, TransactionError
from repro.faults import fault_point


@dataclass(frozen=True)
class AlignedCommit:
    """One global commit and its per-store local commit positions."""

    global_csn: int
    txn_id: int  # global transaction id
    local_csns: dict[str, int] = field(hash=False, default_factory=dict)


class DecisionLog:
    """The coordinator's durable commit decisions (presumed abort).

    Two record kinds, both JSONL. A *decision* is written — and flushed —
    after every writing branch is durably prepared and before any branch
    commits: it names the global transaction and each branch's local
    txn_id, and is the coordinator's point of no return. An *end* record
    is written after phase 2 completes, carrying the aligned commit
    (global CSN -> per-store local CSNs) so a reopened coordinator can
    rebuild its clock and aligned log.

    Recovery semantics are presumed abort: an in-doubt prepared branch
    found in a store's WAL commits if (and only if) its global
    transaction has a decision record here; with no decision, the crash
    happened before the point of no return and the branch aborts.

    ``path=None`` keeps the log in memory — correct for single-process
    clusters that never restart, and free.
    """

    def __init__(self, path: str | None = None):
        self._path = path
        #: gtxn id -> {store name: branch txn_id}
        self.decisions: dict[int, dict[str, int]] = {}
        #: gtxn id -> (global_csn, {store name: local csn})
        self.ends: dict[int, tuple[int, dict[str, int]]] = {}
        self._file = None
        if path is not None:
            if os.path.exists(path):
                self._load(path)
            self._file = open(path, "a", encoding="utf-8")

    def _load(self, path: str) -> None:
        """Replay an existing log file; a torn final line (crash during
        append) is dropped and physically truncated, exactly like the
        WAL's torn-tail handling."""
        with open(path, "rb") as handle:
            raw = handle.read()
        valid_end = 0
        offset = 0
        bad_at: int | None = None
        for raw_line in raw.split(b"\n"):
            next_offset = offset + len(raw_line) + 1
            stripped = raw_line.strip()
            if stripped:
                try:
                    data = json.loads(stripped.decode("utf-8"))
                    gtxn_id = int(data["gtxn"])
                    if "end" in data:
                        self.ends[gtxn_id] = (
                            int(data["end"]),
                            {k: int(v) for k, v in data["local_csns"].items()},
                        )
                    else:
                        self.decisions[gtxn_id] = {
                            k: int(v) for k, v in data["branches"].items()
                        }
                except (ValueError, KeyError, TypeError):
                    if bad_at is None:
                        bad_at = offset
                else:
                    if bad_at is not None:
                        raise TransactionError(
                            f"{path}: corrupt decision record at byte "
                            f"{bad_at} is followed by valid records"
                        )
                    valid_end = min(next_offset, len(raw))
            offset = next_offset
        if bad_at is not None:
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)

    def _write(self, record: dict[str, Any]) -> None:
        if self._file is not None:
            self._file.write(json.dumps(record) + "\n")
            self._file.flush()

    def record_commit(self, gtxn_id: int, branches: dict[str, int]) -> None:
        """Log (durably) that ``gtxn_id`` decided to commit."""
        self.decisions[gtxn_id] = dict(branches)
        self._write({"gtxn": gtxn_id, "branches": dict(branches)})

    def record_end(
        self, gtxn_id: int, global_csn: int, local_csns: dict[str, int]
    ) -> None:
        """Log that phase 2 completed, with the aligned commit positions."""
        self.ends[gtxn_id] = (global_csn, dict(local_csns))
        self._write(
            {"gtxn": gtxn_id, "end": global_csn, "local_csns": dict(local_csns)}
        )

    def decided_commit(self, gtxn_id: int) -> bool:
        return gtxn_id in self.decisions

    @property
    def path(self) -> str | None:
        return self._path

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class GlobalTransaction:
    """A transaction spanning multiple stores (lazily joined)."""

    def __init__(
        self,
        coordinator: "MultiStoreCoordinator",
        txn_id: int,
        isolation: IsolationLevel,
        info: dict[str, Any] | None,
    ):
        self._coordinator = coordinator
        self.txn_id = txn_id
        self.isolation = isolation
        self.info = dict(info or {})
        self.status = TransactionStatus.ACTIVE
        self._branches: dict[str, Transaction] = {}
        #: Invoked exactly once when the transaction leaves ACTIVE
        #: (commit or abort). The sharded facade counts in-flight write
        #: transactions with it so a reshard's write fence can wait for
        #: them to drain before swapping the topology.
        self.on_finish: Callable[["GlobalTransaction"], None] | None = None

    @property
    def name(self) -> str:
        return f"GTXN{self.txn_id}"

    def on(self, store: str) -> Transaction:
        """The local transaction branch for ``store`` (begun on demand)."""
        self._check_active()
        if store not in self._branches:
            database = self._coordinator.store(store)
            self._branches[store] = database.begin(
                isolation=self.isolation,
                info={**self.info, "global_txn": self.name},
            )
        return self._branches[store]

    def execute(self, store: str, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Run a statement on one store within this global transaction."""
        database = self._coordinator.store(store)
        return database.execute(sql, params, txn=self.on(store))

    def stores_joined(self) -> list[str]:
        return sorted(self._branches)

    def commit(self) -> int:
        """Crash-consistent two-phase commit across every writing branch.

        Phase 1 *durably* prepares (validates + WAL prepare record) every
        writing branch; any failure aborts all branches — closing out
        durable prepares with WAL abort records — and re-raises, leaving
        no store changed. The coordinator then logs its commit decision
        to the :class:`DecisionLog` — the point of no return. Phase 2
        commits writers in deterministic store order and records the
        aligned commit under a new global CSN, followed by an end record.

        A crash (:class:`~repro.errors.CrashPoint`) anywhere in this
        sequence leaves in-doubt prepared branches on disk; a reopened
        coordinator's :meth:`MultiStoreCoordinator.recover_in_doubt`
        resolves each one against the decision log — commit if the
        decision was logged, abort otherwise (presumed abort) — so no
        schedule can surface a global commit on some stores but not
        others. Crash exceptions propagate without cleanup: a real crash
        runs nothing, and recovery must see exactly the state the fault
        point left behind.

        Read-only branches commit locally (observers see the outcome the
        global transaction had) but are excluded from the aligned
        record — an empty commit maps to the same cluster state as its
        predecessor, so logging it would only pollute the alignment
        history.
        """
        self._check_active()
        branches = sorted(self._branches.items())
        writers = [(store, txn) for store, txn in branches if txn.write_ops]
        if not writers:
            # Read-only: commit every branch (observers and provenance
            # must see the branch outcome the global transaction had),
            # but record no aligned entry — an empty commit maps to the
            # same cluster state as its predecessor.
            for _store, txn in branches:
                txn.commit()
            self._finish(TransactionStatus.COMMITTED)
            return self._coordinator.global_csn
        prepared: list[tuple[str, Transaction]] = []
        try:
            for store, txn in writers:
                fault_point("2pc.prepare", store=store, gtxn=self.txn_id)
                self._coordinator.store(store).txn_manager.prepare(
                    txn, gtxn_id=self.txn_id
                )
                prepared.append((store, txn))
        except CrashPoint:
            raise  # simulated process death: no cleanup runs
        except Exception:
            for _store, txn in branches:
                if txn.status in (
                    TransactionStatus.ACTIVE,
                    TransactionStatus.PREPARED,
                ):
                    txn.abort()
            self._finish(TransactionStatus.ABORTED)
            raise
        fault_point("2pc.decision", gtxn=self.txn_id)
        self._coordinator._log_decision(self, prepared)
        local_csns: dict[str, int] = {}
        for store, txn in prepared:
            fault_point("2pc.branch_commit", store=store, gtxn=self.txn_id)
            local_csns[store] = txn.commit()
        for _store, txn in branches:
            if txn.status is TransactionStatus.ACTIVE:  # read-only branch
                txn.commit()
        self._finish(TransactionStatus.COMMITTED)
        global_csn = self._coordinator._record_commit(self, local_csns)
        fault_point("2pc.end", gtxn=self.txn_id)
        self._coordinator._log_end(self, global_csn, local_csns)
        return global_csn

    def abort(self) -> None:
        for txn in self._branches.values():
            txn.abort()
        self._finish(TransactionStatus.ABORTED)

    def _finish(self, status: TransactionStatus) -> None:
        self.status = status
        if self.on_finish is not None:
            hook, self.on_finish = self.on_finish, None
            hook(self)

    def _check_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise TransactionError(
                f"{self.name} is {self.status.value}; no further operations"
            )


class MultiStoreCoordinator:
    """Coordinates transactions and aligned logs across named stores."""

    def __init__(
        self,
        stores: dict[str, Database],
        decision_log: "DecisionLog | str | None" = None,
    ):
        if not stores:
            raise TransactionError("coordinator needs at least one store")
        self._stores = dict(stores)
        self._next_txn_id = 1
        self.global_csn = 0
        self.aligned_log: list[AlignedCommit] = []
        if isinstance(decision_log, str):
            decision_log = DecisionLog(decision_log)
        #: Durable commit decisions; in-memory unless a path was given.
        self.decision_log = decision_log if decision_log is not None else DecisionLog()
        self.stats = {
            "decisions_logged": 0,
            "ends_logged": 0,
            "in_doubt_committed": 0,
            "in_doubt_aborted": 0,
        }

    def store(self, name: str) -> Database:
        try:
            return self._stores[name]
        except KeyError:
            raise TransactionError(
                f"unknown store {name!r} (known: {sorted(self._stores)})"
            ) from None

    def store_names(self) -> list[str]:
        return sorted(self._stores)

    def replace_store(self, name: str, database: Database) -> None:
        """Re-point a store name at a new database (replica promotion).

        The aligned log is positional (store name -> local CSN), so it
        stays valid as long as the replacement carries the same committed
        history — which a drained, promoted replica does by construction.
        """
        if name not in self._stores:
            raise TransactionError(
                f"unknown store {name!r} (known: {sorted(self._stores)})"
            )
        self._stores[name] = database

    def reshape(self, stores: dict[str, Database]) -> int:
        """Replace the whole store map in place (online resharding).

        The global CSN clock, the global transaction counter, and the
        aligned log are all preserved: sessions bookmark global CSNs and
        AS-OF reads bisect the aligned log, so swapping in a fresh
        coordinator would rewind the clock every bookmark hangs off.
        Aligned entries for departed stores stay in the log — they answer
        ordering queries about pre-reshard history; reads that would need
        the departed stores themselves are gated by the sharded engine's
        reshard horizon.

        A synthetic aligned commit (``txn_id=0`` — real transaction ids
        start at 1) is stamped at the swap, mapping every new store to
        its current local commit position. AS-OF reads at or above the
        returned global CSN therefore translate correctly onto the new
        topology; below it they would bisect to entries naming only the
        departed stores (new stores map to local CSN 0 — empty history),
        which is why the caller gates them.
        """
        if not stores:
            raise TransactionError("coordinator needs at least one store")
        self._stores = dict(stores)
        self.global_csn += 1
        self.aligned_log.append(
            AlignedCommit(
                global_csn=self.global_csn,
                txn_id=0,
                local_csns={
                    name: database.last_commit_csn
                    for name, database in self._stores.items()
                },
            )
        )
        return self.global_csn

    def begin(
        self,
        isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
        info: dict[str, Any] | None = None,
    ) -> GlobalTransaction:
        gtxn = GlobalTransaction(self, self._next_txn_id, isolation, info)
        self._next_txn_id += 1
        return gtxn

    def _record_commit(
        self, gtxn: GlobalTransaction, local_csns: dict[str, int]
    ) -> int:
        self.global_csn += 1
        self.aligned_log.append(
            AlignedCommit(
                global_csn=self.global_csn,
                txn_id=gtxn.txn_id,
                local_csns=dict(local_csns),
            )
        )
        return self.global_csn

    def _log_decision(
        self, gtxn: GlobalTransaction, prepared: list[tuple[str, Transaction]]
    ) -> None:
        self.decision_log.record_commit(
            gtxn.txn_id, {store: txn.txn_id for store, txn in prepared}
        )
        self.stats["decisions_logged"] += 1

    def _log_end(
        self, gtxn: GlobalTransaction, global_csn: int, local_csns: dict[str, int]
    ) -> None:
        self.decision_log.record_end(gtxn.txn_id, global_csn, local_csns)
        self.stats["ends_logged"] += 1

    # -- crash recovery ----------------------------------------------------

    def recover_in_doubt(self) -> dict[str, int]:
        """Resolve every in-doubt prepared branch after a restart.

        Presumed abort against the decision log: an in-doubt prepare
        whose global transaction has a logged commit decision is applied
        (phase-2 repair via
        :meth:`~repro.db.txn.manager.TransactionManager.commit_recovered`);
        without a decision it is aborted. The aligned log and global CSN
        clock are rebuilt from durable end records first, and decided
        commits that crashed before their end record get a repaired
        aligned entry once every surviving branch is resolved — so AS-OF
        translation keeps working across the crash.

        Returns ``{"committed": n, "aborted": n, "repaired_ends": n}``.
        Idempotent: a second call finds nothing in doubt.
        """
        log = self.decision_log
        if not self.aligned_log and log.ends:
            for gtxn_id, (global_csn, local_csns) in sorted(
                log.ends.items(), key=lambda kv: kv[1][0]
            ):
                self.aligned_log.append(
                    AlignedCommit(
                        global_csn=global_csn,
                        txn_id=gtxn_id,
                        local_csns=dict(local_csns),
                    )
                )
            self.global_csn = max(self.global_csn, self.aligned_log[-1].global_csn)
        known = set(log.decisions) | set(log.ends)
        if known:
            self._next_txn_id = max(self._next_txn_id, max(known) + 1)

        resolved = {"committed": 0, "aborted": 0, "repaired_ends": 0}
        for name in sorted(self._stores):
            outcome = self._stores[name].resolve_in_doubt(
                lambda prep: log.decided_commit(prep.gtxn_id)
            )
            resolved["committed"] += outcome["committed"]
            resolved["aborted"] += outcome["aborted"]

        # Decided commits that never logged an end record: every branch
        # is now applied (pre-crash via the WAL, or just above), so stamp
        # the missing aligned entry. Decision-log insertion order is
        # commit-decision order, preserving the original global ordering.
        for gtxn_id in [g for g in log.decisions if g not in log.ends]:
            branches = log.decisions[gtxn_id]
            local_csns: dict[str, int] = {}
            complete = True
            for store, branch_txn_id in branches.items():
                database = self._stores.get(store)
                csn = (
                    database.txn_manager.commit_index.get(branch_txn_id)
                    if database is not None
                    else None
                )
                if csn is None:
                    complete = False  # store departed or branch lost
                else:
                    local_csns[store] = csn
            if not complete or not local_csns:
                continue
            self.global_csn += 1
            self.aligned_log.append(
                AlignedCommit(
                    global_csn=self.global_csn,
                    txn_id=gtxn_id,
                    local_csns=local_csns,
                )
            )
            log.record_end(gtxn_id, self.global_csn, local_csns)
            resolved["repaired_ends"] += 1
        self.stats["in_doubt_committed"] += resolved["committed"]
        self.stats["in_doubt_aborted"] += resolved["aborted"]
        return resolved

    # -- cross-store ordering queries (the provenance-alignment surface) --

    def global_csn_for(self, store: str, local_csn: int) -> int | None:
        """Which global commit produced a store's local commit, if any."""
        for commit in self.aligned_log:
            if commit.local_csns.get(store) == local_csn:
                return commit.global_csn
        return None

    def commits_between(self, low: int, high: int) -> list[AlignedCommit]:
        """Aligned commits with ``low < global_csn <= high``."""
        return [
            c for c in self.aligned_log if low < c.global_csn <= high
        ]

    def local_csns_at(self, global_csn: int) -> dict[str, int]:
        """Each store's local commit position as of a global CSN.

        This is the AS-OF translation: the highest local CSN any aligned
        commit with ``global_csn' <= global_csn`` recorded per store. A
        store absent from every such commit maps to 0 (empty history at
        that point). The log is append-ordered by global CSN and a
        store's local CSNs increase along it, so a bisect plus a
        backward walk (stopping once every store has been seen) answers
        in O(log N + commits-since-each-store-last-participated) rather
        than O(N).
        """
        if global_csn < 0 or global_csn > self.global_csn:
            raise TransactionError(
                f"global csn {global_csn} outside committed range "
                f"[0, {self.global_csn}]"
            )
        out: dict[str, int] = {name: 0 for name in self._stores}
        end = bisect_right(
            self.aligned_log, global_csn, key=lambda c: c.global_csn
        )
        remaining = set(out)
        for i in range(end - 1, -1, -1):
            if not remaining:
                break
            for store, csn in self.aligned_log[i].local_csns.items():
                if store in remaining:
                    out[store] = csn
                    remaining.discard(store)
        return out
