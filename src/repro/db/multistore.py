"""Cross-store transactions with aligned commit logs (§5).

"Modern web applications and microservices may use multiple data stores
... It is challenging for these applications to use TROD because some
data stores do not support transactions, and transaction logs of
different stores are usually not aligned. However, recent work has
proposed transaction managers that support transactions across
heterogeneous data stores. Such transaction managers can also provide
aligned transaction logs."

The :class:`MultiStoreCoordinator` is such a manager for our engine: a
global transaction spans several :class:`~repro.db.database.Database`
instances, commits atomically via two-phase commit (every store's
transaction is *prepared* — fully validated — before any store applies),
and every global commit is stamped with a global CSN recorded in an
aligned log mapping it to each store's local CSN. That aligned log is
exactly what lets TROD order events across stores.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.db.database import Database
from repro.db.result import ResultSet
from repro.db.txn.manager import IsolationLevel, Transaction, TransactionStatus
from repro.errors import TransactionError


@dataclass(frozen=True)
class AlignedCommit:
    """One global commit and its per-store local commit positions."""

    global_csn: int
    txn_id: int  # global transaction id
    local_csns: dict[str, int] = field(hash=False, default_factory=dict)


class GlobalTransaction:
    """A transaction spanning multiple stores (lazily joined)."""

    def __init__(
        self,
        coordinator: "MultiStoreCoordinator",
        txn_id: int,
        isolation: IsolationLevel,
        info: dict[str, Any] | None,
    ):
        self._coordinator = coordinator
        self.txn_id = txn_id
        self.isolation = isolation
        self.info = dict(info or {})
        self.status = TransactionStatus.ACTIVE
        self._branches: dict[str, Transaction] = {}
        #: Invoked exactly once when the transaction leaves ACTIVE
        #: (commit or abort). The sharded facade counts in-flight write
        #: transactions with it so a reshard's write fence can wait for
        #: them to drain before swapping the topology.
        self.on_finish: Callable[["GlobalTransaction"], None] | None = None

    @property
    def name(self) -> str:
        return f"GTXN{self.txn_id}"

    def on(self, store: str) -> Transaction:
        """The local transaction branch for ``store`` (begun on demand)."""
        self._check_active()
        if store not in self._branches:
            database = self._coordinator.store(store)
            self._branches[store] = database.begin(
                isolation=self.isolation,
                info={**self.info, "global_txn": self.name},
            )
        return self._branches[store]

    def execute(self, store: str, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Run a statement on one store within this global transaction."""
        database = self._coordinator.store(store)
        return database.execute(sql, params, txn=self.on(store))

    def stores_joined(self) -> list[str]:
        return sorted(self._branches)

    def commit(self) -> int:
        """Two-phase commit across every store branch that wrote.

        Phase 1 prepares (validates) every writing branch; any failure
        aborts all branches and re-raises, leaving no store changed.
        Phase 2 commits writers in deterministic store order and records
        the aligned commit under a new global CSN. Read-only branches
        commit locally (observers see the outcome the global transaction
        had) but are excluded from the aligned record — an empty commit
        maps to the same cluster state as its predecessor, so logging it
        would only pollute the alignment history.
        """
        self._check_active()
        branches = sorted(self._branches.items())
        writers = [(store, txn) for store, txn in branches if txn.write_ops]
        if not writers:
            # Read-only: commit every branch (observers and provenance
            # must see the branch outcome the global transaction had),
            # but record no aligned entry — an empty commit maps to the
            # same cluster state as its predecessor.
            for _store, txn in branches:
                txn.commit()
            self._finish(TransactionStatus.COMMITTED)
            return self._coordinator.global_csn
        prepared: list[tuple[str, Transaction]] = []
        try:
            for store, txn in writers:
                self._coordinator.store(store).txn_manager.prepare(txn)
                prepared.append((store, txn))
        except Exception:
            for _store, txn in branches:
                if txn.status in (
                    TransactionStatus.ACTIVE,
                    TransactionStatus.PREPARED,
                ):
                    txn.abort()
            self._finish(TransactionStatus.ABORTED)
            raise
        local_csns: dict[str, int] = {}
        for store, txn in prepared:
            local_csns[store] = txn.commit()
        for _store, txn in branches:
            if txn.status is TransactionStatus.ACTIVE:  # read-only branch
                txn.commit()
        self._finish(TransactionStatus.COMMITTED)
        return self._coordinator._record_commit(self, local_csns)

    def abort(self) -> None:
        for txn in self._branches.values():
            txn.abort()
        self._finish(TransactionStatus.ABORTED)

    def _finish(self, status: TransactionStatus) -> None:
        self.status = status
        if self.on_finish is not None:
            hook, self.on_finish = self.on_finish, None
            hook(self)

    def _check_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise TransactionError(
                f"{self.name} is {self.status.value}; no further operations"
            )


class MultiStoreCoordinator:
    """Coordinates transactions and aligned logs across named stores."""

    def __init__(self, stores: dict[str, Database]):
        if not stores:
            raise TransactionError("coordinator needs at least one store")
        self._stores = dict(stores)
        self._next_txn_id = 1
        self.global_csn = 0
        self.aligned_log: list[AlignedCommit] = []

    def store(self, name: str) -> Database:
        try:
            return self._stores[name]
        except KeyError:
            raise TransactionError(
                f"unknown store {name!r} (known: {sorted(self._stores)})"
            ) from None

    def store_names(self) -> list[str]:
        return sorted(self._stores)

    def replace_store(self, name: str, database: Database) -> None:
        """Re-point a store name at a new database (replica promotion).

        The aligned log is positional (store name -> local CSN), so it
        stays valid as long as the replacement carries the same committed
        history — which a drained, promoted replica does by construction.
        """
        if name not in self._stores:
            raise TransactionError(
                f"unknown store {name!r} (known: {sorted(self._stores)})"
            )
        self._stores[name] = database

    def reshape(self, stores: dict[str, Database]) -> int:
        """Replace the whole store map in place (online resharding).

        The global CSN clock, the global transaction counter, and the
        aligned log are all preserved: sessions bookmark global CSNs and
        AS-OF reads bisect the aligned log, so swapping in a fresh
        coordinator would rewind the clock every bookmark hangs off.
        Aligned entries for departed stores stay in the log — they answer
        ordering queries about pre-reshard history; reads that would need
        the departed stores themselves are gated by the sharded engine's
        reshard horizon.

        A synthetic aligned commit (``txn_id=0`` — real transaction ids
        start at 1) is stamped at the swap, mapping every new store to
        its current local commit position. AS-OF reads at or above the
        returned global CSN therefore translate correctly onto the new
        topology; below it they would bisect to entries naming only the
        departed stores (new stores map to local CSN 0 — empty history),
        which is why the caller gates them.
        """
        if not stores:
            raise TransactionError("coordinator needs at least one store")
        self._stores = dict(stores)
        self.global_csn += 1
        self.aligned_log.append(
            AlignedCommit(
                global_csn=self.global_csn,
                txn_id=0,
                local_csns={
                    name: database.last_commit_csn
                    for name, database in self._stores.items()
                },
            )
        )
        return self.global_csn

    def begin(
        self,
        isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
        info: dict[str, Any] | None = None,
    ) -> GlobalTransaction:
        gtxn = GlobalTransaction(self, self._next_txn_id, isolation, info)
        self._next_txn_id += 1
        return gtxn

    def _record_commit(
        self, gtxn: GlobalTransaction, local_csns: dict[str, int]
    ) -> int:
        self.global_csn += 1
        self.aligned_log.append(
            AlignedCommit(
                global_csn=self.global_csn,
                txn_id=gtxn.txn_id,
                local_csns=dict(local_csns),
            )
        )
        return self.global_csn

    # -- cross-store ordering queries (the provenance-alignment surface) --

    def global_csn_for(self, store: str, local_csn: int) -> int | None:
        """Which global commit produced a store's local commit, if any."""
        for commit in self.aligned_log:
            if commit.local_csns.get(store) == local_csn:
                return commit.global_csn
        return None

    def commits_between(self, low: int, high: int) -> list[AlignedCommit]:
        """Aligned commits with ``low < global_csn <= high``."""
        return [
            c for c in self.aligned_log if low < c.global_csn <= high
        ]

    def local_csns_at(self, global_csn: int) -> dict[str, int]:
        """Each store's local commit position as of a global CSN.

        This is the AS-OF translation: the highest local CSN any aligned
        commit with ``global_csn' <= global_csn`` recorded per store. A
        store absent from every such commit maps to 0 (empty history at
        that point). The log is append-ordered by global CSN and a
        store's local CSNs increase along it, so a bisect plus a
        backward walk (stopping once every store has been seen) answers
        in O(log N + commits-since-each-store-last-participated) rather
        than O(N).
        """
        if global_csn < 0 or global_csn > self.global_csn:
            raise TransactionError(
                f"global csn {global_csn} outside committed range "
                f"[0, {self.global_csn}]"
            )
        out: dict[str, int] = {name: 0 for name in self._stores}
        end = bisect_right(
            self.aligned_log, global_csn, key=lambda c: c.global_csn
        )
        remaining = set(out)
        for i in range(end - 1, -1, -1):
            if not remaining:
                break
            for store, csn in self.aligned_log[i].local_csns.items():
                if store in remaining:
                    out[store] = csn
                    remaining.discard(store)
        return out
