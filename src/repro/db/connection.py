"""One engine, one API: ``repro.connect()`` over every deployment shape.

Three PRs of growth left the substrate with divergent entry points —
``Database.execute``, the ``ShardedDatabase`` facade, ``Session`` +
``ReadRouter``/``ShardedReadRouter``, and the ``TimeTravel`` /
``execute_as_of`` side-channels. This module folds them into a single
DB-API-flavored surface, the way the paper's debugger argument demands:
apps, workloads, and TROD are written once and run unchanged over a
single node, a hash-sharded cluster, or a replica-routed deployment.

* :class:`Engine` — the protocol every deployment shape implements
  (:class:`~repro.db.database.Database`,
  :class:`~repro.db.sharding.ShardedDatabase`,
  :class:`~repro.db.replication.ReplicatedDatabase`).
* :func:`connect` — ``repro.connect(engine, *, session=..., trod=...,
  read_preference=...)`` returning a :class:`Connection`.
* :class:`Connection` — ``execute`` / ``cursor()`` / context-managed
  ``transaction()``; session guarantees (read-your-writes routing) are
  baked into the read path rather than bolted on; ``SELECT ... AS OF
  <csn>`` executes natively on every engine.
* :class:`Cursor` — DB-API ergonomics (``fetchone`` / ``fetchall`` /
  ``description`` / ``lastrowid``) over :class:`~repro.db.result.Row`
  objects with attribute-style column access.

Reads through a connection never consume CSNs, on any engine: SELECTs run
under transactions that are aborted afterwards (the trick the replica
router and the sharded scatter path already used), so the commit clock
advances identically whether a workload runs on one node or twelve.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Protocol, Sequence, runtime_checkable

from repro.db.database import Database
from repro.db.replication import ReplicaSet, ReplicatedDatabase, Session
from repro.db.result import ResultSet, Row, _name_slots
from repro.db.sharding import ShardedDatabase
from repro.db.sql.nodes import (
    CreateIndexStmt,
    CreateTableStmt,
    DropIndexStmt,
    DropTableStmt,
    SelectStmt,
)
from repro.db.sql.parser import parse_sql
from repro.db.txn.manager import IsolationLevel, TransactionStatus
from repro.errors import FencedError, InterfaceError, UnavailableError
from repro.faults import BackoffPolicy
from repro.runtime.scheduler import CheckpointKind, maybe_checkpoint

#: Read routing choices. ``replica`` serves SELECTs from replicas that
#: satisfy the session's causal floor, falling back to the primary;
#: ``wait`` forces a catch-up instead of falling back; ``primary`` pins
#: every read to the primaries. Engines without replicas read identically
#: under all three.
READ_PREFERENCES = ("primary", "replica", "wait")


@runtime_checkable
class Engine(Protocol):
    """What a deployment shape must speak to sit behind a Connection.

    ``Database``, ``ShardedDatabase``, and ``ReplicatedDatabase`` all
    implement this structurally; the protocol exists so new topologies
    (and tests) know the exact contract:

    * ``execute(sql, params=(), txn=None)`` — run one statement,
      autocommitting without ``txn``; ``SELECT ... AS OF <csn>`` must
      execute natively.
    * ``begin(isolation=..., info=None)`` — a transaction object with
      ``commit() -> csn``, ``abort()``, and ``status``.
    * ``last_commit_csn`` — the engine-neutral commit position (local CSN
      on single-node/replicated engines, global CSN on sharded ones);
      session tokens and ``AS OF`` bookmarks are taken from it.
    * ``add_observer`` / ``remove_observer`` / ``track_reads`` — the TROD
      interposition surface; sharded facades fan these out so the whole
      cluster emits one debugger-visible event stream.
    * ``snapshot_rows(table)`` / ``table_rows(table)`` / ``catalog`` —
      attach-time snapshot capture and schema introspection.
    """

    name: str

    def execute(
        self, sql: str, params: Sequence[Any] = (), txn: Any = None
    ) -> ResultSet: ...

    def begin(self, isolation: Any = ..., info: Any = None) -> Any: ...

    def add_observer(self, observer: Any) -> None: ...

    def remove_observer(self, observer: Any) -> None: ...

    def snapshot_rows(self, table: str) -> list[tuple[int, tuple]]: ...

    def table_rows(self, table: str) -> list[dict[str, Any]]: ...


_ENGINE_SURFACE = (
    "execute",
    "begin",
    "catalog",
    "last_commit_csn",
    "add_observer",
    "remove_observer",
    "snapshot_rows",
)


#: Default bound on transparent statement retries after a node is fenced
#: or crashes mid-statement (see :meth:`Connection._retry_routed`).
_MAX_FAILOVER_RETRIES = 64


def connect(
    engine: Any,
    *,
    session: Session | None = None,
    trod: Any = None,
    read_preference: str = "replica",
    max_failover_retries: int = _MAX_FAILOVER_RETRIES,
    retry_backoff: "BackoffPolicy | None" = None,
) -> "Connection":
    """Open a :class:`Connection` over any :class:`Engine`.

    ``engine`` is a :class:`~repro.db.database.Database`,
    :class:`~repro.db.sharding.ShardedDatabase`,
    :class:`~repro.db.replication.ReplicatedDatabase`, or a bare
    :class:`~repro.db.replication.ReplicaSet` (wrapped automatically).
    ``session`` carries read-your-writes guarantees across connections;
    one is created per connection by default. ``trod`` attaches a
    :class:`~repro.core.tracer.Trod` debugger to the engine (any engine —
    the sharded facade emits the same event stream shape as a single
    node). ``read_preference`` is one of ``primary`` / ``replica`` /
    ``wait``.
    """
    if isinstance(engine, ReplicaSet):
        engine = ReplicatedDatabase(replica_set=engine)
    missing = [attr for attr in _ENGINE_SURFACE if not hasattr(engine, attr)]
    if missing:
        raise InterfaceError(
            f"{type(engine).__name__} does not implement the Engine "
            f"protocol (missing: {', '.join(missing)})"
        )
    if trod is not None:
        underlying = (
            engine.primary if isinstance(engine, ReplicatedDatabase) else engine
        )
        if trod.database is not engine and trod.database is not underlying:
            raise InterfaceError(
                "trod is bound to a different database than this engine"
            )
        if not trod.attached:
            trod.attach()
    return Connection(
        engine,
        session=session,
        trod=trod,
        read_preference=read_preference,
        max_failover_retries=max_failover_retries,
        retry_backoff=retry_backoff,
    )


class Connection:
    """A DB-API-flavored handle over one :class:`Engine`.

    Statements route by kind: SELECTs take the engine's read path
    (replica-aware where replicas exist, never consuming CSNs), DML
    autocommits on the authoritative path and advances the session token,
    and DDL fans out plus synchronizes replicas. Explicit transactions
    come from :meth:`transaction`.
    """

    def __init__(
        self,
        engine: Any,
        session: Session | None = None,
        trod: Any = None,
        read_preference: str = "replica",
        max_failover_retries: int = _MAX_FAILOVER_RETRIES,
        retry_backoff: "BackoffPolicy | None" = None,
    ):
        if read_preference not in READ_PREFERENCES:
            raise InterfaceError(
                f"unknown read_preference {read_preference!r} "
                f"(choose from {', '.join(READ_PREFERENCES)})"
            )
        self.engine = engine
        self.session = session if session is not None else Session()
        self.trod = trod
        self.read_preference = read_preference
        self._closed = False
        self._sharded_router = None  # lazy ShardedReadRouter
        # Statement classification reuses the engine's parse cache when it
        # has one; a custom Engine without the private hook still works.
        self._parse = getattr(engine, "_parse", parse_sql)
        self.max_failover_retries = max_failover_retries
        #: Cooperative-scheduler backoff between failover retries: retry
        #: N waits ``ticks(N-1)`` checkpoints before re-resolving the
        #: topology, so a long outage is not hammered at full cadence.
        #: The default grows 1 -> 2 -> 4 and caps at 4 ticks.
        self.retry_backoff = (
            retry_backoff
            if retry_backoff is not None
            else BackoffPolicy(base=1, factor=2, cap=4, jitter=0.0)
        )
        self.stats = {
            "reads": 0,
            "writes": 0,
            "ddl": 0,
            "transactions": 0,
            "failover_retries": 0,
        }

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    # -- statement execution ----------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        read_preference: str | None = None,
    ) -> ResultSet:
        """Run one statement, routed by kind (see class docstring).

        ``read_preference`` overrides the connection's routing for this
        one statement (SELECTs only — writes and DDL always take the
        authoritative path). SELECT results stream where the engine
        supports it: rows flow lazily through the returned
        :class:`~repro.db.result.ResultSet`, pinned to the statement's
        snapshot (see docs/api.md, "Streaming & concurrency").
        """
        self._check_open()
        if read_preference is not None and read_preference not in READ_PREFERENCES:
            # Validated for every statement kind: a typo set on a write
            # must not wait for the first SELECT to surface.
            raise InterfaceError(
                f"unknown read_preference {read_preference!r} "
                f"(choose from {', '.join(READ_PREFERENCES)})"
            )
        stmt = self._parse(sql)
        if isinstance(stmt, SelectStmt):
            self.stats["reads"] += 1
            return self._retry_routed(
                lambda: self._execute_read(stmt, sql, params, read_preference)
            )
        if isinstance(
            stmt, (CreateTableStmt, DropTableStmt, CreateIndexStmt, DropIndexStmt)
        ):
            self.stats["ddl"] += 1
            return self._retry_routed(lambda: self._execute_ddl(sql, params))
        self.stats["writes"] += 1
        return self._retry_routed(lambda: self._execute_write(sql, params))

    def _retry_routed(self, thunk: Any) -> ResultSet:
        """Run one autocommit statement, retrying across failovers.

        A statement that lands on a fenced (demoted) or crashed node
        raises :class:`~repro.errors.FencedError` /
        :class:`~repro.errors.UnavailableError` without having committed
        anything, so it is safe to re-route: the retry re-resolves the
        topology — the promoted primary, the post-failover shard map —
        and yields the baton between attempts so the controller's
        detection loop gets its turn to actually promote. Bounded by
        ``max_failover_retries``: a cluster with nothing left to promote
        re-raises rather than spinning. Explicit transactions
        (:meth:`transaction`) are NOT retried — a multi-statement
        transaction cannot be replayed transparently.
        """
        attempts = 0
        while True:
            try:
                return thunk()
            except (FencedError, UnavailableError):
                attempts += 1
                if attempts > self.max_failover_retries:
                    raise
                self.stats["failover_retries"] += 1
                engine_stats = getattr(self.engine, "stats", None)
                if engine_stats is not None and "failover_retries" in engine_stats:
                    # Mirror onto the engine so the cluster-wide
                    # robustness surface (cluster_stats) sees retries
                    # from every connection, not just this handle.
                    engine_stats["failover_retries"] += 1
                # Exponential backoff in scheduler ticks: each tick hands
                # the baton over so the detection loop can promote.
                for _ in range(self.retry_backoff.ticks(attempts - 1)):
                    maybe_checkpoint(CheckpointKind.LOCK_WAIT, "failover-retry")

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        return self.execute(sql, params)

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def explain(self, sql: str, params: Sequence[Any] = ()) -> list[str]:
        """The engine's plan for a SELECT (distributed strategy included)."""
        self._check_open()
        engine = self.engine
        if isinstance(engine, ShardedDatabase):
            return engine.explain(sql, params)
        return engine.explain(sql)

    @property
    def last_commit_csn(self) -> int:
        """The engine's commit position — the natural ``AS OF`` bookmark."""
        return self.engine.last_commit_csn

    # -- read path --------------------------------------------------------

    def _execute_read(
        self,
        stmt: SelectStmt,
        sql: str,
        params: Sequence[Any],
        read_preference: str | None = None,
    ) -> ResultSet:
        pref = (
            self.read_preference if read_preference is None else read_preference
        )
        if pref not in READ_PREFERENCES:
            raise InterfaceError(
                f"unknown read_preference {pref!r} "
                f"(choose from {', '.join(READ_PREFERENCES)})"
            )
        engine = self.engine
        if isinstance(engine, ReplicatedDatabase):
            return engine.execute_read(
                sql,
                params,
                floor=self.session.last_write_csn,
                on_stale="wait" if pref == "wait" else "primary",
                prefer_replica=pref != "primary",
                stream=True,
            )
        if isinstance(engine, ShardedDatabase):
            if engine.replica_sets and pref != "primary":
                router = self._router(pref)
                return router.execute(sql, params, session=self.session)
            if stmt.as_of is not None:
                return engine.execute(sql, params)
            # Primaries, ephemeral scatter read: burns no CSNs.
            return engine.select_routed(sql, params)
        if stmt.as_of is not None:
            # Historical reads manage their own ephemeral snapshot.
            return engine.execute(sql, params)
        # Single node: read under an aborted transaction so the commit
        # clock advances identically across every engine a workload runs
        # on (autocommitted reads would consume CSNs here but nowhere
        # else). On a real Database the result streams: the abort below
        # is safe because the pipeline is primed (snapshot-pinned)
        # before execute returns.
        txn = engine.begin()
        try:
            if isinstance(engine, Database):
                return engine.execute(sql, params, txn=txn, stream=True)
            # Custom Engine implementations only promise the documented
            # surface (no ``stream`` keyword); they materialize.
            return engine.execute(sql, params, txn=txn)
        finally:
            txn.abort()

    def _router(self, read_preference: str | None = None):
        from repro.db.replication import ShardedReadRouter

        pref = (
            self.read_preference if read_preference is None else read_preference
        )
        on_stale = "wait" if pref == "wait" else "primary"
        if self._sharded_router is None or self._sharded_router.on_stale != on_stale:
            # Rebuilt when read_preference is reassigned mid-connection
            # (or overridden per statement), so the sharded path honors
            # the change like the others do.
            self._sharded_router = ShardedReadRouter(self.engine, on_stale=on_stale)
        return self._sharded_router

    # -- write path -------------------------------------------------------

    def _execute_write(self, sql: str, params: Sequence[Any]) -> ResultSet:
        engine = self.engine
        if isinstance(engine, ShardedDatabase):
            # Explicit global transaction: autocommit would swallow the
            # global CSN the session token needs.
            gtxn = engine.begin()
            try:
                result = engine.execute(sql, params, txn=gtxn)
                global_csn = gtxn.commit()
            except Exception:
                if gtxn.status is TransactionStatus.ACTIVE:
                    gtxn.abort()
                raise
            self.session.note_global_write(global_csn)
            return result
        result = engine.execute(sql, params)
        self.session.note_write(engine.last_commit_csn)
        return result

    def _execute_ddl(self, sql: str, params: Sequence[Any]) -> ResultSet:
        engine = self.engine
        result = engine.execute(sql, params)
        if isinstance(engine, ShardedDatabase) and engine.replica_sets:
            # DDL ship records consume no CSN, so no session floor can
            # gate their visibility; synchronize replicas now.
            engine.catch_up_replicas()
        return result

    # -- explicit transactions --------------------------------------------

    def transaction(
        self,
        isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
        label: str | None = None,
    ) -> "ConnectionTransaction":
        """A context-managed transaction on the authoritative path.

        Commits on clean exit (noting the session token), aborts on
        exception. On a sharded engine this is a global transaction
        committing through 2PC; on a replicated engine it runs on the
        primary.
        """
        self._check_open()
        self.stats["transactions"] += 1
        return ConnectionTransaction(self, isolation, label)


class ConnectionTransaction:
    """One explicit transaction; use via ``with conn.transaction() as t``."""

    def __init__(
        self,
        conn: Connection,
        isolation: IsolationLevel,
        label: str | None,
    ):
        self._conn = conn
        info = {"label": label} if label is not None else None
        self._txn = conn.engine.begin(isolation=isolation, info=info)
        #: Set by commit: the transaction's CSN (global on sharded
        #: engines) — the bookmark to hand a later ``AS OF`` read.
        self.csn: int | None = None

    @property
    def raw(self) -> Any:
        """The underlying engine transaction (branch access, etc.)."""
        return self._txn

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        return self._conn.engine.execute(sql, params, txn=self._txn)

    def query(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        return self.execute(sql, params)

    def commit(self) -> int:
        csn = self._txn.commit()
        self.csn = csn
        if isinstance(self._conn.engine, ShardedDatabase):
            self._conn.session.note_global_write(csn)
        else:
            self._conn.session.note_write(csn)
        return csn

    def abort(self) -> None:
        self._txn.abort()

    def __enter__(self) -> "ConnectionTransaction":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._txn.status is not TransactionStatus.ACTIVE:
            return  # committed or aborted explicitly inside the block
        if exc_type is not None:
            self._txn.abort()
            return
        self.commit()


class Cursor:
    """DB-API-shaped statement execution over a :class:`Connection`.

    ``execute`` returns the cursor (chainable); rows come back as
    :class:`~repro.db.result.Row` objects, so ``cur.fetchone().balance``
    works. ``description`` follows the DB-API 7-tuple shape with only the
    name populated (the engine is dynamically typed).

    SELECTs *stream*: rows are pulled lazily from the engine's generator
    pipeline as ``fetchone`` / ``fetchmany`` / iteration ask for them, so
    the cursor holds O(fetch size) rows, never O(result). The stream is
    pinned to the statement's snapshot; ``rowcount`` is ``-1`` until it
    is exhausted (DB-API's "unknown"), then the total fetched.
    """

    arraysize = 1

    def __init__(self, conn: Connection):
        self._conn = conn
        self._closed = False
        self._rows: list[Row] = []
        self._pos = 0
        self._stream: ResultSet | None = None
        self._names: dict[str, int] = {}
        self._fetched = 0
        self.description: list[tuple] | None = None
        self.rowcount = -1
        self.lastrowid: int | None = None
        self.result: ResultSet | None = None

    @property
    def connection(self) -> Connection:
        return self._conn

    def close(self) -> None:
        self._closed = True
        self._rows = []
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        read_preference: str | None = None,
    ) -> "Cursor":
        self._check_open()
        self._load(
            self._conn.execute(sql, params, read_preference=read_preference)
        )
        return self

    def executemany(
        self, sql: str, seq_of_params: Sequence[Sequence[Any]]
    ) -> "Cursor":
        self._check_open()
        total = 0
        last: ResultSet | None = None
        for params in seq_of_params:
            last = self._conn.execute(sql, params)
            total += last.rowcount
        if last is not None:
            self._load(last)
        self.rowcount = total
        return self

    def _load(self, result: ResultSet) -> None:
        if self._stream is not None:
            self._stream.close()  # abandon any previous statement's tail
        self.result = result
        self._stream = None
        self._fetched = 0
        if result.kind == "select":
            self._names = _name_slots(result.columns)
            self.description = [
                (name, None, None, None, None, None, None)
                for name in result.columns
            ]
            if result.streaming:
                self._rows = []
            else:
                self._rows = [Row(row, self._names) for row in result.rows]
        else:
            self.description = None
            self._rows = []
        if result.kind == "select" and result.streaming:
            self._stream = result
        self._pos = 0
        self.rowcount = result.rowcount
        self.lastrowid = result.row_ids[-1] if result.row_ids else None

    def _next_streamed(self) -> Row | None:
        assert self._stream is not None
        raw = self._stream.next_row()
        if raw is None:
            self.rowcount = self._stream.rowcount
            self._stream = None
            return None
        self._fetched += 1
        return Row(raw, self._names)

    def fetchone(self) -> Row | None:
        self._check_open()
        if self._stream is not None:
            return self._next_streamed()
        if self._pos >= len(self._rows):
            return None
        row = self._rows[self._pos]
        self._pos += 1
        return row

    def fetchmany(self, size: int | None = None) -> list[Row]:
        self._check_open()
        count = self.arraysize if size is None else size
        if self._stream is not None:
            chunk: list[Row] = []
            while len(chunk) < count:
                row = self._next_streamed()
                if row is None:
                    break
                chunk.append(row)
            return chunk
        chunk = self._rows[self._pos : self._pos + count]
        self._pos += len(chunk)
        return chunk

    def fetchall(self) -> list[Row]:
        self._check_open()
        if self._stream is not None:
            chunk: list[Row] = []
            while True:
                row = self._next_streamed()
                if row is None:
                    break
                chunk.append(row)
            return chunk
        chunk = self._rows[self._pos :]
        self._pos = len(self._rows)
        return chunk

    def __iter__(self) -> Iterator[Row]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class ConnectionPool:
    """A small checkout/checkin pool of :class:`Connection` objects.

    Workload drivers (and anything serving many short statements) should
    not construct a Connection per statement: ``checkout()`` hands out an
    idle pooled connection — creating one only when none is idle — and
    ``checkin()`` returns it for reuse. Up to ``size`` idle connections
    are retained; extras created under burst are closed at checkin.

    All pooled connections share one :class:`~repro.db.replication.
    Session` by default, so read-your-writes guarantees hold even when a
    session's next statement runs on a different pooled connection than
    the write that preceded it. Pass an explicit ``session`` to share a
    token with connections outside the pool.
    """

    def __init__(
        self,
        engine: Any,
        size: int = 4,
        session: Session | None = None,
        trod: Any = None,
        read_preference: str = "replica",
    ):
        if size < 1:
            raise InterfaceError(f"pool size must be >= 1, got {size}")
        self.engine = engine
        self.size = size
        self.session = session if session is not None else Session("pool")
        self._trod = trod
        self._read_preference = read_preference
        self._idle: list[Connection] = []
        self._in_use = 0
        self._closed = False
        self.stats = {
            "checkouts": 0,
            "creates": 0,
            "reuses": 0,
            "discarded": 0,
            "retired_dead": 0,
        }

    # -- checkout / checkin ----------------------------------------------

    def checkout(self) -> Connection:
        """An open connection over the pool's engine (create or reuse)."""
        if self._closed:
            raise InterfaceError("connection pool is closed")
        conn: Connection | None = None
        while self._idle:
            candidate = self._idle.pop()
            if candidate.closed:
                # Retired behind the pool's back; account for it the way
                # checkin does, so every retired connection is counted.
                self.stats["discarded"] += 1
                continue
            conn = candidate
            self.stats["reuses"] += 1
            break
        if conn is None:
            conn = connect(
                self.engine,
                session=self.session,
                trod=self._trod,
                read_preference=self._read_preference,
            )
            self.stats["creates"] += 1
        self._in_use += 1
        self.stats["checkouts"] += 1
        return conn

    def checkin(self, conn: Connection) -> None:
        """Return a connection for reuse (closed/overflow ones discarded).

        A connection whose engine was fenced (demoted by failover) or
        killed is retired rather than recycled: handing it to a later
        checkout would serve a statement from a node the cluster already
        voted out, and the error would surface far from its cause.
        """
        if conn in self._idle:
            # A double checkin would hand the same connection to two
            # later checkouts, silently sharing its session and cursors.
            raise InterfaceError("connection is already checked in")
        self._in_use = max(0, self._in_use - 1)
        engine = conn.engine
        engine_dead = isinstance(engine, Database) and (
            engine.fenced or engine.crashed
        )
        if engine_dead:
            if not conn.closed:
                conn.close()
            self.stats["retired_dead"] += 1
            self.stats["discarded"] += 1
            return
        if self._closed or conn.closed or len(self._idle) >= self.size:
            if not conn.closed:
                conn.close()
            self.stats["discarded"] += 1
            return
        self._idle.append(conn)

    @contextmanager
    def connection(self) -> Iterator[Connection]:
        """``with pool.connection() as conn:`` — checkout, then checkin."""
        conn = self.checkout()
        try:
            yield conn
        finally:
            self.checkin(conn)

    # -- lifecycle --------------------------------------------------------

    @property
    def idle(self) -> int:
        return len(self._idle)

    @property
    def in_use(self) -> int:
        return self._in_use

    def close(self) -> None:
        """Close every idle connection and refuse further checkouts."""
        self._closed = True
        while self._idle:
            self._idle.pop().close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ConnectionPool engine={getattr(self.engine, 'name', '?')!r} "
            f"idle={len(self._idle)} in_use={self._in_use} size={self.size}>"
        )
